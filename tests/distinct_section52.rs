//! Section 5.2: "if both the query and the view use SELECT DISTINCT, then
//! their results are sets, by definition" — set-semantics rewritings with
//! no key information at all.

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, set_eq, Database, Relation, Value};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn keyless_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R", ["A", "B", "C"]))
        .unwrap();
    cat
}

fn db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Database::new();
    let mut r = Relation::empty(["A", "B", "C"]);
    for _ in 0..50 {
        r.push(vec![
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
        ]);
    }
    d.insert("R", r);
    d
}

#[test]
fn distinct_view_answers_distinct_query() {
    // Keyless table: the multiset path is closed (a DISTINCT view changes
    // multiplicities), but both results are sets by definition.
    let cat = keyless_catalog();
    let q = parse_query("SELECT DISTINCT A, B FROM R WHERE C = 1").unwrap();
    let v = ViewDef::new("V", parse_query("SELECT DISTINCT A, B, C FROM R").unwrap());
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
    assert_eq!(rws.len(), 1);
    assert!(rws[0].set_semantics);
    let mut database = db(52);
    materialize_views(&mut database, &[v]).unwrap();
    let truth = execute(&q, &database).unwrap();
    let via = execute_rewriting(&rws[0], &database).unwrap();
    assert!(!truth.has_duplicates());
    assert!(set_eq(&truth, &via), "truth: {truth}\n got: {via}");
}

#[test]
fn distinct_view_rejected_for_multiset_query() {
    // The query preserves duplicates; the DISTINCT view lost them — no
    // rewriting (key-free).
    let cat = keyless_catalog();
    let q = parse_query("SELECT A, B FROM R WHERE C = 1").unwrap();
    let v = ViewDef::new("V", parse_query("SELECT DISTINCT A, B, C FROM R").unwrap());
    let rewriter = Rewriter::new(&cat);
    assert!(rewriter.rewrite(&q, &[v]).unwrap().is_empty());
}

#[test]
fn plain_view_answers_distinct_query_via_multiset_path_is_not_taken() {
    // DISTINCT query, non-DISTINCT view: the multiset path applies (the
    // DISTINCT is applied on top of the rewritten body) — the classic
    // Section 3 rewriting carries the DISTINCT flag through.
    let cat = keyless_catalog();
    let q = parse_query("SELECT DISTINCT A FROM R WHERE B = 2").unwrap();
    let v = ViewDef::new("V", parse_query("SELECT A, B FROM R").unwrap());
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
    assert!(!rws.is_empty());
    let direct = rws
        .iter()
        .find(|r| !r.set_semantics)
        .expect("multiset rewriting");
    assert!(direct.query.distinct);
    let mut database = db(53);
    materialize_views(&mut database, &[v]).unwrap();
    let truth = execute(&q, &database).unwrap();
    let via = execute_rewriting(direct, &database).unwrap();
    assert!(set_eq(&truth, &via));
}

#[test]
fn distinct_self_join_collapse_without_keys() {
    // The Example 5.1 shape justified by DISTINCT instead of keys: both
    // query and view are DISTINCT, so many-to-1 collapses are sound —
    // but only when a key equates the copies. Without keys the collapsed
    // occurrences cannot be proven to coincide, so only structure-preserving
    // (1-1) uses are possible; with two view occurrences and one query
    // occurrence there is none.
    let cat = keyless_catalog();
    let q = parse_query("SELECT DISTINCT A FROM R WHERE B = C").unwrap();
    let v = ViewDef::new(
        "V",
        parse_query("SELECT DISTINCT u.A AS A1, w.A AS A2 FROM R u, R w WHERE u.B = w.C").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    // No key ⇒ the collapse cannot be compensated ⇒ no rewriting.
    assert!(rewriter.rewrite(&q, &[v]).unwrap().is_empty());
}

#[test]
fn randomized_distinct_set_semantics() {
    let cat = keyless_catalog();
    let rewriter = Rewriter::new(&cat);
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let filter_col = ["A", "B", "C"][rng.random_range(0..3)];
        let k = rng.random_range(0..4);
        let q = parse_query(&format!(
            "SELECT DISTINCT A, B FROM R WHERE {filter_col} = {k}"
        ))
        .unwrap();
        let v = ViewDef::new("V", parse_query("SELECT DISTINCT A, B, C FROM R").unwrap());
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
        assert!(!rws.is_empty(), "seed {seed}: expected a rewriting");
        let mut database = db(seed.wrapping_mul(3));
        materialize_views(&mut database, std::slice::from_ref(&v)).unwrap();
        let truth = execute(&q, &database).unwrap();
        for rw in &rws {
            let via = execute_rewriting(rw, &database).unwrap();
            assert!(
                set_eq(&truth, &via),
                "seed {seed}: {q} vs {}\n truth: {truth}\n got: {via}",
                rw.query
            );
        }
    }
}
