//! Black-box tests of the `aggview` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_aggview"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const SCRIPT: &str = "
CREATE TABLE Sales (Region, Product, Amount);
INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3);
CREATE VIEW Totals AS
  SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N
  FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
EXPLAIN SELECT Region, MIN(Amount) FROM Sales GROUP BY Region;
";

#[test]
fn script_via_stdin() {
    let (stdout, stderr, ok) = run_cli(&["--verify"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("view `Totals` materialized"));
    assert!(stdout.contains("answered from [\"Totals\"]"));
    assert!(stdout.contains("base-table cross-check: equivalent"));
    assert!(
        stdout.contains("not usable"),
        "EXPLAIN must report the MIN miss"
    );
}

#[test]
fn interactive_mode_survives_errors() {
    let input = "bogus statement;\nCREATE TABLE T (a);\nINSERT INTO T VALUES (1);\nSELECT a FROM T;\nquit\n";
    let (stdout, stderr, ok) = run_cli(&["--interactive"], input);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
    assert!(stdout.contains("table `T` created"));
    // Single-column result: header "a" then the row "1".
    assert!(stdout.lines().any(|l| l.trim() == "1"), "stdout: {stdout}");
}

#[test]
fn unknown_flag_fails() {
    let (_, stderr, ok) = run_cli(&["--nope"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn parse_error_fails_with_diagnostic() {
    let (_, stderr, ok) = run_cli(&[], "SELECT FROM;");
    assert!(!ok);
    assert!(stderr.contains("parse error"));
}

#[test]
fn missing_file_fails() {
    let (_, stderr, ok) = run_cli(&["/nonexistent/script.sql"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn suggest_statement_via_cli() {
    let script = "
CREATE TABLE Facts (Dim, M);
INSERT INTO Facts VALUES (1, 10), (1, 20), (2, 30);
SUGGEST SELECT Dim, SUM(M) FROM Facts GROUP BY Dim;
";
    let (stdout, stderr, ok) = run_cli(&[], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("CREATE VIEW Suggested"), "stdout: {stdout}");
}

#[test]
fn explain_reports_store_status() {
    // Plain (session-local) mode: the EXPLAIN tail says so.
    let (stdout, stderr, ok) = run_cli(&[], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("store: none (session-local state)"),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_mode_round_robins_handles_over_one_store() {
    // 6 statements across 2 handles: schema and writes land on both s0
    // and s1, and every handle reads every other handle's effects.
    let (stdout, stderr, ok) = run_cli(&["serve", "--sessions", "2", "--verify"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("s0> "), "stdout: {stdout}");
    assert!(stdout.contains("s1> "), "stdout: {stdout}");
    assert!(stdout.contains("view `Totals` materialized"));
    assert!(stdout.contains("answered from [\"Totals\"]"));
    assert!(stdout.contains("base-table cross-check: equivalent"));
    // The EXPLAIN tail reports the live store identity...
    assert!(
        stdout.contains("store: epoch=") && stdout.contains("publishes="),
        "stdout: {stdout}"
    );
    // ...and the final summary line reports the batching counters: 3
    // write statements = 3 publishes (each acked before the next was
    // submitted, so every batch has size 1).
    assert!(
        stdout.contains(
            "-- store: sessions=2 epoch=3 schema-epoch=2 publishes=3 batches=3 \
             batched-ops=3 mean-batch=1.0 max-batch=1"
        ),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_rejects_bad_session_count() {
    let (_, stderr, ok) = run_cli(&["serve", "--sessions", "0"], "");
    assert!(!ok);
    assert!(stderr.contains("--sessions"), "stderr: {stderr}");
}

#[test]
fn bench_concurrent_smoke() {
    let (stdout, stderr, ok) = run_cli(
        &[
            "bench-concurrent",
            "--readers",
            "2",
            "--writers",
            "1",
            "--millis",
            "40",
        ],
        "",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("bench-concurrent: readers=2 writers=1 millis=40"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("reads:"), "stdout: {stdout}");
    assert!(stdout.contains("writes:"), "stdout: {stdout}");
    assert!(stdout.contains("store:  epoch="), "stdout: {stdout}");
}

/// Mask the unstable parts of an observability line so golden tests
/// compare shape, not timings: whitespace collapses to single spaces,
/// `fingerprint=<hex>` becomes `fingerprint=<FP>`, purely numeric
/// duration tokens (`41.7µs`, `560ns`, `1.20s`) become `<T>`, and every
/// remaining digit run becomes `#`.
fn mask_obs_line(line: &str) -> String {
    fn mask_token(token: &str) -> String {
        if let Some(rest) = token.strip_prefix("fingerprint=") {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_hexdigit()) {
                return "fingerprint=<FP>".to_string();
            }
        }
        for unit in ["ns", "µs", "ms", "s"] {
            if let Some(prefix) = token.strip_suffix(unit) {
                if !prefix.is_empty() && prefix.chars().all(|c| c.is_ascii_digit() || c == '.') {
                    return "<T>".to_string();
                }
            }
        }
        let mut out = String::new();
        let mut in_digits = false;
        for c in token.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('#');
                    in_digits = true;
                }
            } else {
                out.push(c);
                in_digits = false;
            }
        }
        out
    }
    line.split_whitespace()
        .map(mask_token)
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn explain_analyze_golden() {
    // A warm EXPLAIN ANALYZE (the identical SELECT ran just before, so
    // the serving plan is cached): with timings and fingerprints masked,
    // the output shape is exact.
    let script = "
CREATE TABLE Sales (Region, Product, Amount);
INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3);
CREATE VIEW Totals AS
  SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N
  FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
EXPLAIN ANALYZE SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
";
    let (stdout, stderr, ok) = run_cli(&[], script);
    assert!(ok, "stderr: {stderr}");
    let (_, tail) = stdout
        .split_once("aggview> EXPLAIN ANALYZE")
        .expect("EXPLAIN ANALYZE echoed");
    let masked: Vec<String> = tail
        .lines()
        .filter(|l| l.starts_with("--"))
        .map(mask_obs_line)
        .collect();
    let expected = [
        "-- answered from [\"Totals\"] (# candidate rewriting(s))",
        "-- executed: SELECT Totals.Region, SUM(Totals.T) FROM Totals GROUP BY Totals.Region",
        "-- rows: #",
        "-- exec path: vectorized (columnar kernels); session totals: \
         exec_vectorized=# exec_row_fallback=#",
        "-- query: fingerprint=<FP> plan=cached",
        "-- execute <T>",
        "-- total <T>",
        "-- search: states=# candidates=# (prefiltered #, attempted #) mappings=# \
         rewritings=# closure-cache=#% hit threads=# prepare=#.#ms search=#.#ms",
        "-- plan-cache: # hit(s), # miss(es), # invalidation(s)",
        "-- store: none (session-local state)",
    ];
    assert_eq!(masked, expected, "raw tail: {tail}");
}

#[test]
fn explain_analyze_requires_obs() {
    let script = "
CREATE TABLE T (a);
EXPLAIN ANALYZE SELECT a FROM T;
";
    let (_, stderr, ok) = run_cli(&["--no-obs"], script);
    assert!(!ok);
    assert!(
        stderr.contains("EXPLAIN ANALYZE needs observability enabled"),
        "stderr: {stderr}"
    );
}

#[test]
fn no_obs_flag_runs_clean() {
    let (stdout, stderr, ok) = run_cli(&["--no-obs", "--verify"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("answered from [\"Totals\"]"));
}

#[test]
fn metrics_subcommand_dumps_prometheus() {
    let (stdout, stderr, ok) = run_cli(&["metrics"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    // Statement output is suppressed; the dump is the whole of stdout.
    assert!(!stdout.contains("aggview>"), "stdout: {stdout}");
    assert!(stdout.contains("# TYPE aggview_statements_total counter"));
    assert!(
        stdout.contains("aggview_statements_total 5"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("aggview_queries_total 1"),
        "stdout: {stdout}"
    );
    // CREATE TABLE, INSERT, CREATE VIEW all route through the write path.
    assert!(
        stdout.contains("aggview_writes_total 3"),
        "stdout: {stdout}"
    );
    // Stage histograms are exported in Prometheus histogram shape.
    assert!(
        stdout.contains("aggview_stage_duration_nanoseconds_bucket{stage=\"execute\",le=\"+Inf\"}"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("aggview_stage_duration_nanoseconds_count{stage=\"parse\"} 1"));
    // Every exposed metric line is either a comment or `name value`.
    for line in stdout.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE aggview_"), "bad comment: {line}");
            continue;
        }
        let mut parts = line.split(' ');
        let name = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("");
        assert!(name.starts_with("aggview_"), "bad metric name: {line}");
        assert!(
            value.parse::<u64>().is_ok(),
            "non-numeric sample value: {line}"
        );
        assert_eq!(parts.next(), None, "trailing tokens: {line}");
    }
}

#[test]
fn metrics_subcommand_human_format() {
    let (stdout, stderr, ok) = run_cli(&["metrics", "--human"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("stage"), "stdout: {stdout}");
    assert!(stdout.contains("slow queries"), "stdout: {stdout}");
}

#[test]
fn serve_metrics_scrapes_store_registry() {
    let (stdout, stderr, ok) = run_cli(&["serve", "--sessions", "2", "--metrics"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    // The serving transcript still prints, then the Prometheus dump.
    assert!(stdout.contains("s0> "), "stdout: {stdout}");
    assert!(
        stdout.contains("aggview_store_publishes_total 3"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("aggview_store_batches_total 3"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("aggview_stage_duration_nanoseconds_count{stage=\"apply\"} 3"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("aggview_write_queue_depth 0"),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_metrics_conflicts_with_no_obs() {
    let (_, stderr, ok) = run_cli(&["serve", "--metrics", "--no-obs"], "");
    assert!(!ok);
    assert!(stderr.contains("--metrics"), "stderr: {stderr}");
}

#[test]
fn expand_flag_enables_footnote3() {
    let script = "
CREATE TABLE R1 (A, B, C);
INSERT INTO R1 VALUES (1, 1, 0), (1, 1, 0), (2, 1, 0);
CREATE VIEW V1 AS SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B;
SELECT A, B FROM R1;
";
    // Without --expand: base tables.
    let (stdout, _, ok) = run_cli(&["--verify"], script);
    assert!(ok);
    assert!(stdout.contains("no usable view"));
    // With --expand: answered from the view, verified.
    let (stdout, stderr, ok) = run_cli(&["--verify", "--expand"], script);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("answered from [\"V1\"]"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("Nat.k <= V1.N"), "stdout: {stdout}");
    assert!(
        stdout.contains("cross-check: equivalent"),
        "stdout: {stdout}"
    );
}
