//! Black-box tests of the `aggview` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_aggview"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const SCRIPT: &str = "
CREATE TABLE Sales (Region, Product, Amount);
INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3);
CREATE VIEW Totals AS
  SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N
  FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
EXPLAIN SELECT Region, MIN(Amount) FROM Sales GROUP BY Region;
";

#[test]
fn script_via_stdin() {
    let (stdout, stderr, ok) = run_cli(&["--verify"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("view `Totals` materialized"));
    assert!(stdout.contains("answered from [\"Totals\"]"));
    assert!(stdout.contains("base-table cross-check: equivalent"));
    assert!(
        stdout.contains("not usable"),
        "EXPLAIN must report the MIN miss"
    );
}

#[test]
fn interactive_mode_survives_errors() {
    let input = "bogus statement;\nCREATE TABLE T (a);\nINSERT INTO T VALUES (1);\nSELECT a FROM T;\nquit\n";
    let (stdout, stderr, ok) = run_cli(&["--interactive"], input);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
    assert!(stdout.contains("table `T` created"));
    // Single-column result: header "a" then the row "1".
    assert!(stdout.lines().any(|l| l.trim() == "1"), "stdout: {stdout}");
}

#[test]
fn unknown_flag_fails() {
    let (_, stderr, ok) = run_cli(&["--nope"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn parse_error_fails_with_diagnostic() {
    let (_, stderr, ok) = run_cli(&[], "SELECT FROM;");
    assert!(!ok);
    assert!(stderr.contains("parse error"));
}

#[test]
fn missing_file_fails() {
    let (_, stderr, ok) = run_cli(&["/nonexistent/script.sql"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn suggest_statement_via_cli() {
    let script = "
CREATE TABLE Facts (Dim, M);
INSERT INTO Facts VALUES (1, 10), (1, 20), (2, 30);
SUGGEST SELECT Dim, SUM(M) FROM Facts GROUP BY Dim;
";
    let (stdout, stderr, ok) = run_cli(&[], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("CREATE VIEW Suggested"), "stdout: {stdout}");
}

#[test]
fn explain_reports_store_status() {
    // Plain (session-local) mode: the EXPLAIN tail says so.
    let (stdout, stderr, ok) = run_cli(&[], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("store: none (session-local state)"),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_mode_round_robins_handles_over_one_store() {
    // 6 statements across 2 handles: schema and writes land on both s0
    // and s1, and every handle reads every other handle's effects.
    let (stdout, stderr, ok) = run_cli(&["serve", "--sessions", "2", "--verify"], SCRIPT);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("s0> "), "stdout: {stdout}");
    assert!(stdout.contains("s1> "), "stdout: {stdout}");
    assert!(stdout.contains("view `Totals` materialized"));
    assert!(stdout.contains("answered from [\"Totals\"]"));
    assert!(stdout.contains("base-table cross-check: equivalent"));
    // The EXPLAIN tail reports the live store identity...
    assert!(
        stdout.contains("store: epoch=") && stdout.contains("publishes="),
        "stdout: {stdout}"
    );
    // ...and the final summary line reports the batching counters: 3
    // write statements = 3 publishes (each acked before the next was
    // submitted, so every batch has size 1).
    assert!(
        stdout.contains(
            "-- store: sessions=2 epoch=3 schema-epoch=2 publishes=3 batches=3 \
             batched-ops=3 mean-batch=1.0 max-batch=1"
        ),
        "stdout: {stdout}"
    );
}

#[test]
fn serve_rejects_bad_session_count() {
    let (_, stderr, ok) = run_cli(&["serve", "--sessions", "0"], "");
    assert!(!ok);
    assert!(stderr.contains("--sessions"), "stderr: {stderr}");
}

#[test]
fn bench_concurrent_smoke() {
    let (stdout, stderr, ok) = run_cli(
        &[
            "bench-concurrent",
            "--readers",
            "2",
            "--writers",
            "1",
            "--millis",
            "40",
        ],
        "",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("bench-concurrent: readers=2 writers=1 millis=40"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("reads:"), "stdout: {stdout}");
    assert!(stdout.contains("writes:"), "stdout: {stdout}");
    assert!(stdout.contains("store:  epoch="), "stdout: {stdout}");
}

#[test]
fn expand_flag_enables_footnote3() {
    let script = "
CREATE TABLE R1 (A, B, C);
INSERT INTO R1 VALUES (1, 1, 0), (1, 1, 0), (2, 1, 0);
CREATE VIEW V1 AS SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B;
SELECT A, B FROM R1;
";
    // Without --expand: base tables.
    let (stdout, _, ok) = run_cli(&["--verify"], script);
    assert!(ok);
    assert!(stdout.contains("no usable view"));
    // With --expand: answered from the view, verified.
    let (stdout, stderr, ok) = run_cli(&["--verify", "--expand"], script);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("answered from [\"V1\"]"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("Nat.k <= V1.N"), "stdout: {stdout}");
    assert!(
        stdout.contains("cross-check: equivalent"),
        "stdout: {stdout}"
    );
}
