//! Tier-1 differential smoke: a small slice of the qcheck harness runs on
//! every `cargo test`. The full soak lives in `scripts/soak.sh` (and the
//! `qcheck` binary); this file keeps the fast path honest — a short seed
//! range across the whole engine-configuration lattice, plus a replay of
//! the persisted corpus so previously interesting cases stay green.

use aggview_qcheck::{
    check_case, check_case_sessions, check_case_shards, corpus, run_range, run_range_sessions,
    run_range_shards, CaseConfig,
};
use std::path::Path;

/// Every seed in a short range must be discrepancy-free across the full
/// lattice (plan cache, grouped indexes, compiled plans, recompute-vs-delta
/// maintenance), every emitted rewriting, and both rewrite thread counts.
#[test]
fn short_seed_range_is_discrepancy_free() {
    let cfg = CaseConfig::default();
    match run_range(0..40, &cfg) {
        Ok(checked) => assert_eq!(checked, 40),
        Err(f) => panic!(
            "seed {} failed: {}\nshrunk to:\n{}",
            f.seed, f.discrepancy, f.shrunk
        ),
    }
}

/// The same seeds through the multi-session interleaved replay: the
/// statement stream round-robined across 2 (then 3) handles of one shared
/// store must reach exactly the same verdicts as the single-session
/// oracle. This is the deterministic cross-handle coverage — per-handle
/// plan caches invalidating off another handle's DDL, snapshots tracking
/// acked writes, store-wide write policy.
#[test]
fn short_seed_range_is_discrepancy_free_across_sessions() {
    let cfg = CaseConfig::default();
    for sessions in [2usize, 3] {
        match run_range_sessions(0..12, &cfg, sessions) {
            Ok(checked) => assert_eq!(checked, 12),
            Err(f) => panic!(
                "seed {} failed with {sessions} sessions: {}\nshrunk to:\n{}",
                f.seed, f.discrepancy, f.shrunk
            ),
        }
    }
}

/// The same seeds through the hash-partitioned scatter-gather replay:
/// every statement stream driven through one driver session over 2 (then
/// 3) shard stores must reach the same verdicts, with the per-shard base
/// tables forming a disjoint cover of the global contents. Gathered
/// answers are additionally `verify`-checked against the union evaluation
/// inside the session.
#[test]
fn short_seed_range_is_discrepancy_free_across_shards() {
    let cfg = CaseConfig::default();
    for shards in [2usize, 3] {
        match run_range_shards(0..12, &cfg, shards) {
            Ok(checked) => assert_eq!(checked, 12),
            Err(f) => panic!(
                "seed {} failed with {shards} shards: {}\nshrunk to:\n{}",
                f.seed, f.discrepancy, f.shrunk
            ),
        }
    }
}

/// Replay the persisted corpus. Each file is a plain SQL script that once
/// exposed (or characterizes) a tricky interaction; a discrepancy here is a
/// regression.
#[test]
fn corpus_replays_without_regressions() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus files parse");
    assert!(
        !cases.is_empty(),
        "tests/corpus must contain at least one case"
    );
    for (name, case) in cases {
        if let Err(d) = check_case(&case) {
            panic!("corpus case {name} regressed: {d}\n{case}");
        }
    }
}

/// The corpus again, through the 2-handle interleaved replay.
#[test]
fn corpus_replays_without_regressions_across_sessions() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus files parse");
    for (name, case) in cases {
        if let Err(d) = check_case_sessions(&case, 2) {
            panic!("corpus case {name} regressed under 2 sessions: {d}\n{case}");
        }
    }
}

/// The corpus again, through the 2-shard scatter-gather replay.
#[test]
fn corpus_replays_without_regressions_across_shards() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus files parse");
    for (name, case) in cases {
        if let Err(d) = check_case_shards(&case, 2) {
            panic!("corpus case {name} regressed under 2 shards: {d}\n{case}");
        }
    }
}

/// The row-vs-columnar axis, pinned directly: every corpus case's query
/// and view definitions must produce *byte-identical* relations (rows and
/// row order, not just bag equality) under `columnar: true` and `false`.
/// The lattice oracle above already cross-checks both modes against the
/// reference interpreter; this is the stricter determinism claim behind
/// the `--no-columnar` escape hatch.
#[test]
fn corpus_answers_are_byte_identical_row_vs_columnar() {
    use aggview::engine::execute_with;
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus files parse");
    for (name, case) in cases {
        let mut db = case.database(false);
        aggview::run::materialize_views(&mut db, &case.views)
            .unwrap_or_else(|e| panic!("corpus case {name}: views fail to materialize: {e}"));
        let mut targets = vec![("query".to_string(), case.query.clone())];
        for v in &case.views {
            targets.push((format!("view {}", v.name), v.query.clone()));
        }
        for (what, q) in targets {
            let row = execute_with(&q, &db, false);
            let col = execute_with(&q, &db, true);
            match (row, col) {
                (Ok(r), Ok(c)) => {
                    assert_eq!(
                        r.rows, c.rows,
                        "corpus case {name}: {what} answers diverge between row and columnar"
                    );
                    assert_eq!(r.columns, c.columns);
                }
                (r, c) => assert_eq!(
                    format!("{r:?}"),
                    format!("{c:?}"),
                    "corpus case {name}: {what} outcomes diverge between row and columnar"
                ),
            }
        }
    }
}
