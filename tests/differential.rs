//! Tier-1 differential smoke: a small slice of the qcheck harness runs on
//! every `cargo test`. The full soak lives in `scripts/soak.sh` (and the
//! `qcheck` binary); this file keeps the fast path honest — a short seed
//! range across the whole engine-configuration lattice, plus a replay of
//! the persisted corpus so previously interesting cases stay green.

use aggview_qcheck::{check_case, corpus, run_range, CaseConfig};
use std::path::Path;

/// Every seed in a short range must be discrepancy-free across the full
/// lattice (plan cache, grouped indexes, compiled plans, recompute-vs-delta
/// maintenance), every emitted rewriting, and both rewrite thread counts.
#[test]
fn short_seed_range_is_discrepancy_free() {
    let cfg = CaseConfig::default();
    match run_range(0..40, &cfg) {
        Ok(checked) => assert_eq!(checked, 40),
        Err(f) => panic!(
            "seed {} failed: {}\nshrunk to:\n{}",
            f.seed, f.discrepancy, f.shrunk
        ),
    }
}

/// Replay the persisted corpus. Each file is a plain SQL script that once
/// exposed (or characterizes) a tricky interaction; a discrepancy here is a
/// regression.
#[test]
fn corpus_replays_without_regressions() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus files parse");
    assert!(
        !cases.is_empty(),
        "tests/corpus must contain at least one case"
    );
    for (name, case) in cases {
        if let Err(d) = check_case(&case) {
            panic!("corpus case {name} regressed: {d}\n{case}");
        }
    }
}
