//! Falsification tests for Theorem 3.1's "only if" direction: when the
//! rewriter *rejects* a view, the rejection is semantically forced — the
//! rewriting that *would* have been produced (from a nearby accepted
//! configuration) gives a **wrong answer** against the rejected view.
//!
//! Method: take a (query, view) pair the rewriter accepts and record its
//! rewriting; mutate the view so a specific condition (C2/C3/C4) fails;
//! confirm the rewriter now rejects; then run the *recorded* rewriting
//! against the *mutated* view's materialization and exhibit a database on
//! which the answers differ. This shows the conditions are not merely
//! conservative bookkeeping.

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::materialize_views;
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
        .unwrap();
    cat
}

fn db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Database::new();
    let mut r = Relation::empty(["A", "B", "C"]);
    for _ in 0..40 {
        r.push(vec![
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
        ]);
    }
    d.insert("R1", r);
    d
}

/// Accept with `good_view`, mutate to `bad_view`, and show the recorded
/// rewriting is wrong against the mutated view on some seed.
fn falsify(query_sql: &str, good_view_sql: &str, bad_view_sql: &str) {
    let cat = catalog();
    let rewriter = Rewriter::new(&cat);
    let q = parse_query(query_sql).unwrap();
    let good = ViewDef::new("V", parse_query(good_view_sql).unwrap());
    let bad = ViewDef::new("V", parse_query(bad_view_sql).unwrap());

    // Accepted with the good view.
    let rws = rewriter.rewrite(&q, std::slice::from_ref(&good)).unwrap();
    assert!(!rws.is_empty(), "good view must be usable: {good_view_sql}");
    let recorded = rws[0].query.clone();

    // Rejected with the mutated view.
    assert!(
        rewriter
            .rewrite(&q, std::slice::from_ref(&bad))
            .unwrap()
            .is_empty(),
        "mutated view must be rejected: {bad_view_sql}"
    );

    // The recorded rewriting is semantically wrong against the mutated
    // view: find a witness database.
    let mut witnessed = false;
    for seed in 0..20u64 {
        let mut d = db(seed);
        materialize_views(&mut d, std::slice::from_ref(&bad)).unwrap();
        let truth = execute(&q, &d).unwrap();
        let Ok(via) = execute(&recorded, &d) else {
            // The recorded rewriting may not even bind (e.g. a renamed
            // output column): also a decisive rejection.
            witnessed = true;
            break;
        };
        if !multiset_eq(&truth, &via) {
            witnessed = true;
            break;
        }
    }
    assert!(
        witnessed,
        "no witness found: the rejected configuration {bad_view_sql} \
         appears to answer {query_sql} correctly via {recorded}"
    );
}

#[test]
fn c3_violation_view_discards_tuples() {
    // The mutated view filters B = 1, discarding tuples the query needs.
    falsify(
        "SELECT A, SUM(B) FROM R1 GROUP BY A",
        "SELECT A, B FROM R1",
        "SELECT A, B FROM R1 WHERE B = 1",
    );
}

#[test]
fn c3_violation_view_adds_join_condition() {
    // The mutated view additionally enforces B = C.
    falsify(
        "SELECT A FROM R1 WHERE B = 2",
        "SELECT A, B FROM R1",
        "SELECT A, B FROM R1 WHERE B = C",
    );
}

#[test]
fn c4_violation_aggregated_column_lost() {
    // The mutated view pre-aggregates B per A (losing the multiplicities
    // and raw values SUM(B) per (A) still needs... here the view groups
    // coarser than the query's aggregate argument requires).
    falsify(
        "SELECT A, MIN(B) FROM R1 GROUP BY A",
        "SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B",
        "SELECT A, MAX(B) AS B, COUNT(C) AS N FROM R1 GROUP BY A",
    );
}

#[test]
fn multiplicity_violation_distinct_view() {
    // A DISTINCT view loses duplicates; for a duplicate-preserving query
    // the answers differ (and the rewriter rejects, keyless).
    falsify(
        "SELECT A, B FROM R1",
        "SELECT A, B, C FROM R1",
        "SELECT DISTINCT A, B, C FROM R1",
    );
}

#[test]
fn having_violation_view_drops_groups() {
    // The mutated view's HAVING eliminates groups the query needs.
    falsify(
        "SELECT A, B, SUM(C) FROM R1 GROUP BY A, B",
        "SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B",
        "SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B HAVING SUM(C) > 3",
    );
}
