//! Property-based soundness: **every rewriting the engine produces is
//! multiset-equivalent to the original query** (Theorems 3.1 and 4.1),
//! checked on random queries, random views, and random databases.
//!
//! Two flavours of view generation:
//! * fully random views (`random_query` reused as a view body) — most are
//!   unusable; any that *is* used must still be equivalent;
//! * embedded views (carved out of the query) — usable by construction,
//!   so these cases also exercise the rewriting steps heavily and feed the
//!   completeness check (`embedded_conjunctive_views_always_rewrite`).

use aggview::engine::datagen::random_database;
use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::rewrite::{RewriteOptions, Rewriter, Strategy, ViewDef};
use aggview::run::rewrite_and_verify;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one soundness case: generate a query and views from `seed`, rewrite,
/// and verify every rewriting on three random databases.
fn soundness_case(seed: u64, cfg: &GenConfig, strategy: Strategy, embedded: bool) -> usize {
    let catalog = experiment_catalog();
    let mut rng = StdRng::seed_from_u64(seed);
    let query = random_query(&mut rng, &catalog, cfg);

    let mut views: Vec<ViewDef> = Vec::new();
    if embedded {
        for (i, aggregated) in [(0usize, false), (1usize, true)] {
            if let Some(v) =
                embedded_view(&mut rng, &query, &catalog, &format!("EV{i}"), aggregated)
            {
                views.push(v);
            }
        }
    } else {
        for i in 0..2 {
            let body = random_query(&mut rng, &catalog, cfg);
            views.push(ViewDef::new(format!("RV{i}"), body));
        }
    }

    let rewriter = Rewriter::with_options(
        &catalog,
        RewriteOptions {
            strategy,
            max_rewritings: 16,
            ..RewriteOptions::default()
        },
    );
    let mut found = 0;
    for db_seed in 0..3u64 {
        let db = random_database(&catalog, 25, 4, seed.wrapping_mul(31).wrapping_add(db_seed));
        // rewrite_and_verify panics on any inequivalent rewriting.
        let rws = rewrite_and_verify(&rewriter, &query, &views, &db);
        found = rws.len();
    }
    found
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random views, weighted strategy: no unsound rewriting survives.
    #[test]
    fn random_views_weighted_sound(seed in any::<u64>()) {
        soundness_case(seed, &GenConfig::default(), Strategy::Weighted, false);
    }

    /// Random views, paper-faithful strategy (V^a where applicable).
    #[test]
    fn random_views_paper_va_sound(seed in any::<u64>()) {
        soundness_case(seed, &GenConfig::default(), Strategy::PaperFaithful, false);
    }

    /// Embedded views, weighted strategy — heavy rewriting coverage.
    #[test]
    fn embedded_views_weighted_sound(seed in any::<u64>()) {
        soundness_case(seed, &GenConfig::default(), Strategy::Weighted, true);
    }

    /// Embedded views, paper-faithful strategy.
    #[test]
    fn embedded_views_paper_va_sound(seed in any::<u64>()) {
        soundness_case(seed, &GenConfig::default(), Strategy::PaperFaithful, true);
    }

    /// Equality-only fragment (the completeness theorems' setting).
    #[test]
    fn equality_only_sound(seed in any::<u64>()) {
        let cfg = GenConfig { inequalities: false, ..GenConfig::default() };
        soundness_case(seed, &cfg, Strategy::Weighted, true);
    }

    /// An embedded *conjunctive* view over a conjunctive or aggregation
    /// query is usable by construction (it keeps every column and exactly
    /// the local conditions) — the rewriter must find a rewriting that
    /// uses it. One-sided completeness check.
    #[test]
    fn embedded_conjunctive_views_always_rewrite(seed in any::<u64>()) {
        let catalog = experiment_catalog();
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_query(&mut rng, &catalog, &cfg);
        let Some(view) = embedded_view(&mut rng, &query, &catalog, "EV", false) else {
            return Ok(());
        };
        let rewriter = Rewriter::new(&catalog);
        let rws = rewriter.rewrite(&query, std::slice::from_ref(&view)).unwrap();
        prop_assert!(
            !rws.is_empty(),
            "embedded conjunctive view must be usable\n  query: {}\n  view: {}",
            query,
            view.query
        );
    }
}

/// A deterministic sweep that reports how often rewritings exist — the
/// suite must actually exercise the rewriting paths, not just reject
/// everything. (A regression that rejects every view would silently pass
/// the soundness properties.)
#[test]
fn generator_produces_usable_views_often() {
    let catalog = experiment_catalog();
    let cfg = GenConfig::default();
    let rewriter = Rewriter::new(&catalog);
    let mut usable = 0;
    let total = 100;
    for seed in 0..total {
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_query(&mut rng, &catalog, &cfg);
        let mut views = Vec::new();
        if let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV0", false) {
            views.push(v);
        }
        if let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV1", true) {
            views.push(v);
        }
        if !rewriter.rewrite(&query, &views).unwrap().is_empty() {
            usable += 1;
        }
    }
    assert!(
        usable >= total / 2,
        "only {usable}/{total} cases produced a rewriting — generator or rewriter regressed"
    );
}
