//! Concurrency stress for the shared snapshot store: N reader threads
//! hammer aggregation queries through their own session handles while one
//! writer thread streams inserts, deletes, and mid-run DDL. Every
//! reader-observed answer must equal the engine's reference evaluator run
//! on the exact snapshot the answer was computed against (`Session::
//! database()` exposes the pinned snapshot) — i.e. the answer is correct
//! on *some* published snapshot, never a torn mix of two. Reader-observed
//! epochs must be monotonic, and the writer's acks must be read back by
//! its own handle.

use aggview::engine::reference::execute_reference;
use aggview::engine::Value;
use aggview::server::SharedStore;
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sql::{parse_query, parse_script, Statement};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Deterministic xorshift so the workload is identical on every run.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn run_script(session: &mut Session, sql: &str) {
    let stmts = parse_script(sql).expect("script parses");
    session.run_script(&stmts).expect("script runs");
}

/// Sorted rows, deduplicated when the rewriting is set-semantics only.
fn comparable(mut rows: Vec<Vec<Value>>, set_semantics: bool) -> Vec<Vec<Value>> {
    rows.sort();
    if set_semantics {
        rows.dedup();
    }
    rows
}

/// The stress harness: `readers` reader threads race one writer for
/// `write_ops` write statements. Returns (total reads, reads answered
/// from a view).
fn stress(readers: usize, write_ops: usize) -> (u64, u64) {
    let store = SharedStore::with_defaults();
    let mut setup = store.session(SessionOptions::default());
    run_script(
        &mut setup,
        "CREATE TABLE Sales (Region, Product, Amount);
         INSERT INTO Sales VALUES (0, 0, 10), (0, 1, 20), (1, 0, 30), (1, 1, 40),
                                  (2, 0, 50), (2, 1, 60), (3, 0, 70), (3, 1, 80);
         CREATE VIEW Totals AS
           SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
           FROM Sales GROUP BY Region, Product;",
    );

    let queries: Arc<Vec<Statement>> = Arc::new(
        [
            "SELECT Region, SUM(Amount) FROM Sales GROUP BY Region",
            "SELECT Product, SUM(Amount) FROM Sales GROUP BY Product",
            "SELECT Region, Product, SUM(Amount) FROM Sales GROUP BY Region, Product",
            "SELECT Region, COUNT(Amount) FROM Sales GROUP BY Region",
        ]
        .iter()
        .map(|sql| Statement::Select(parse_query(sql).expect("query parses")))
        .collect(),
    );
    let done = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    for r in 0..readers {
        let mut session = store.session(SessionOptions::default());
        let queries = Arc::clone(&queries);
        let done = Arc::clone(&done);
        threads.push(
            std::thread::Builder::new()
                .name(format!("stress-reader-{r}"))
                .spawn(move || {
                    let mut n = 0u64;
                    let mut from_view = 0u64;
                    let mut last_epoch = 0u64;
                    let mut last_schema = 0u64;
                    while !done.load(Ordering::Acquire) || n == 0 {
                        let stmt = &queries[n as usize % queries.len()];
                        let Statement::Select(q) = stmt else {
                            unreachable!()
                        };
                        let outcome = session.execute(stmt).expect("select succeeds");
                        let StatementOutcome::Answer {
                            relation,
                            views_used,
                            set_semantics,
                            ..
                        } = outcome
                        else {
                            panic!("expected an answer");
                        };
                        // The pinned snapshot is exactly the state the
                        // answer was computed on: the reference evaluator
                        // must reproduce it there.
                        let expected = execute_reference(q, session.database())
                            .expect("reference evaluation succeeds");
                        assert_eq!(
                            comparable(relation.rows, set_semantics),
                            comparable(expected.rows, set_semantics),
                            "reader answer diverges from the reference on its own \
                             pinned snapshot (query: {q})"
                        );
                        let (epoch, schema) =
                            session.snapshot_epochs().expect("store-backed session");
                        assert!(
                            epoch >= last_epoch && schema >= last_schema,
                            "epochs went backwards: {last_epoch}->{epoch}, \
                             {last_schema}->{schema}"
                        );
                        last_epoch = epoch;
                        last_schema = schema;
                        from_view += !views_used.is_empty() as u64;
                        n += 1;
                    }
                    (n, from_view)
                })
                .expect("spawn reader"),
        );
    }

    // The writer: deterministic stream of inserts, deletes, and two
    // mid-run CREATE VIEWs (schema-epoch bumps every handle must absorb).
    {
        let mut session = store.session(SessionOptions::default());
        let done = Arc::clone(&done);
        threads.push(
            std::thread::Builder::new()
                .name("stress-writer".into())
                .spawn(move || {
                    let mut rng = 0xdead_beef_cafe_u64;
                    for i in 0..write_ops {
                        let sql = if i == write_ops / 3 {
                            "CREATE VIEW RegionOnly AS \
                             SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N \
                             FROM Sales GROUP BY Region;"
                                .to_string()
                        } else if i == 2 * write_ops / 3 {
                            "CREATE VIEW ProductOnly AS \
                             SELECT Product, SUM(Amount) AS T, COUNT(Amount) AS N \
                             FROM Sales GROUP BY Product;"
                                .to_string()
                        } else if xorshift(&mut rng).is_multiple_of(8) {
                            "DELETE FROM Sales WHERE Amount = 10;".to_string()
                        } else {
                            format!(
                                "INSERT INTO Sales VALUES ({}, {}, {});",
                                xorshift(&mut rng) % 4,
                                xorshift(&mut rng) % 2,
                                xorshift(&mut rng) % 100
                            )
                        };
                        let stmts = parse_script(&sql).expect("write parses");
                        // CREATE VIEW may race another run's name on retry
                        // loops; in this harness names are unique, so every
                        // write must apply.
                        session.run_script(&stmts).expect("write applies");
                        // Read-your-writes: the ack implies the publish.
                        let (epoch, _) = session.snapshot_epochs().expect("store-backed");
                        assert!(epoch > 0, "acked write without a published snapshot");
                    }
                    done.store(true, Ordering::Release);
                    (0u64, 0u64)
                })
                .expect("spawn writer"),
        );
    }

    let mut reads = 0u64;
    let mut from_view = 0u64;
    for t in threads {
        let (n, v) = t.join().expect("stress thread");
        reads += n;
        from_view += v;
    }
    assert!(store.epoch() > 0);
    assert!(
        store.schema_epoch() >= 4,
        "setup DDL + two mid-run views must bump the schema epoch"
    );
    (reads, from_view)
}

#[test]
fn four_readers_one_writer_never_observe_torn_state() {
    let (reads, from_view) = stress(4, 120);
    assert!(reads > 0, "readers made progress");
    // The Totals view answers the region/product rollups: a healthy run
    // serves a substantial share of reads from views.
    assert!(
        from_view > 0,
        "no read was answered from a view ({reads} reads)"
    );
}

#[test]
fn single_reader_with_writer_stays_consistent() {
    let (reads, _) = stress(1, 60);
    assert!(reads > 0);
}
