//! End-to-end fuzzing of the session layer (the CLI's engine): random
//! schemas, inserts, deletes, views and queries — every `SELECT` answered
//! through a view must cross-check equal against base-table evaluation,
//! and no statement may panic.

use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sql::ast::Literal;
use aggview::sql::{CreateTable, CreateView, Delete, Insert, Statement};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_case(seed: u64) -> (usize, usize) {
    let catalog = experiment_catalog();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut session = Session::new(SessionOptions {
        verify: true,
        ..SessionOptions::default()
    });

    // Schema (the generator's fixed catalog).
    for t in catalog.tables() {
        session
            .execute(&Statement::CreateTable(CreateTable {
                name: t.name.clone(),
                columns: t.column_names(),
                keys: Vec::new(),
            }))
            .expect("create table");
    }

    // Random inserts.
    for t in catalog.tables() {
        let rows: Vec<Vec<Literal>> = (0..rng.random_range(5..25))
            .map(|_| {
                (0..t.arity())
                    .map(|_| Literal::Int(rng.random_range(0..4)))
                    .collect()
            })
            .collect();
        session
            .execute(&Statement::Insert(Insert {
                table: t.name.clone(),
                rows,
            }))
            .expect("insert");
    }

    // One or two views carved from a seed query (usable by construction)
    // plus a fully random one.
    let cfg = GenConfig::default();
    let anchor = random_query(&mut rng, &catalog, &cfg);
    let mut n_views = 0;
    for (i, aggregated) in [(0, false), (1, true)] {
        if let Some(v) = embedded_view(&mut rng, &anchor, &catalog, &format!("EV{i}"), aggregated) {
            session
                .execute(&Statement::CreateView(CreateView {
                    name: v.name.clone(),
                    query: v.query.clone(),
                }))
                .expect("create view");
            n_views += 1;
        }
    }
    {
        let body = random_query(&mut rng, &catalog, &cfg);
        session
            .execute(&Statement::CreateView(CreateView {
                name: "RV".into(),
                query: body,
            }))
            .expect("create view");
        n_views += 1;
    }

    // A delete, stressing maintenance through the session.
    let victim = catalog.tables().next().expect("non-empty").name.clone();
    session
        .execute(&Statement::Delete(Delete {
            table: victim,
            filter: aggview::sql::parse_query("SELECT A FROM R1 WHERE A = 1")
                .expect("valid SQL")
                .where_clause,
        }))
        .expect("delete");

    // Random queries: the anchor (views likely usable) plus fresh ones.
    let mut hits = 0;
    let mut total = 0;
    for qi in 0..4 {
        let q = if qi == 0 {
            anchor.clone()
        } else {
            random_query(&mut rng, &catalog, &cfg)
        };
        total += 1;
        let outcome = session
            .execute(&Statement::Select(q.clone()))
            .unwrap_or_else(|e| panic!("select failed on {q}: {e}"));
        let StatementOutcome::Answer {
            views_used,
            verified,
            ..
        } = outcome
        else {
            panic!("expected an answer")
        };
        if !views_used.is_empty() {
            hits += 1;
            assert_eq!(
                verified,
                Some(true),
                "session answered {q} from {views_used:?} with a WRONG result"
            );
        }
    }
    let _ = n_views;
    (hits, total)
}

/// Drive two sessions — one with the serving-plan cache, one without —
/// through one identical interleaved stream of INSERT / DELETE /
/// CREATE VIEW / SELECT, re-issuing earlier queries so the cached session
/// actually serves hits. Every pair of answers must agree as multisets:
/// a cached plan must never return stale or wrong rows, across data
/// writes (no invalidation) and schema changes (epoch invalidation).
/// Returns the cached session's hit count.
fn run_cached_vs_uncached(seed: u64) -> u64 {
    let catalog = experiment_catalog();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cached = Session::new(SessionOptions::default());
    let mut uncached = Session::new(SessionOptions {
        plan_cache_cap: 0,
        ..SessionOptions::default()
    });

    let mut both = |stmt: &Statement| {
        let a = cached.execute(stmt).expect("cached session");
        let b = uncached.execute(stmt).expect("uncached session");
        if let (
            StatementOutcome::Answer { relation: ra, .. },
            StatementOutcome::Answer { relation: rb, .. },
        ) = (&a, &b)
        {
            assert_eq!(
                ra.sorted_rows(),
                rb.sorted_rows(),
                "cached and uncached answers diverge on {stmt}"
            );
        }
    };

    for t in catalog.tables() {
        both(&Statement::CreateTable(CreateTable {
            name: t.name.clone(),
            columns: t.column_names(),
            keys: Vec::new(),
        }));
    }
    for t in catalog.tables() {
        let rows: Vec<Vec<Literal>> = (0..rng.random_range(5..15))
            .map(|_| {
                (0..t.arity())
                    .map(|_| Literal::Int(rng.random_range(0..4)))
                    .collect()
            })
            .collect();
        both(&Statement::Insert(Insert {
            table: t.name.clone(),
            rows,
        }));
    }

    let cfg = GenConfig::default();
    let mut issued: Vec<Statement> = Vec::new();
    let mut n_views = 0;
    for _ in 0..24 {
        match rng.random_range(0..10) {
            // Re-issue an earlier SELECT: the cached session should hit.
            0..=3 if !issued.is_empty() => {
                let q = issued[rng.random_range(0..issued.len())].clone();
                both(&q);
            }
            // Fresh SELECT.
            0..=5 => {
                let q = Statement::Select(random_query(&mut rng, &catalog, &cfg));
                both(&q);
                issued.push(q);
            }
            // INSERT (data write: cached plans stay valid, answers must
            // still track the new rows).
            6..=7 => {
                let t = catalog
                    .tables()
                    .nth(rng.random_range(0..catalog.tables().count()))
                    .expect("table");
                let rows: Vec<Vec<Literal>> = (0..rng.random_range(1..4))
                    .map(|_| {
                        (0..t.arity())
                            .map(|_| Literal::Int(rng.random_range(0..4)))
                            .collect()
                    })
                    .collect();
                both(&Statement::Insert(Insert {
                    table: t.name.clone(),
                    rows,
                }));
            }
            // DELETE.
            8 => {
                let t = catalog.tables().next().expect("non-empty").name.clone();
                both(&Statement::Delete(Delete {
                    table: t,
                    filter: aggview::sql::parse_query("SELECT A FROM R1 WHERE A = 0")
                        .expect("valid SQL")
                        .where_clause,
                }));
            }
            // CREATE VIEW (schema event: bumps the cache epoch).
            _ => {
                let body = random_query(&mut rng, &catalog, &cfg);
                both(&Statement::CreateView(CreateView {
                    name: format!("FV{n_views}"),
                    query: body,
                }));
                n_views += 1;
            }
        }
    }
    cached.plan_cache().hits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sessions_never_answer_wrong(seed in any::<u64>()) {
        run_case(seed);
    }

    #[test]
    fn cached_sessions_agree_with_uncached(seed in any::<u64>()) {
        run_cached_vs_uncached(seed);
    }
}

/// The cached-vs-uncached fuzz must actually serve cache hits.
#[test]
fn cache_fuzz_exercises_hits() {
    let mut hits = 0;
    for seed in 0..10 {
        hits += run_cached_vs_uncached(seed);
    }
    assert!(hits >= 10, "only {hits} plan-cache hits across the sweep");
}

/// The fuzz must actually exercise the view-answering path.
#[test]
fn fuzz_exercises_view_hits() {
    let mut hits = 0;
    for seed in 0..30 {
        hits += run_case(seed).0;
    }
    assert!(hits >= 10, "only {hits} view hits across the sweep");
}

/// Directed stale-plan check: a SELECT is cached and hit, then a
/// CREATE VIEW lands that can answer the same query. The next issue of
/// the query must NOT be served by the stale base-table plan — the epoch
/// bump has to force a re-plan that picks up the new view — and the
/// view-backed plan must then itself cache and track later writes.
#[test]
fn create_view_between_cache_hits_is_never_stale() {
    use aggview::sql::parse_query;

    let mut session = Session::new(SessionOptions {
        verify: true,
        ..SessionOptions::default()
    });
    session
        .execute(&Statement::CreateTable(CreateTable {
            name: "R".into(),
            columns: vec!["A".into(), "B".into()],
            keys: Vec::new(),
        }))
        .expect("create table");
    session
        .execute(&Statement::Insert(Insert {
            table: "R".into(),
            rows: vec![
                vec![Literal::Int(0), Literal::Int(1)],
                vec![Literal::Int(0), Literal::Int(2)],
                vec![Literal::Int(1), Literal::Int(3)],
                vec![Literal::Int(1), Literal::Int(4)],
            ],
        }))
        .expect("insert");

    let q = Statement::Select(parse_query("SELECT A, SUM(B) FROM R GROUP BY A").unwrap());
    let select = |session: &mut Session, q: &Statement| {
        let StatementOutcome::Answer {
            relation,
            views_used,
            ..
        } = session.execute(q).expect("select")
        else {
            panic!("expected an answer")
        };
        (relation, views_used)
    };

    // Miss, then hit, both from base tables.
    let (a1, used1) = select(&mut session, &q);
    assert!(used1.is_empty());
    assert_eq!(session.plan_cache().hits(), 0);
    let (a2, _) = select(&mut session, &q);
    assert_eq!(session.plan_cache().hits(), 1);
    assert_eq!(a1.sorted_rows(), a2.sorted_rows());

    // A view that covers the query lands between hits.
    session
        .execute(&Statement::CreateView(CreateView {
            name: "V".into(),
            query: parse_query("SELECT A, SUM(B) AS S, COUNT(B) AS N FROM R GROUP BY A").unwrap(),
        }))
        .expect("create view");

    // Re-issue: the stale base plan must not serve this. The hit counter
    // must not move, the rewriter must now answer from V, and the rows
    // must be unchanged (no data was written).
    let (a3, used3) = select(&mut session, &q);
    assert_eq!(
        session.plan_cache().hits(),
        1,
        "stale cached plan served across CREATE VIEW"
    );
    assert!(
        used3.contains(&"V".to_string()),
        "re-plan after CREATE VIEW ignored the new view (used {used3:?})"
    );
    assert_eq!(a1.sorted_rows(), a3.sorted_rows());

    // The view-backed plan now caches and must track a later INSERT
    // through view maintenance.
    let (a4, _) = select(&mut session, &q);
    assert_eq!(session.plan_cache().hits(), 2);
    assert_eq!(a3.sorted_rows(), a4.sorted_rows());
    session
        .execute(&Statement::Insert(Insert {
            table: "R".into(),
            rows: vec![vec![Literal::Int(1), Literal::Int(5)]],
        }))
        .expect("insert");
    let (a5, _) = select(&mut session, &q);
    use aggview::engine::Value;
    assert!(
        a5.rows.contains(&vec![Value::Int(1), Value::Int(12)]),
        "answer after INSERT does not reflect the new row: {a5}"
    );
}

/// The same stale-plan race across two handles of one shared store: handle
/// A caches a base-table plan; handle B (a different session with its own
/// plan cache) lands a covering CREATE VIEW through the store's writer
/// thread. A's next issue of the query must not be served by its cached
/// base-table plan — the store's schema epoch, synced on every read, has
/// to invalidate A's private cache even though A itself ran no DDL.
#[test]
fn create_view_on_other_handle_invalidates_cached_plan() {
    use aggview::server::SharedStore;
    use aggview::sql::parse_query;

    let store = SharedStore::with_defaults();
    let mut a = store.session(SessionOptions {
        verify: true,
        ..SessionOptions::default()
    });
    let mut b = store.session(SessionOptions::default());

    a.execute(&Statement::CreateTable(CreateTable {
        name: "R".into(),
        columns: vec!["A".into(), "B".into()],
        keys: Vec::new(),
    }))
    .expect("create table");
    a.execute(&Statement::Insert(Insert {
        table: "R".into(),
        rows: vec![
            vec![Literal::Int(0), Literal::Int(1)],
            vec![Literal::Int(0), Literal::Int(2)],
            vec![Literal::Int(1), Literal::Int(3)],
        ],
    }))
    .expect("insert");

    let q = Statement::Select(parse_query("SELECT A, SUM(B) FROM R GROUP BY A").unwrap());
    let select = |session: &mut Session, q: &Statement| {
        let StatementOutcome::Answer {
            relation,
            views_used,
            ..
        } = session.execute(q).expect("select")
        else {
            panic!("expected an answer")
        };
        (relation, views_used)
    };

    // Handle A: miss then hit, both base-table plans.
    let (a1, used1) = select(&mut a, &q);
    assert!(used1.is_empty());
    let (a2, _) = select(&mut a, &q);
    assert_eq!(a.plan_cache().hits(), 1);
    assert_eq!(a1.sorted_rows(), a2.sorted_rows());

    // Handle B defines a covering view. A never sees this statement —
    // only the published snapshot's schema epoch.
    b.execute(&Statement::CreateView(CreateView {
        name: "V".into(),
        query: parse_query("SELECT A, SUM(B) AS S, COUNT(B) AS N FROM R GROUP BY A").unwrap(),
    }))
    .expect("create view on handle B");

    // A's re-issue must re-plan against the new snapshot: no new hit, the
    // answer now comes from V, rows unchanged.
    let (a3, used3) = select(&mut a, &q);
    assert_eq!(
        a.plan_cache().hits(),
        1,
        "handle A served a plan compiled against the pre-view catalog epoch"
    );
    assert!(
        used3.contains(&"V".to_string()),
        "handle A's re-plan ignored the view created by handle B (used {used3:?})"
    );
    assert_eq!(a1.sorted_rows(), a3.sorted_rows());

    // And A's fresh view-backed plan still tracks writes from B.
    b.execute(&Statement::Insert(Insert {
        table: "R".into(),
        rows: vec![vec![Literal::Int(1), Literal::Int(4)]],
    }))
    .expect("insert on handle B");
    let (a4, _) = select(&mut a, &q);
    use aggview::engine::Value as V;
    assert!(
        a4.rows.contains(&vec![V::Int(1), V::Int(7)]),
        "handle A's answer does not reflect handle B's insert: {a4}"
    );
}
