//! End-to-end fuzzing of the session layer (the CLI's engine): random
//! schemas, inserts, deletes, views and queries — every `SELECT` answered
//! through a view must cross-check equal against base-table evaluation,
//! and no statement may panic.

use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sql::ast::Literal;
use aggview::sql::{CreateTable, CreateView, Delete, Insert, Statement};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_case(seed: u64) -> (usize, usize) {
    let catalog = experiment_catalog();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut session = Session::new(SessionOptions {
        verify: true,
        ..SessionOptions::default()
    });

    // Schema (the generator's fixed catalog).
    for t in catalog.tables() {
        session
            .execute(&Statement::CreateTable(CreateTable {
                name: t.name.clone(),
                columns: t.column_names(),
                keys: Vec::new(),
            }))
            .expect("create table");
    }

    // Random inserts.
    for t in catalog.tables() {
        let rows: Vec<Vec<Literal>> = (0..rng.random_range(5..25))
            .map(|_| {
                (0..t.arity())
                    .map(|_| Literal::Int(rng.random_range(0..4)))
                    .collect()
            })
            .collect();
        session
            .execute(&Statement::Insert(Insert {
                table: t.name.clone(),
                rows,
            }))
            .expect("insert");
    }

    // One or two views carved from a seed query (usable by construction)
    // plus a fully random one.
    let cfg = GenConfig::default();
    let anchor = random_query(&mut rng, &catalog, &cfg);
    let mut n_views = 0;
    for (i, aggregated) in [(0, false), (1, true)] {
        if let Some(v) = embedded_view(&mut rng, &anchor, &catalog, &format!("EV{i}"), aggregated)
        {
            session
                .execute(&Statement::CreateView(CreateView {
                    name: v.name.clone(),
                    query: v.query.clone(),
                }))
                .expect("create view");
            n_views += 1;
        }
    }
    {
        let body = random_query(&mut rng, &catalog, &cfg);
        session
            .execute(&Statement::CreateView(CreateView {
                name: "RV".into(),
                query: body,
            }))
            .expect("create view");
        n_views += 1;
    }

    // A delete, stressing maintenance through the session.
    let victim = catalog.tables().next().expect("non-empty").name.clone();
    session
        .execute(&Statement::Delete(Delete {
            table: victim,
            filter: aggview::sql::parse_query("SELECT A FROM R1 WHERE A = 1")
                .expect("valid SQL")
                .where_clause,
        }))
        .expect("delete");

    // Random queries: the anchor (views likely usable) plus fresh ones.
    let mut hits = 0;
    let mut total = 0;
    for qi in 0..4 {
        let q = if qi == 0 {
            anchor.clone()
        } else {
            random_query(&mut rng, &catalog, &cfg)
        };
        total += 1;
        let outcome = session
            .execute(&Statement::Select(q.clone()))
            .unwrap_or_else(|e| panic!("select failed on {q}: {e}"));
        let StatementOutcome::Answer {
            views_used,
            verified,
            ..
        } = outcome
        else {
            panic!("expected an answer")
        };
        if !views_used.is_empty() {
            hits += 1;
            assert_eq!(
                verified,
                Some(true),
                "session answered {q} from {views_used:?} with a WRONG result"
            );
        }
    }
    let _ = n_views;
    (hits, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sessions_never_answer_wrong(seed in any::<u64>()) {
        run_case(seed);
    }
}

/// The fuzz must actually exercise the view-answering path.
#[test]
fn fuzz_exercises_view_hits() {
    let mut hits = 0;
    for seed in 0..30 {
        hits += run_case(seed).0;
    }
    assert!(hits >= 10, "only {hits} view hits across the sweep");
}
