//! A full warehouse lifecycle through the session layer, exercising every
//! subsystem together: DDL with keys, bulk loads, a summary hierarchy
//! (views over views), advisor-driven view creation, incremental
//! maintenance under inserts and deletes, cost-ranked query answering with
//! cross-checks, and the Section 5 set-semantics path — one scenario,
//! start to finish.

use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sql::parse_script;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_answer(outcome: &StatementOutcome, expect_view: Option<&str>) -> usize {
    let StatementOutcome::Answer {
        relation,
        views_used,
        verified,
        ..
    } = outcome
    else {
        panic!("expected an answer, got {outcome:?}")
    };
    match expect_view {
        Some(v) => assert!(
            views_used.iter().any(|u| u == v),
            "expected view {v}, used {views_used:?}"
        ),
        None => assert!(views_used.is_empty(), "unexpected views {views_used:?}"),
    }
    assert_eq!(verified, &Some(true), "cross-check failed");
    relation.len()
}

#[test]
fn full_lifecycle() {
    let mut session = Session::new(SessionOptions {
        verify: true,
        ..SessionOptions::default()
    });

    // --- Schema and load -------------------------------------------------
    let ddl = parse_script(
        "CREATE TABLE Plans (Plan_Id, Plan_Name, KEY (Plan_Id));
         CREATE TABLE Calls (Call_Id, Plan_Id, Month, Year, Charge, KEY (Call_Id));",
    )
    .unwrap();
    session.run_script(&ddl).unwrap();

    // Plans.
    let plans = "INSERT INTO Plans VALUES (0, 'basic'), (1, 'gold'), (2, 'pro');";
    session.run_script(&parse_script(plans).unwrap()).unwrap();

    // Bulk-load calls in batches (no views yet — plain inserts).
    let mut rng = StdRng::seed_from_u64(6);
    let mut call_id = 0;
    let mut load_batch = |session: &mut Session, n: usize| {
        let rows: Vec<String> = (0..n)
            .map(|_| {
                let s = format!(
                    "({}, {}, {}, {}, {})",
                    call_id,
                    rng.random_range(0..3),
                    rng.random_range(1..=12),
                    if rng.random_bool(0.5) { 1994 } else { 1995 },
                    rng.random_range(1..=500)
                );
                call_id += 1;
                s
            })
            .collect();
        let stmt = format!("INSERT INTO Calls VALUES {};", rows.join(", "));
        session.run_script(&parse_script(&stmt).unwrap()).unwrap();
    };
    load_batch(&mut session, 300);

    // --- Summary hierarchy (views over views) ----------------------------
    let views = parse_script(
        "CREATE VIEW Monthly AS
           SELECT Plan_Id, Year, Month, SUM(Charge) AS Rev, COUNT(Call_Id) AS N
           FROM Calls GROUP BY Plan_Id, Year, Month;
         CREATE VIEW Yearly AS
           SELECT Plan_Id, Year, SUM(Rev) AS Rev, SUM(N) AS N
           FROM Monthly GROUP BY Plan_Id, Year;",
    )
    .unwrap();
    session.run_script(&views).unwrap();

    // Annual revenue: must route to the (smaller) Yearly summary.
    let q_annual =
        parse_script("SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id;")
            .unwrap();
    let out = session.run_script(&q_annual).unwrap();
    assert_answer(&out[0], Some("Yearly"));

    // Monthly granularity: Yearly is too coarse, Monthly answers.
    let q_monthly = parse_script(
        "SELECT Plan_Id, Month, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id, Month;",
    )
    .unwrap();
    let out = session.run_script(&q_monthly).unwrap();
    assert_answer(&out[0], Some("Monthly"));

    // --- Incremental maintenance under stream + answers stay exact -------
    load_batch(&mut session, 200);
    let out = session.run_script(&q_annual).unwrap();
    assert_answer(&out[0], Some("Yearly"));

    // Deletes (refunds for one plan in 1994): SUM/COUNT views maintain.
    let del = parse_script("DELETE FROM Calls WHERE Plan_Id = 2 AND Year = 1994;").unwrap();
    let out = session.run_script(&del).unwrap();
    let StatementOutcome::Ok(msg) = &out[0] else {
        panic!()
    };
    assert!(msg.contains("deleted"), "{msg}");
    let out = session.run_script(&q_annual).unwrap();
    assert_answer(&out[0], Some("Yearly"));

    // --- Advisor: a query the hierarchy cannot answer --------------------
    // Per-plan-name revenue needs the Plans join; ask SUGGEST and adopt.
    let q_byname = "SELECT Plan_Name, SUM(Charge) FROM Calls, Plans \
                    WHERE Calls.Plan_Id = Plans.Plan_Id GROUP BY Plan_Name";
    let out = session
        .run_script(&parse_script(&format!("SUGGEST {q_byname};")).unwrap())
        .unwrap();
    let StatementOutcome::Explanation(lines) = &out[0] else {
        panic!()
    };
    assert!(
        !lines.is_empty() && lines[0].contains("CREATE VIEW"),
        "{lines:?}"
    );
    // Adopt the top suggestion verbatim (the SUGGEST output is runnable).
    let create = lines[0]
        .split_once(": ")
        .expect("benefit prefix")
        .1
        .to_string();
    session.run_script(&parse_script(&create).unwrap()).unwrap();
    let out = session
        .run_script(&parse_script(&format!("{q_byname};")).unwrap())
        .unwrap();
    let n = assert_answer(&out[0], Some("Suggested1"));
    assert_eq!(n, 3, "three plans reported");

    // --- Section 5: key-justified many-to-1 ------------------------------
    // Find plans whose id equals their revenue rank... simpler: the classic
    // diagonal over a keyed table via a self-join view.
    let set_script = parse_script(
        "CREATE VIEW Pairs AS
           SELECT u.Plan_Id AS P1, w.Plan_Id AS P2
           FROM Plans u, Plans w WHERE u.Plan_Name = w.Plan_Name;
         SELECT Plan_Id FROM Plans WHERE Plan_Name = Plan_Name;",
    )
    .unwrap();
    let out = session.run_script(&set_script).unwrap();
    // The trivial self-equality makes every plan qualify; what matters is
    // that the session answers correctly whichever route it picks.
    let StatementOutcome::Answer {
        relation, verified, ..
    } = &out[1]
    else {
        panic!()
    };
    assert_eq!(relation.len(), 3);
    assert_eq!(verified, &Some(true));
}
