-- AVG answered from a SUM/COUNT view (§4.2). The delete step removes the
-- whole A = 1 group, so empty-group handling and the AVG = SUM/COUNT
-- recomputation are both on the line.
CREATE TABLE S0 (A, B);
INSERT INTO S0 VALUES (0, 2), (0, 4), (1, 3), (1, 5), (1, 7), (2, 6);
CREATE VIEW W0 AS SELECT u0.A, SUM(u0.B) AS S, COUNT(u0.B) AS N FROM S0 AS u0 GROUP BY u0.A;
SELECT t0.A, AVG(t0.B) FROM S0 AS t0 GROUP BY t0.A;
