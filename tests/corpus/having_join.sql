-- HAVING over SUM across a join, with a conjunctive view narrowed by an
-- order predicate the query does not imply: the view must be rejected by
-- C3 (first half) and the answer must still come out right at every
-- lattice point.
CREATE TABLE S0 (A, B);
INSERT INTO S0 VALUES (0, 1), (1, 2), (2, 3), (0, 4);
CREATE TABLE S1 (A, B);
INSERT INTO S1 VALUES (0, 5), (2, 1), (2, 2);
CREATE VIEW W0 AS SELECT u0.A, u0.B FROM S0 AS u0 WHERE u0.B <= 3;
SELECT t0.A, SUM(t1.B) FROM S0 AS t0, S1 AS t1 WHERE t0.A = t1.A GROUP BY t0.A HAVING SUM(t1.B) > 2;
