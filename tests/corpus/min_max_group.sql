-- MIN/MAX per group answered through a duplicate-insensitive grouped view.
-- The delete step removes every S0 row with A = 1, killing the group whose
-- minimum came from a deleted row — the maintenance path must not keep a
-- stale extremum.
CREATE TABLE S0 (A, B, C);
INSERT INTO S0 VALUES (0, 4, 1), (1, 2, 2), (0, 7, 3), (2, 5, 1), (1, 9, 2), (2, 2, 0);
CREATE VIEW W0 AS SELECT u0.A, MIN(u0.B) AS LO, MAX(u0.B) AS HI FROM S0 AS u0 GROUP BY u0.A;
SELECT t0.A, MIN(t0.B) FROM S0 AS t0 GROUP BY t0.A;
