//! Determinism of the parallel, indexed search: for any query/view set,
//! `rewrite` must produce the **identical rewriting sequence** — same
//! queries, same auxiliary views, same order — regardless of the thread
//! count, and the signature prefilter must never reject a view the
//! unfiltered search would have used. (Theorem 3.2's Church-Rosser
//! property makes order-independent exploration complete; the reduction
//! step makes the *output order* deterministic on top of that.)

use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::rewrite::{RewriteOptions, Rewriter, Rewriting, Strategy, ViewDef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;

/// Everything observable about a rewriting, as a comparable value: the
/// query text, the (name, query) pairs of its auxiliary views, the views
/// used, and the `used_paper_va` / `set_semantics` / `requires_nat` flags.
type Fingerprint = (String, Vec<(String, String)>, Vec<String>, bool, bool, bool);

fn fingerprint(r: &Rewriting) -> Fingerprint {
    (
        r.query.to_string(),
        r.aux_views
            .iter()
            .map(|v| (v.name.clone(), v.query.to_string()))
            .collect(),
        r.views_used.clone(),
        r.used_paper_va,
        r.set_semantics,
        r.requires_nat,
    )
}

/// Generate a query plus a mixed view pool (embedded + random) from `seed`.
fn workload(seed: u64) -> (aggview::sql::ast::Query, Vec<ViewDef>) {
    let catalog = experiment_catalog();
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let query = random_query(&mut rng, &catalog, &cfg);
    let mut views: Vec<ViewDef> = Vec::new();
    for (i, aggregated) in [(0usize, false), (1usize, true)] {
        if let Some(v) = embedded_view(&mut rng, &query, &catalog, &format!("EV{i}"), aggregated) {
            views.push(v);
        }
    }
    for i in 0..2 {
        let body = random_query(&mut rng, &catalog, &cfg);
        views.push(ViewDef::new(format!("RV{i}"), body));
    }
    (query, views)
}

fn rewrite_with(
    strategy: Strategy,
    threads: usize,
    prefilter: bool,
    query: &aggview::sql::ast::Query,
    views: &[ViewDef],
) -> Vec<Rewriting> {
    let catalog = experiment_catalog();
    let rewriter = Rewriter::with_options(
        &catalog,
        RewriteOptions {
            strategy,
            threads: Some(NonZeroUsize::new(threads).unwrap()),
            prefilter,
            enable_expand: true,
            ..RewriteOptions::default()
        },
    );
    rewriter.rewrite(query, views).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// threads=1 and threads=N produce identical rewriting sequences.
    #[test]
    fn parallel_equals_sequential(seed in any::<u64>()) {
        let (query, views) = workload(seed);
        for strategy in [Strategy::Weighted, Strategy::PaperFaithful] {
            let seq = rewrite_with(strategy, 1, true, &query, &views);
            for threads in [2usize, 8] {
                let par = rewrite_with(strategy, threads, true, &query, &views);
                prop_assert_eq!(seq.len(), par.len(), "count differs at {} threads", threads);
                for (a, b) in seq.iter().zip(&par) {
                    prop_assert_eq!(fingerprint(a), fingerprint(b));
                }
            }
        }
    }

    /// The signature prefilter never changes the produced rewritings.
    #[test]
    fn prefilter_is_lossless(seed in any::<u64>()) {
        let (query, views) = workload(seed);
        let with = rewrite_with(Strategy::Weighted, 1, true, &query, &views);
        let without = rewrite_with(Strategy::Weighted, 1, false, &query, &views);
        prop_assert_eq!(with.len(), without.len());
        for (a, b) in with.iter().zip(&without) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
    }
}

/// The search falls back to one worker on small frontiers (at most 4
/// tasks — spawning threads costs more than the work, per BENCH_1.json).
/// The fallback is an internal scheduling decision: output must stay
/// byte-identical across pool sizes on both sides of the threshold and
/// across thread counts.
#[test]
fn sequential_fallback_threshold_boundary() {
    let catalog = experiment_catalog();
    let cfg = GenConfig::default();
    for seed in 0..8u64 {
        let (query, mut views) = workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut i = views.len();
        while views.len() < 6 {
            views.push(ViewDef::new(
                format!("PAD{i}"),
                random_query(&mut rng, &catalog, &cfg),
            ));
            i += 1;
        }
        for n in [3usize, 4, 5, 6] {
            let pool = &views[..n];
            let seq = rewrite_with(Strategy::Weighted, 1, true, &query, pool);
            let par = rewrite_with(Strategy::Weighted, 8, true, &query, pool);
            assert_eq!(seq.len(), par.len(), "count differs at {n} views");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(fingerprint(a), fingerprint(b), "at {n} views");
            }
        }
    }
}

/// Deterministic spot check: the stats counters are consistent with the
/// search actually running, and prefiltering actually rejects candidates
/// on a pool with decoy views.
#[test]
fn stats_counters_are_consistent() {
    let catalog = experiment_catalog();
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let query = random_query(&mut rng, &catalog, &cfg);
    let mut views = Vec::new();
    if let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV", false) {
        views.push(v);
    }
    let rewriter = Rewriter::new(&catalog);
    let (rws, stats) = rewriter.rewrite_with_stats(&query, &views).unwrap();
    assert_eq!(stats.rewritings, rws.len());
    assert!(stats.states_expanded >= 1);
    assert!(
        stats.closure_cache_hits + stats.closure_cache_misses > 0,
        "closure lookups must be counted"
    );
    assert!(stats.threads >= 1);
    // Summary renders without panicking and mentions the key counters.
    let s = stats.summary();
    assert!(s.contains("states=") && s.contains("prefiltered"), "{s}");
}
