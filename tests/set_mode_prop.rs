//! Randomized validation of the Section 5 set-semantics rewritings: on
//! keyed instances, every many-to-1 rewriting must be *set*-equivalent to
//! the original query (and both results must indeed be duplicate-free).

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, set_eq, Database, Relation, Value};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn keyed_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R", ["A", "B", "C", "D"]).with_key(["A"]))
        .expect("fresh catalog");
    cat
}

fn keyed_db(seed: u64, rows: i64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut r = Relation::empty(["A", "B", "C", "D"]);
    for a in 0..rows {
        r.push(vec![
            Value::Int(a),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
        ]);
    }
    db.insert("R", r);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Example 5.1-style instances with randomized join columns: the view
    /// joins two copies of R on `u.X = w.Y`; the query asks for the
    /// diagonal `X = Y` within a single copy.
    #[test]
    fn many_to_one_rewritings_are_set_equivalent(
        seed in any::<u64>(),
        x in 1usize..4,
        y in 1usize..4,
    ) {
        let cols = ["A", "B", "C", "D"];
        let cat = keyed_catalog();
        let q = parse_query(&format!(
            "SELECT A FROM R WHERE {} = {}",
            cols[x], cols[y]
        )).expect("valid SQL");
        let v = ViewDef::new(
            "V",
            parse_query(&format!(
                "SELECT u.A AS A1, w.A AS A2 FROM R u, R w WHERE u.{} = w.{}",
                cols[x], cols[y]
            )).expect("valid SQL"),
        );
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).expect("rewrite runs");
        let set_rws: Vec<_> = rws.iter().filter(|r| r.set_semantics).collect();
        // Whenever the section-5 machinery fires, validate it on data.
        let mut db = keyed_db(seed, 30);
        materialize_views(&mut db, std::slice::from_ref(&v)).expect("view materializes");
        let truth = execute(&q, &db).expect("query runs");
        prop_assert!(!truth.has_duplicates(), "keyed query result must be a set");
        for rw in set_rws {
            let via = execute_rewriting(rw, &db).expect("rewriting runs");
            prop_assert!(
                set_eq(&truth, &via),
                "set-mode rewriting differs\n  query: {q}\n  rewriting: {}\n  truth: {truth}\n  got: {via}",
                rw.query
            );
        }
    }

    /// When the diagonal involves the key itself, the rewriting must still
    /// hold (the key equality is then doubly enforced).
    #[test]
    fn key_column_in_join(seed in any::<u64>()) {
        let cat = keyed_catalog();
        let q = parse_query("SELECT B FROM R WHERE A = C").expect("valid SQL");
        let v = ViewDef::new(
            "V",
            parse_query(
                "SELECT u.A AS A1, u.B AS B1, w.A AS A2 FROM R u, R w WHERE u.A = w.C",
            )
            .expect("valid SQL"),
        );
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).expect("rewrite runs");
        let mut db = keyed_db(seed, 25);
        materialize_views(&mut db, std::slice::from_ref(&v)).expect("view materializes");
        let truth = execute(&q, &db).expect("query runs");
        for rw in rws.iter().filter(|r| r.set_semantics) {
            let via = execute_rewriting(rw, &db).expect("rewriting runs");
            prop_assert!(set_eq(&truth, &via), "set-mode rewriting differs on {}", rw.query);
        }
    }
}

/// The Example 5.1 configuration must actually fire (guards against the
/// proptest silently never exercising the set-mode path).
#[test]
fn example_5_1_configuration_fires() {
    let cat = keyed_catalog();
    let q = parse_query("SELECT A FROM R WHERE B = C").unwrap();
    let v = ViewDef::new(
        "V",
        parse_query("SELECT u.A AS A1, w.A AS A2 FROM R u, R w WHERE u.B = w.C").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, &[v]).unwrap();
    assert!(rws.iter().any(|r| r.set_semantics));
}
