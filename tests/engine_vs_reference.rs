//! Differential testing of the optimized engine against the naive
//! reference executor: on random queries and random databases, the
//! hash-join planning engine must produce exactly the same multiset as the
//! cross-product-and-filter reference. This validates the substrate the
//! whole reproduction's equivalence checking rests on.

use aggview::engine::datagen::random_database;
use aggview::engine::{execute, execute_reference, multiset_eq};
use aggview::gen::{experiment_catalog, random_query, GenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimized_engine_matches_reference(seed in any::<u64>()) {
        let catalog = experiment_catalog();
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_query(&mut rng, &catalog, &cfg);
        // Keep the cross product tractable for the reference executor.
        let db = random_database(&catalog, 12, 4, seed.wrapping_mul(7));

        let fast = execute(&query, &db);
        let slow = execute_reference(&query, &db);
        match (fast, slow) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    multiset_eq(&a, &b),
                    "engines disagree on {query}\n fast: {a}\n slow: {b}"
                );
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (fast, slow) => {
                return Err(TestCaseError::fail(format!(
                    "one engine errored on {query}: fast={fast:?} slow={slow:?}"
                )));
            }
        }
    }

    /// Rewritten-query shapes: weighted aggregates, scaled aggregates,
    /// ratios — the arithmetic the rewriter emits must agree too.
    #[test]
    fn arithmetic_aggregates_match_reference(seed in any::<u64>()) {
        let catalog = experiment_catalog();
        let db = random_database(&catalog, 15, 4, seed);
        for sql in [
            "SELECT A, SUM(B * C) FROM R1 GROUP BY A",
            "SELECT A, SUM(B) / SUM(C + 1) FROM R1 GROUP BY A",
            "SELECT A, A * SUM(B) FROM R1 GROUP BY A",
            "SELECT A, SUM(B * C) / SUM(C + 1) FROM R1 GROUP BY A",
        ] {
            let q = aggview::sql::parse_query(sql).expect("valid SQL");
            let fast = execute(&q, &db);
            let slow = execute_reference(&q, &db);
            match (fast, slow) {
                (Ok(a), Ok(b)) => prop_assert!(
                    multiset_eq(&a, &b),
                    "engines disagree on `{sql}`\n fast: {a}\n slow: {b}"
                ),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (fast, slow) => {
                    return Err(TestCaseError::fail(format!(
                        "one engine errored on `{sql}`: fast={fast:?} slow={slow:?}"
                    )));
                }
            }
        }
    }
}
