//! Footnote 3 of the paper (the "expand" extension): with an interpreted
//! `Nat` table, an aggregation view *can* answer a conjunctive query —
//! each view row is replicated `count` times by the join
//! `Nat.k <= V.count`. These tests validate the produced rewritings
//! against the engine, multiset-exactly.

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::rewrite::{RewriteOptions, Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
        .unwrap();
    cat
}

fn db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C"]);
    for _ in 0..60 {
        r1.push(vec![
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
        ]);
    }
    db.insert("R1", r1);
    db
}

fn expander(cat: &Catalog) -> Rewriter<'_> {
    Rewriter::with_options(
        cat,
        RewriteOptions {
            enable_expand: true,
            ..RewriteOptions::default()
        },
    )
}

#[test]
fn example_4_5_becomes_rewritable() {
    // The very pair Section 4.5 proves impossible without Nat.
    let cat = catalog();
    let q = parse_query("SELECT A, B FROM R1").unwrap();
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );

    // Default options: still impossible (4.5 holds).
    assert!(Rewriter::new(&cat)
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap()
        .is_empty());

    // With expand enabled: one rewriting, flagged as needing Nat.
    let rws = expander(&cat)
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap();
    assert_eq!(rws.len(), 1);
    let rw = &rws[0];
    assert!(rw.requires_nat);
    assert_eq!(
        rw.query.to_string(),
        "SELECT V1.A, V1.B FROM V1, Nat WHERE Nat.k <= V1.N"
    );

    // Engine validation: exact multiset equality, duplicates included.
    let mut database = db(45);
    materialize_views(&mut database, &[v]).unwrap();
    let truth = execute(&q, &database).unwrap();
    let via = execute_rewriting(rw, &database).unwrap();
    assert!(
        truth.has_duplicates(),
        "the test instance must have duplicates"
    );
    assert!(multiset_eq(&truth, &via));
}

#[test]
fn residual_conditions_and_projection() {
    let cat = catalog();
    let q = parse_query("SELECT A FROM R1 WHERE B = 2").unwrap();
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    let rws = expander(&cat)
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap();
    assert_eq!(rws.len(), 1);
    let mut database = db(46);
    materialize_views(&mut database, &[v]).unwrap();
    let truth = execute(&q, &database).unwrap();
    let via = execute_rewriting(&rws[0], &database).unwrap();
    assert!(multiset_eq(&truth, &via));
}

#[test]
fn view_conditions_must_still_be_implied() {
    // Expansion does not bypass condition C3.
    let cat = catalog();
    let q = parse_query("SELECT A FROM R1").unwrap();
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, COUNT(C) AS N FROM R1 WHERE B = 1 GROUP BY A").unwrap(),
    );
    assert!(expander(&cat)
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap()
        .is_empty());
}

#[test]
fn view_without_count_is_still_unusable() {
    let cat = catalog();
    let q = parse_query("SELECT A, B FROM R1").unwrap();
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B").unwrap(),
    );
    assert!(expander(&cat)
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap()
        .is_empty());
}

#[test]
fn randomized_expansion_soundness() {
    // Random conjunctive queries over R1, view = full grouping summary;
    // every expansion rewriting must be multiset-equivalent.
    let cat = catalog();
    let rewriter = expander(&cat);
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, C, COUNT(A) AS N FROM R1 GROUP BY A, B, C").unwrap(),
    );
    let mut checked = 0;
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random projection + optional filter.
        let cols = ["A", "B", "C"];
        let n_sel = rng.random_range(1..=3);
        let sel: Vec<&str> = (0..n_sel).map(|i| cols[i]).collect();
        let filter = if rng.random_bool(0.5) {
            format!(
                " WHERE {} = {}",
                cols[rng.random_range(0..3)],
                rng.random_range(0..4)
            )
        } else {
            String::new()
        };
        let q = parse_query(&format!("SELECT {} FROM R1{}", sel.join(", "), filter)).unwrap();
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
        let mut database = db(seed.wrapping_mul(13));
        materialize_views(&mut database, std::slice::from_ref(&v)).unwrap();
        for rw in &rws {
            let truth = execute(&q, &database).unwrap();
            let via = execute_rewriting(rw, &database).unwrap();
            assert!(
                multiset_eq(&truth, &via),
                "expansion unsound for {q} via {}",
                rw.query
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 15,
        "only {checked} expansion rewritings exercised"
    );
}

#[test]
fn explain_reports_expand_candidates() {
    let cat = catalog();
    let q = parse_query("SELECT A, B FROM R1").unwrap();
    let v = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    // Without expand: the 4.5 refusal is reported.
    let plain = Rewriter::new(&cat);
    let reports = plain.explain(&q, std::slice::from_ref(&v)).unwrap();
    assert!(reports[0].outcome.is_err());
    // With expand: the rewriting is reported.
    let reports = expander(&cat)
        .explain(&q, std::slice::from_ref(&v))
        .unwrap();
    assert!(reports[0].outcome.is_ok());
}
