//! Multi-view iteration — empirical checks of Theorem 3.2:
//! 1. soundness (every iterated rewriting is multiset-equivalent),
//! 2. the Church-Rosser property (view order does not change the set of
//!    rewritings found),
//! 3. completeness on constructed instances (combined rewritings that use
//!    several views are found).

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::datagen::random_database;
use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::rewrite_and_verify;
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Signature of a rewriting set: the multiset of (sorted) view-usage
/// signatures. Order-independent by construction.
fn signatures(rws: &[aggview::rewrite::Rewriting]) -> BTreeSet<(Vec<String>, usize)> {
    let mut sigs: Vec<Vec<String>> = rws
        .iter()
        .map(|r| {
            let mut v = r.views_used.clone();
            v.sort();
            v
        })
        .collect();
    sigs.sort();
    let mut out = BTreeSet::new();
    for s in sigs.iter() {
        let count = sigs.iter().filter(|t| *t == s).count();
        out.insert((s.clone(), count));
    }
    out
}

#[test]
fn church_rosser_on_random_instances() {
    let catalog = experiment_catalog();
    let cfg = GenConfig {
        inequalities: false, // the theorem's fragment
        ..GenConfig::default()
    };
    let rewriter = Rewriter::new(&catalog);
    let mut nontrivial = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_query(&mut rng, &catalog, &cfg);
        let mut views = Vec::new();
        for (i, aggregated) in [(0usize, false), (1usize, false), (2usize, true)] {
            if let Some(v) = embedded_view(&mut rng, &query, &catalog, &format!("V{i}"), aggregated)
            {
                views.push(v);
            }
        }
        if views.len() < 2 {
            continue;
        }
        let forward = rewriter.rewrite(&query, &views).unwrap();
        let mut reversed_views = views.clone();
        reversed_views.reverse();
        let backward = rewriter.rewrite(&query, &reversed_views).unwrap();
        assert_eq!(
            signatures(&forward),
            signatures(&backward),
            "view order changed the rewriting set for seed {seed}\n  query: {query}"
        );
        if forward.len() > 1 {
            nontrivial += 1;
        }
        // Soundness of every ordering's results.
        let db = random_database(&catalog, 20, 4, seed);
        rewrite_and_verify(&rewriter, &query, &views, &db);
        rewrite_and_verify(&rewriter, &query, &reversed_views, &db);
    }
    assert!(
        nontrivial >= 5,
        "only {nontrivial} instances had multiple rewritings — sweep too weak"
    );
}

#[test]
fn combined_rewriting_uses_all_views() {
    // Three tables, three disjoint single-table views: the iteration must
    // find the rewriting that uses all three (and every subset).
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("S1", ["A", "B"])).unwrap();
    cat.add_table(TableSchema::new("S2", ["C", "D"])).unwrap();
    cat.add_table(TableSchema::new("S3", ["E", "F"])).unwrap();
    let q = parse_query("SELECT A, C, E FROM S1, S2, S3 WHERE B = 1 AND D = 2 AND F = 3").unwrap();
    let views = vec![
        ViewDef::new("W1", parse_query("SELECT A FROM S1 WHERE B = 1").unwrap()),
        ViewDef::new("W2", parse_query("SELECT C FROM S2 WHERE D = 2").unwrap()),
        ViewDef::new("W3", parse_query("SELECT E FROM S3 WHERE F = 3").unwrap()),
    ];
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, &views).unwrap();
    // Subsets: {1},{2},{3},{1,2},{1,3},{2,3},{1,2,3} = 7 rewritings.
    assert_eq!(rws.len(), 7);
    let full = rws
        .iter()
        .find(|r| r.views_used.len() == 3)
        .expect("three-view rewriting");
    assert!(full.query.from.iter().all(|t| t.table.starts_with('W')));
}

#[test]
fn aggregation_view_then_conjunctive_view() {
    // Chain: an aggregation view summarizes S1; a conjunctive view covers
    // S2; the combined rewriting uses both.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("S1", ["A", "B", "M"]))
        .unwrap();
    cat.add_table(TableSchema::new("S2", ["C", "D"])).unwrap();
    let q = parse_query("SELECT A, SUM(M) FROM S1, S2 WHERE A = C AND D = 1 GROUP BY A").unwrap();
    let views = vec![
        ViewDef::new(
            "VAgg",
            parse_query("SELECT A, B, SUM(M) AS SM FROM S1 GROUP BY A, B").unwrap(),
        ),
        ViewDef::new(
            "VConj",
            parse_query("SELECT C FROM S2 WHERE D = 1").unwrap(),
        ),
    ];
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, &views).unwrap();
    let both = rws
        .iter()
        .find(|r| r.views_used.len() == 2)
        .expect("combined rewriting");
    assert!(both.query.from.iter().any(|t| t.table == "VAgg"));
    assert!(both.query.from.iter().any(|t| t.table == "VConj"));

    // Verify on data.
    use aggview::engine::{Relation, Value};
    let mut db = aggview::engine::Database::new();
    let mut rng = StdRng::seed_from_u64(77);
    use rand::Rng;
    let mut s1 = Relation::empty(["A", "B", "M"]);
    let mut s2 = Relation::empty(["C", "D"]);
    for _ in 0..50 {
        s1.push(vec![
            Value::Int(rng.random_range(0..5)),
            Value::Int(rng.random_range(0..3)),
            Value::Int(rng.random_range(0..100)),
        ]);
        s2.push(vec![
            Value::Int(rng.random_range(0..5)),
            Value::Int(rng.random_range(0..3)),
        ]);
    }
    db.insert("S1", s1);
    db.insert("S2", s2);
    rewrite_and_verify(&rewriter, &q, &views, &db);
}

#[test]
fn same_view_twice_covers_self_join() {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("S1", ["A", "B"])).unwrap();
    let q = parse_query("SELECT x.A, y.A FROM S1 x, S1 y WHERE x.B = y.B").unwrap();
    let v = ViewDef::new("W", parse_query("SELECT A, B FROM S1").unwrap());
    let rewriter = Rewriter::new(&cat);
    let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
    let double: Vec<_> = rws.iter().filter(|r| r.views_used.len() == 2).collect();
    assert!(!double.is_empty(), "expected a double-use rewriting");
    // Verify on data.
    use aggview::engine::{Relation, Value};
    let mut db = aggview::engine::Database::new();
    let mut s1 = Relation::empty(["A", "B"]);
    for (a, b) in [(1, 1), (2, 1), (3, 2), (3, 2), (4, 3)] {
        s1.push(vec![Value::Int(a), Value::Int(b)]);
    }
    db.insert("S1", s1);
    rewrite_and_verify(&rewriter, &q, &[v], &db);
}

#[test]
fn view_of_view_chain_is_sound() {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("S1", ["A", "B"])).unwrap();
    let q = parse_query("SELECT A FROM S1 WHERE B = 2").unwrap();
    let views = vec![
        ViewDef::new("L1", parse_query("SELECT A, B FROM S1").unwrap()),
        ViewDef::new("L2", parse_query("SELECT A FROM L1 WHERE B = 2").unwrap()),
    ];
    let rewriter = Rewriter::new(&cat);
    use aggview::engine::{Relation, Value};
    let mut db = aggview::engine::Database::new();
    let mut s1 = Relation::empty(["A", "B"]);
    for (a, b) in [(1, 2), (1, 2), (2, 2), (3, 1)] {
        s1.push(vec![Value::Int(a), Value::Int(b)]);
    }
    db.insert("S1", s1);
    let rws = rewrite_and_verify(&rewriter, &q, &views, &db);
    // L1 alone, and L1-then-L2.
    assert!(rws.iter().any(|r| r.views_used == vec!["L1".to_string()]));
    assert!(rws
        .iter()
        .any(|r| r.views_used == vec!["L1".to_string(), "L2".to_string()]));
}
