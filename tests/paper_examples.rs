//! End-to-end reproduction of every worked example in the paper, each
//! validated against the execution engine: the rewriter must make the same
//! usability decision as the paper, and every produced rewriting must be
//! multiset-equivalent to the original query on generated data.

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::datagen::{telephony, telephony_catalog, TelephonyConfig};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::rewrite::{RewriteOptions, Rewriter, Strategy, ViewDef};
use aggview::run::{execute_rewriting, materialize_views, rewrite_and_verify};
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random instance of the R1(A,B,C,D), R2(E,F) schema used by the paper's
/// Section 3/4 examples. Small domains force collisions and duplicates.
fn r1_r2_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C", "D"]);
    for _ in 0..rows {
        r1.push((0..4).map(|_| Value::Int(rng.random_range(0..4))).collect());
    }
    db.insert("R1", r1);
    let mut r2 = Relation::empty(["E", "F"]);
    for _ in 0..rows {
        r2.push((0..2).map(|_| Value::Int(rng.random_range(0..4))).collect());
    }
    db.insert("R2", r2);
    db
}

fn r1_r2_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
        .unwrap();
    cat.add_table(TableSchema::new("R2", ["E", "F"])).unwrap();
    cat
}

#[test]
fn example_1_1_telephony_motivating_example() {
    // Query Q, view V1 and rewriting Q' of Example 1.1, validated over a
    // generated telephony warehouse.
    let cat = telephony_catalog();
    let db = telephony(
        &TelephonyConfig {
            n_customers: 50,
            n_plans: 8,
            n_calls: 5000,
            years: vec![1994, 1995],
            months: 12,
        },
        11,
    );
    let q = parse_query(
        "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
         FROM Calls, Calling_Plans \
         WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
         GROUP BY Calling_Plans.Plan_Id, Plan_Name \
         HAVING SUM(Charge) < 1000000",
    )
    .unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query(
            "SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge) AS Monthly_Earnings \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
             GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
        )
        .unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v1), &db);
    assert_eq!(rws.len(), 1);
    // The paper's Q': only V1 in FROM, Year filter, SUM of monthly sums.
    assert_eq!(rws[0].query.from.len(), 1);
    assert_eq!(rws[0].query.from[0].table, "V1");
    assert_eq!(
        rws[0].query.to_string(),
        "SELECT V1.Plan_Id, V1.Plan_Name, SUM(V1.Monthly_Earnings) FROM V1 \
         WHERE V1.Year = 1995 GROUP BY V1.Plan_Id, V1.Plan_Name \
         HAVING SUM(V1.Monthly_Earnings) < 1000000"
    );
    // The view really is much smaller than the fact table.
    let mut scratch = db.clone();
    materialize_views(&mut scratch, &[v1]).unwrap();
    assert!(scratch.get("V1").unwrap().len() * 10 < scratch.get("Calls").unwrap().len());
}

#[test]
fn example_3_1_conjunctive_view() {
    let cat = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        cat
    };
    // Build instances of R1(A,B), R2(C,D).
    let mut rng = StdRng::seed_from_u64(3);
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B"]);
    let mut r2 = Relation::empty(["C", "D"]);
    for _ in 0..60 {
        r1.push(vec![
            Value::Int(rng.random_range(0..5)),
            Value::Int(rng.random_range(4..9)),
        ]);
        r2.push(vec![
            Value::Int(rng.random_range(0..5)),
            Value::Int(rng.random_range(4..9)),
        ]);
    }
    db.insert("R1", r1);
    db.insert("R2", r2);

    let q = parse_query("SELECT A, SUM(B) FROM R1, R2 WHERE A = C AND B = 6 AND D = 6 GROUP BY A")
        .unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT C, D FROM R1, R2 WHERE A = C AND B = D").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, &[v1], &db);
    assert_eq!(rws.len(), 1);
    assert_eq!(
        rws[0].query.to_string(),
        "SELECT V1.C, SUM(V1.D) FROM V1 WHERE V1.D = 6 GROUP BY V1.C"
    );
}

#[test]
fn example_4_1_coalescing_subgroups() {
    let cat = r1_r2_catalog();
    let db = r1_r2_db(41, 80);
    let q = parse_query("SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E")
        .unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT A, C, COUNT(D) AS N FROM R1 WHERE B = D GROUP BY A, C").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, &[v1], &db);
    assert_eq!(rws.len(), 1);
    // The paper's Q': counts of (A,C) groups summed into (A,E) groups.
    assert_eq!(
        rws[0].query.to_string(),
        "SELECT V1.A, R2.E, SUM(V1.N) FROM R2, V1 WHERE V1.C = R2.F GROUP BY V1.A, R2.E"
    );
}

#[test]
fn example_4_2_lost_multiplicities() {
    let cat = r1_r2_catalog();
    let db = r1_r2_db(42, 80);
    let q = parse_query("SELECT A, SUM(E) FROM R1, R2 GROUP BY A").unwrap();

    // V1 (no COUNT column) is NOT usable — multiplicities are lost.
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    assert!(rewriter.rewrite(&q, &[v1]).unwrap().is_empty());

    // V2 (SUM and COUNT) is usable; validate both strategies.
    let v2 = ViewDef::new(
        "V2",
        parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    // Strategy B (weighted).
    let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v2), &db);
    assert_eq!(rws.len(), 1);
    assert!(rws[0].aux_views.is_empty());

    // Strategy A (the paper's V^a, with the prune-φ(V) correction).
    let paper = Rewriter::with_options(
        &cat,
        RewriteOptions {
            strategy: Strategy::PaperFaithful,
            ..RewriteOptions::default()
        },
    );
    let rws = rewrite_and_verify(&paper, &q, std::slice::from_ref(&v2), &db);
    assert_eq!(rws.len(), 1);
    assert!(rws[0].used_paper_va);
    assert_eq!(rws[0].aux_views.len(), 1);
    assert_eq!(
        rws[0].aux_views[0].query.to_string(),
        "SELECT V2.A AS A, SUM(V2.N) AS cnt_va FROM V2 GROUP BY V2.A"
    );
}

#[test]
fn example_4_3_rewritten_query_of_4_1_shape() {
    // Example 4.3 re-checks Example 4.1's conditions; here we validate the
    // same pair on several seeds for robustness.
    let cat = r1_r2_catalog();
    let q = parse_query("SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E")
        .unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT A, C, COUNT(D) AS N FROM R1 WHERE B = D GROUP BY A, C").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    for seed in 0..5 {
        let db = r1_r2_db(seed, 50);
        let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v1), &db);
        assert_eq!(rws.len(), 1);
    }
}

#[test]
fn example_4_4_constraining_aggregated_columns() {
    // The WHERE clause constrains B, which the view aggregates away: the
    // view must be rejected (condition C3').
    let cat = r1_r2_catalog();
    let q = parse_query("SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E").unwrap();
    let v = ViewDef::new(
        "V",
        parse_query("SELECT A, E, F, SUM(B) AS S FROM R1, R2 GROUP BY A, E, F").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    assert!(rewriter
        .rewrite(&q, std::slice::from_ref(&v))
        .unwrap()
        .is_empty());

    // Sanity: the rejection is semantically forced — on some instance the
    // naive substitution would give a wrong answer. Check that the paper's
    // "without the WHERE clause" variant IS usable and correct.
    let q2 = parse_query("SELECT A, E, SUM(B) FROM R1, R2 GROUP BY A, E").unwrap();
    let db = r1_r2_db(44, 60);
    let rws = rewrite_and_verify(&rewriter, &q2, &[v], &db);
    assert_eq!(rws.len(), 1);
}

#[test]
fn example_4_5_aggregation_view_conjunctive_query() {
    // Section 4.5: V1 groups and counts; the conjunctive query needs raw
    // multiplicities — no rewriting exists.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
        .unwrap();
    let q = parse_query("SELECT A, B FROM R1").unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    assert!(rewriter.rewrite(&q, &[v1]).unwrap().is_empty());
}

#[test]
fn example_5_1_keys_enable_many_to_one() {
    // Section 5 / Example 5.1, validated on data with key A.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(51);
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C"]);
    for a in 0..40 {
        r1.push(vec![
            Value::Int(a),
            Value::Int(rng.random_range(0..4)),
            Value::Int(rng.random_range(0..4)),
        ]);
    }
    db.insert("R1", r1);

    let q = parse_query("SELECT A FROM R1 WHERE B = C").unwrap();
    let v1 = ViewDef::new(
        "V1",
        parse_query("SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, &[v1], &db);
    let set_rw = rws
        .iter()
        .find(|r| r.set_semantics)
        .expect("Example 5.1 rewriting");
    assert_eq!(
        set_rw.query.to_string(),
        "SELECT V1.A1 FROM V1 WHERE V1.A1 = V1.A2"
    );

    // Without key information, Q' is not a valid rewriting and the view is
    // not usable at all (the paper's closing observation).
    let mut keyless = Catalog::new();
    keyless
        .add_table(TableSchema::new("R1", ["A", "B", "C"]))
        .unwrap();
    let rewriter2 = Rewriter::new(&keyless);
    let v1b = ViewDef::new(
        "V1",
        parse_query("SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C").unwrap(),
    );
    assert!(rewriter2.rewrite(&q, &[v1b]).unwrap().is_empty());
}

#[test]
fn section_3_3_having_move_around_enables_usability() {
    // Query with HAVING A > 5 (a grouping-column predicate): after
    // normalization it strengthens Conds(Q), letting a view that filters
    // A > 5 match. Without move-around the view's condition would not be
    // implied.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R", ["A", "B"])).unwrap();
    let mut db = Database::new();
    let mut r = Relation::empty(["A", "B"]);
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..80 {
        r.push(vec![
            Value::Int(rng.random_range(0..12)),
            Value::Int(rng.random_range(0..9)),
        ]);
    }
    db.insert("R", r);

    let q =
        parse_query("SELECT A, SUM(B) FROM R GROUP BY A HAVING A > 5 AND SUM(B) < 100").unwrap();
    let v = ViewDef::new("V", parse_query("SELECT A, B FROM R WHERE A > 5").unwrap());
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, &[v], &db);
    assert_eq!(rws.len(), 1);
    assert!(rws[0].query.to_string().contains("FROM V"));
}

#[test]
fn section_3_3_min_max_move_around() {
    // MAX(B) > 4 as the sole aggregate moves to WHERE B > 4.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R", ["A", "B"])).unwrap();
    let mut db = Database::new();
    let mut r = Relation::empty(["A", "B"]);
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..80 {
        r.push(vec![
            Value::Int(rng.random_range(0..6)),
            Value::Int(rng.random_range(0..9)),
        ]);
    }
    db.insert("R", r);

    let q = parse_query("SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) > 4").unwrap();
    let v = ViewDef::new("V", parse_query("SELECT A, B FROM R WHERE B > 4").unwrap());
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, &[v], &db);
    assert_eq!(rws.len(), 1);
}

#[test]
fn unsound_naive_substitution_counterexample() {
    // Regression guard for the S5' over-counting analysis in DESIGN.md:
    // on this instance, keeping φ(V) in the FROM clause alongside V^a and
    // multiplying (the paper's literal printed rewriting for Example 4.2)
    // over-counts by the number of B-subgroups. Our two strategies must
    // both produce the correct answer.
    let cat = r1_r2_catalog();
    let mut db = Database::new();
    // R1: one A value with TWO B-subgroups, each of size 2.
    let r1 = Relation::new(
        ["A", "B", "C", "D"],
        vec![
            vec![Value::Int(1), Value::Int(1), Value::Int(0), Value::Int(0)],
            vec![Value::Int(1), Value::Int(1), Value::Int(0), Value::Int(0)],
            vec![Value::Int(1), Value::Int(2), Value::Int(0), Value::Int(0)],
            vec![Value::Int(1), Value::Int(2), Value::Int(0), Value::Int(0)],
        ],
    );
    let r2 = Relation::new(["E", "F"], vec![vec![Value::Int(10), Value::Int(0)]]);
    db.insert("R1", r1);
    db.insert("R2", r2);

    let q = parse_query("SELECT A, SUM(E) FROM R1, R2 GROUP BY A").unwrap();
    // Correct answer: SUM(E) = 4 rows × 10 = 40.
    let expected = execute(&q, &db).unwrap();
    assert_eq!(expected.rows, vec![vec![Value::Int(1), Value::Int(40)]]);

    let v2 = ViewDef::new(
        "V2",
        parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    for strategy in [Strategy::Weighted, Strategy::PaperFaithful] {
        let rewriter = Rewriter::with_options(
            &cat,
            RewriteOptions {
                strategy,
                ..RewriteOptions::default()
            },
        );
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v2)).unwrap();
        assert_eq!(rws.len(), 1);
        let mut scratch = db.clone();
        materialize_views(&mut scratch, std::slice::from_ref(&v2)).unwrap();
        let got = execute_rewriting(&rws[0], &scratch).unwrap();
        assert!(
            multiset_eq(&expected, &got),
            "strategy {strategy:?} produced {got} instead of {expected}"
        );
    }
}

#[test]
fn having_avg_recomputed_from_sum_count() {
    // AVG in both SELECT and HAVING, answered from a SUM/COUNT view: the
    // rewriting must recompute AVG as SUM(S)/SUM(N) over the coalesced
    // subgroups, never as an average of the per-subgroup averages (those
    // two differ whenever subgroup sizes differ).
    let cat = r1_r2_catalog();
    let q = parse_query("SELECT A, AVG(C) FROM R1 GROUP BY A HAVING AVG(C) > 1").unwrap();
    let v = ViewDef::new(
        "V",
        parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    for seed in [46, 47, 48] {
        let db = r1_r2_db(seed, 80);
        let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v), &db);
        assert_eq!(rws.len(), 1, "seed {seed}");
    }

    // Skewed subgroup sizes: group A=1 splits into B-subgroups of sizes 3
    // and 1 with per-subgroup averages 2 and 10. The average of averages
    // (6) passes HAVING > 4.5; the true AVG (2+2+2+10)/4 = 4 does not.
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C", "D"]);
    for c in [2, 2, 2] {
        r1.push(vec![
            Value::Int(1),
            Value::Int(0),
            Value::Int(c),
            Value::Int(0),
        ]);
    }
    r1.push(vec![
        Value::Int(1),
        Value::Int(1),
        Value::Int(10),
        Value::Int(0),
    ]);
    db.insert("R1", r1);
    db.insert("R2", Relation::empty(["E", "F"]));
    let strict = parse_query("SELECT A, AVG(C) FROM R1 GROUP BY A HAVING AVG(C) > 4.5").unwrap();
    let expected = execute(&strict, &db).unwrap();
    assert!(expected.rows.is_empty(), "true AVG is 4, below 4.5");
    let rws = rewrite_and_verify(&rewriter, &strict, std::slice::from_ref(&v), &db);
    assert_eq!(rws.len(), 1);
}

#[test]
fn having_avg_eliminates_every_group() {
    // A HAVING threshold above everything in the domain: the direct answer
    // is empty, and the rewriting over the SUM/COUNT view must be exactly
    // as empty — a stale group surviving in either path is a bug.
    let cat = r1_r2_catalog();
    let db = r1_r2_db(49, 60);
    let q = parse_query("SELECT A, AVG(C) FROM R1 GROUP BY A HAVING AVG(C) > 100").unwrap();
    assert!(execute(&q, &db).unwrap().rows.is_empty());
    let v = ViewDef::new(
        "V",
        parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v), &db);
    assert_eq!(rws.len(), 1);
    let mut scratch = db.clone();
    materialize_views(&mut scratch, std::slice::from_ref(&v)).unwrap();
    assert!(execute_rewriting(&rws[0], &scratch)
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn avg_overflow_adjacent_values_stay_exact() {
    // Values straddling the f64 exact-integer boundary: both summands and
    // their sum (2^53 - 2) are exactly representable, so the direct AVG
    // and the SUM/COUNT-view recomputation must agree to the last bit.
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
        .unwrap();
    let lo: i64 = (1 << 52) - 1; // 4503599627370495
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C", "D"]);
    r1.push(vec![
        Value::Int(0),
        Value::Int(0),
        Value::Int(lo - 1),
        Value::Int(0),
    ]);
    r1.push(vec![
        Value::Int(0),
        Value::Int(1),
        Value::Int(lo + 1),
        Value::Int(0),
    ]);
    db.insert("R1", r1);

    let q = parse_query("SELECT A, AVG(C) FROM R1 GROUP BY A").unwrap();
    let direct = execute(&q, &db).unwrap();
    assert_eq!(
        direct.rows,
        vec![vec![Value::Int(0), Value::Double(lo as f64)]]
    );

    let v = ViewDef::new(
        "V",
        parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
    );
    let rewriter = Rewriter::new(&cat);
    let rws = rewrite_and_verify(&rewriter, &q, std::slice::from_ref(&v), &db);
    assert_eq!(rws.len(), 1);
    let mut scratch = db.clone();
    materialize_views(&mut scratch, std::slice::from_ref(&v)).unwrap();
    let got = execute_rewriting(&rws[0], &scratch).unwrap();
    assert!(multiset_eq(&direct, &got), "got {got} instead of {direct}");
}
