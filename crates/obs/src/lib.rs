//! `aggview-obs`: the unified observability layer.
//!
//! One [`MetricsRegistry`] per session (or per shared store) collects
//! everything the serving stack wants to report:
//!
//! * **named counters** ([`CounterId`]) — monotonic event counts from
//!   every layer: statements and queries served, rewrite-search work
//!   (states, candidates, mappings), closure- and plan-cache traffic,
//!   index probes, view maintenance, store batching, and the write-queue
//!   depth gauge;
//! * **fixed-bucket log₂ latency histograms** ([`LatencyHistogram`]) —
//!   one per pipeline [`Stage`] (parse → rewrite search → plan/compile →
//!   execute → maintenance → batch apply → snapshot publish), reporting
//!   p50/p95/p99/max without any allocation on the record path;
//! * **span timing** ([`MetricsRegistry::span`]) — a drop guard that
//!   observes the enclosed scope's wall time into a stage histogram;
//! * a **fingerprint-keyed slow-query ring buffer** ([`SlowQueryRing`])
//!   with a configurable threshold, so "what was slow recently" survives
//!   after the query is gone;
//! * **[`ObsSnapshot`]** — one point-in-time view of all of the above
//!   plus the per-query sections the session fills in (search counters,
//!   plan-cache counters, store identity), rendered by
//!   [`ObsSnapshot::render`] as either a human-readable block (the REPL's
//!   `:stats`, the `EXPLAIN` tail) or Prometheus text exposition
//!   (`aggview metrics`, `aggview serve --metrics`).
//!
//! ## Design constraints
//!
//! * **std-only** (the build environment is fully offline; every vendored
//!   dependency is a stand-in, and this crate needs none of them).
//! * **Lock-free hot path**: counters and histogram buckets are
//!   `AtomicU64`s behind fixed-size arrays indexed by enum — recording is
//!   a handful of relaxed atomic adds, cheap enough to leave enabled in
//!   production serving (the `repro s4` bench budget is ≤ 5% warm-path
//!   overhead). Only the slow-query ring takes a mutex, and only for
//!   queries already past the slowness threshold.
//! * **Deterministic replay**: the span clock is a single monotonic
//!   [`std::time::Instant`] anchor resolved once per registry
//!   ([`MetricsRegistry::now_ns`]). Timings are observability output
//!   only — they are never part of an answer's equality (the qcheck
//!   differential oracle compares relations, not stats) and never feed
//!   shrink decisions.

mod hist;
mod registry;
mod ring;
mod snapshot;

pub use hist::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use registry::{CounterId, MetricsRegistry, Span, Stage};
pub use ring::{SlowQuery, SlowQueryRing};
pub use snapshot::{
    Format, ObsSnapshot, PlanCacheSection, QuerySection, SearchSection, StageStats, StoreSection,
};

/// Observability configuration, carried by `SessionOptions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsOptions {
    /// Collect metrics at all. When false the session allocates no
    /// registry and every record call is skipped (`--no-obs`).
    pub enabled: bool,
    /// A query whose end-to-end serving time reaches this many
    /// milliseconds is recorded in the slow-query ring buffer.
    pub slow_query_ms: u64,
    /// How many slow queries the ring buffer retains (oldest evicted).
    pub slow_query_capacity: usize,
    /// Attach an [`ObsSnapshot`] to every `StatementOutcome::Answer`.
    /// Off by default: snapshotting copies every counter and bucket, which
    /// the warm serving path should not pay per query. `EXPLAIN ANALYZE`
    /// and the REPL's `:stats` force a snapshot regardless.
    pub attach_answers: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: true,
            slow_query_ms: 100,
            slow_query_capacity: 32,
            attach_answers: false,
        }
    }
}

impl ObsOptions {
    /// The slowness threshold in nanoseconds.
    pub fn slow_query_threshold_ns(&self) -> u64 {
        self.slow_query_ms.saturating_mul(1_000_000)
    }
}
