//! Fixed-bucket log₂ latency histograms.
//!
//! Bucket `i` covers `[2^(i-1), 2^i - 1]` nanoseconds (bucket 0 holds
//! exactly 0 ns), so 65 buckets span the whole `u64` range with no
//! configuration and no allocation: recording is one index computation
//! plus three relaxed atomic operations. Quantiles are read from a
//! [`HistogramSnapshot`] and reported as the upper edge of the bucket the
//! quantile falls in — a ≤ 2x overestimate by construction, which is the
//! usual trade for allocation-free histograms (HdrHistogram makes the
//! same one at lower resolution).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: bucket 0 for 0 ns, buckets 1..=64 for each
/// power-of-two range up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// The bucket index of a nanosecond value: 0 for 0, else
/// `floor(log2(ns)) + 1`.
#[inline]
pub(crate) fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

/// The inclusive upper edge of bucket `i` (`u64::MAX` for the last).
pub(crate) fn bucket_upper_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A lock-free log₂ histogram of nanosecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one latency in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one latency.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile queries and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded nanoseconds (saturating only at u64 wrap,
    /// ~584 years of accumulated latency).
    pub sum_ns: u64,
    /// Largest recorded value, exact (not bucketed).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the `ceil(q * count)`-th sample, capped at the exact
    /// observed maximum. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (upper bucket edge).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (upper bucket edge).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile (upper bucket edge).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 is its own bucket; 1 ns is the first nonzero bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Every power-of-two edge: 2^k opens bucket k+1, 2^k - 1 closes
        // bucket k.
        for k in 1..64u32 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge), k as usize + 1, "2^{k} opens a bucket");
            assert_eq!(bucket_index(edge - 1), k as usize, "2^{k}-1 closes one");
        }
        // Saturation: u64::MAX lands in the last bucket, no panic.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 1, 1, 100, 1000, 1000, 1000, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.sum_ns, 103_102);
        // The 4th sample (p50 of 8) is 100 -> bucket [64, 127].
        assert_eq!(s.p50_ns(), 127);
        // p99 rounds up to the last sample's bucket, capped at exact max.
        assert_eq!(s.p99_ns(), 100_000.min(bucket_upper_edge(17)));
    }

    #[test]
    fn saturation_at_u64_max() {
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(s.buckets[64], 1);
        // Quantile of the top bucket reports the exact max, not 2^64-1
        // rounded oddly.
        assert_eq!(s.p50_ns(), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.p95_ns(), 0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn durations_record() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().max_ns, 3_000);
    }
}
