//! The metrics registry: enum-indexed atomic counters, one latency
//! histogram per pipeline stage, a shared monotonic clock anchor, and
//! the slow-query ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::ring::{SlowQuery, SlowQueryRing};
use crate::ObsOptions;

/// A pipeline stage with its own latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Lexing + parsing a statement.
    Parse,
    /// The view-rewrite search (prepare + enumeration).
    Rewrite,
    /// Plan selection and compilation to a physical plan.
    Plan,
    /// Executing the chosen plan.
    Execute,
    /// Incremental or recompute view maintenance after a write.
    Maintain,
    /// Applying one writer batch to the store (shared-store writer).
    Apply,
    /// Publishing a new store snapshot.
    Publish,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::Rewrite,
        Stage::Plan,
        Stage::Execute,
        Stage::Maintain,
        Stage::Apply,
        Stage::Publish,
    ];

    /// Stable lowercase name, used by both renderers.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Rewrite => "rewrite",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Maintain => "maintain",
            Stage::Apply => "apply",
            Stage::Publish => "publish",
        }
    }
}

const STAGES: usize = Stage::ALL.len();

/// A monotonic event counter (or, for the queue-depth pair, a gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// Statements executed (any kind).
    Statements,
    /// SELECT queries served.
    Queries,
    /// Write statements (INSERT/DELETE) applied.
    Writes,
    /// Rewrite-search states expanded.
    RewriteStates,
    /// Candidate views discarded by the prefilter.
    RewritePrefiltered,
    /// Candidate views attempted in the search.
    RewriteAttempted,
    /// Column mappings enumerated.
    RewriteMappings,
    /// Complete rewritings emitted.
    RewriteEmitted,
    /// Closure-cache hits in the rewrite search.
    ClosureHits,
    /// Closure-cache misses in the rewrite search.
    ClosureMisses,
    /// Plan-cache hits.
    PlanCacheHits,
    /// Plan-cache misses.
    PlanCacheMisses,
    /// Plan-cache entries invalidated by schema changes.
    PlanCacheInvalidations,
    /// Physical plans compiled.
    PlanCompiles,
    /// Grouped-view index probes that answered an aggregate lookup.
    IndexProbes,
    /// Rows returned by index probes.
    IndexProbeRows,
    /// Views maintained incrementally (delta applied).
    MaintainIncremental,
    /// Views maintained by full recompute.
    MaintainRecompute,
    /// Queries that crossed the slow-query threshold.
    SlowQueries,
    /// Writer batches applied (shared store).
    StoreBatches,
    /// Individual write ops inside those batches.
    StoreBatchedOps,
    /// Snapshot publishes (shared store).
    StorePublishes,
    /// Current write-queue depth (gauge: add on submit, sub on drain).
    WriteQueueDepth,
    /// High-water mark of the write queue.
    WriteQueueMax,
    /// Queries answered by the vectorized (columnar) execution path.
    ExecVectorized,
    /// Queries answered by the row-at-a-time interpreter (vectorization
    /// declined or disabled).
    ExecRowFallback,
    /// Sharded SELECTs that entered the scatter-gather planner.
    ShardFanouts,
    /// Per-shard scatter queries issued (fanouts × shard count when no
    /// plan falls back).
    ShardScatterQueries,
    /// Gathers merged as a disjoint union (grouped on the shard key).
    ShardConcatMerges,
    /// Gathers merged by re-aggregating §4 partial aggregates.
    ShardReaggMerges,
    /// Sharded SELECTs served from the union instead (join, unresolvable
    /// shard column, or a failed scatter/merge).
    ShardGatherFallbacks,
}

impl CounterId {
    /// Every counter, in declaration order.
    pub const ALL: [CounterId; 31] = [
        CounterId::Statements,
        CounterId::Queries,
        CounterId::Writes,
        CounterId::RewriteStates,
        CounterId::RewritePrefiltered,
        CounterId::RewriteAttempted,
        CounterId::RewriteMappings,
        CounterId::RewriteEmitted,
        CounterId::ClosureHits,
        CounterId::ClosureMisses,
        CounterId::PlanCacheHits,
        CounterId::PlanCacheMisses,
        CounterId::PlanCacheInvalidations,
        CounterId::PlanCompiles,
        CounterId::IndexProbes,
        CounterId::IndexProbeRows,
        CounterId::MaintainIncremental,
        CounterId::MaintainRecompute,
        CounterId::SlowQueries,
        CounterId::StoreBatches,
        CounterId::StoreBatchedOps,
        CounterId::StorePublishes,
        CounterId::WriteQueueDepth,
        CounterId::WriteQueueMax,
        CounterId::ExecVectorized,
        CounterId::ExecRowFallback,
        CounterId::ShardFanouts,
        CounterId::ShardScatterQueries,
        CounterId::ShardConcatMerges,
        CounterId::ShardReaggMerges,
        CounterId::ShardGatherFallbacks,
    ];

    /// Stable snake_case name; the Prometheus metric is
    /// `aggview_<name>_total` (counters) or `aggview_<name>` (gauges).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Statements => "statements",
            CounterId::Queries => "queries",
            CounterId::Writes => "writes",
            CounterId::RewriteStates => "rewrite_states",
            CounterId::RewritePrefiltered => "rewrite_candidates_prefiltered",
            CounterId::RewriteAttempted => "rewrite_candidates_attempted",
            CounterId::RewriteMappings => "rewrite_mappings",
            CounterId::RewriteEmitted => "rewrite_rewritings",
            CounterId::ClosureHits => "closure_cache_hits",
            CounterId::ClosureMisses => "closure_cache_misses",
            CounterId::PlanCacheHits => "plan_cache_hits",
            CounterId::PlanCacheMisses => "plan_cache_misses",
            CounterId::PlanCacheInvalidations => "plan_cache_invalidations",
            CounterId::PlanCompiles => "plan_compiles",
            CounterId::IndexProbes => "index_probes",
            CounterId::IndexProbeRows => "index_probe_rows",
            CounterId::MaintainIncremental => "maintain_incremental",
            CounterId::MaintainRecompute => "maintain_recompute",
            CounterId::SlowQueries => "slow_queries",
            CounterId::StoreBatches => "store_batches",
            CounterId::StoreBatchedOps => "store_batched_ops",
            CounterId::StorePublishes => "store_publishes",
            CounterId::WriteQueueDepth => "write_queue_depth",
            CounterId::WriteQueueMax => "write_queue_max",
            CounterId::ExecVectorized => "exec_vectorized",
            CounterId::ExecRowFallback => "exec_row_fallback",
            CounterId::ShardFanouts => "shard_fanouts",
            CounterId::ShardScatterQueries => "shard_scatter_queries",
            CounterId::ShardConcatMerges => "shard_concat_merges",
            CounterId::ShardReaggMerges => "shard_reagg_merges",
            CounterId::ShardGatherFallbacks => "shard_gather_fallbacks",
        }
    }

    /// Gauges are exported without the `_total` suffix and typed `gauge`.
    pub fn is_gauge(self) -> bool {
        matches!(self, CounterId::WriteQueueDepth | CounterId::WriteQueueMax)
    }
}

const COUNTERS: usize = CounterId::ALL.len();

/// The per-session (or per-store) metrics registry.
///
/// All hot-path operations are relaxed atomic adds on fixed arrays; the
/// only lock is inside the slow-query ring, taken only for queries that
/// already crossed the slowness threshold.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Monotonic clock anchor, resolved once at construction so all span
    /// timestamps in a session share one origin (deterministic ordering
    /// for replay; see crate docs).
    anchor: Instant,
    counters: [AtomicU64; COUNTERS],
    stages: [LatencyHistogram; STAGES],
    ring: SlowQueryRing,
    slow_threshold_ns: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(&ObsOptions::default())
    }
}

impl MetricsRegistry {
    /// A fresh registry configured from `opts`.
    pub fn new(opts: &ObsOptions) -> Self {
        MetricsRegistry {
            anchor: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            ring: SlowQueryRing::new(opts.slow_query_capacity),
            slow_threshold_ns: opts.slow_query_threshold_ns(),
        }
    }

    /// Nanoseconds since this registry's clock anchor.
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Add `n` to a counter.
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Subtract `n` from a gauge-style counter (saturating via wrapping
    /// add of the two's complement is avoided; fetch_sub is fine because
    /// submit/drain are paired).
    pub fn sub(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise a high-water-mark counter to at least `n`.
    pub fn raise_max(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_max(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Record a latency observation for a stage.
    pub fn observe_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record_ns(ns);
    }

    /// A snapshot of one stage's histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage as usize].snapshot()
    }

    /// Start timing a stage; the returned guard records the elapsed time
    /// when dropped (or at an explicit [`Span::finish`], which also
    /// returns the elapsed nanoseconds).
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            registry: self,
            stage,
            start_ns: self.now_ns(),
            done: false,
        }
    }

    /// The configured slow-query threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Account one served query: bump the query counter and, if
    /// `total_ns` crosses the threshold, push it into the slow-query
    /// ring with its per-stage breakdown. The SQL text is a closure so
    /// the fast path never pays for rendering it — only queries that are
    /// already slow materialize their text.
    pub fn note_query<F>(&self, fingerprint: u64, sql: F, total_ns: u64, stages: &[(Stage, u64)])
    where
        F: FnOnce() -> String,
    {
        self.incr(CounterId::Queries);
        if total_ns >= self.slow_threshold_ns {
            self.incr(CounterId::SlowQueries);
            self.ring.push(fingerprint, &sql(), total_ns, stages);
        }
    }

    /// The retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.ring.entries()
    }
}

/// A drop guard that records the elapsed wall time of a scope into one
/// stage's histogram.
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a MetricsRegistry,
    stage: Stage,
    start_ns: u64,
    done: bool,
}

impl Span<'_> {
    /// Stop the span now and return the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        let ns = self.registry.now_ns().saturating_sub(self.start_ns);
        self.registry.observe_ns(self.stage, ns);
        self.done = true;
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            let ns = self.registry.now_ns().saturating_sub(self.start_ns);
            self.registry.observe_ns(self.stage, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read() {
        let r = MetricsRegistry::default();
        r.incr(CounterId::Queries);
        r.add(CounterId::Queries, 4);
        assert_eq!(r.get(CounterId::Queries), 5);
        assert_eq!(r.get(CounterId::Writes), 0);
    }

    #[test]
    fn gauge_up_down_and_high_water() {
        let r = MetricsRegistry::default();
        r.add(CounterId::WriteQueueDepth, 3);
        r.raise_max(CounterId::WriteQueueMax, 3);
        r.sub(CounterId::WriteQueueDepth, 2);
        r.raise_max(CounterId::WriteQueueMax, 1);
        assert_eq!(r.get(CounterId::WriteQueueDepth), 1);
        assert_eq!(r.get(CounterId::WriteQueueMax), 3);
    }

    #[test]
    fn span_records_into_stage_histogram() {
        let r = MetricsRegistry::default();
        {
            let _s = r.span(Stage::Execute);
        }
        let ns = r.span(Stage::Execute).finish();
        let snap = r.stage_snapshot(Stage::Execute);
        assert_eq!(snap.count, 2);
        assert!(snap.max_ns >= ns);
        assert_eq!(r.stage_snapshot(Stage::Parse).count, 0);
    }

    #[test]
    fn note_query_thresholds_into_ring() {
        let opts = ObsOptions {
            slow_query_ms: 1,
            ..ObsOptions::default()
        };
        let r = MetricsRegistry::new(&opts);
        r.note_query(1, || "SELECT fast".to_string(), 10_000, &[]);
        r.note_query(
            2,
            || "SELECT slow".to_string(),
            2_000_000,
            &[(Stage::Execute, 1_900_000)],
        );
        assert_eq!(r.get(CounterId::Queries), 2);
        assert_eq!(r.get(CounterId::SlowQueries), 1);
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].fingerprint, 2);
        assert_eq!(slow[0].sql, "SELECT slow");
    }

    #[test]
    fn stage_and_counter_tables_are_consistent() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        // Names are unique (they become Prometheus metric names).
        let mut names: Vec<_> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::ALL.len());
    }
}
