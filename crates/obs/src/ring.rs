//! The slow-query ring buffer.
//!
//! A bounded, mutex-protected deque of the most recent queries whose
//! end-to-end serving time crossed the configured threshold. The mutex
//! is acceptable here because by definition only already-slow queries
//! touch it — the warm path never does.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::registry::Stage;

/// One retained slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Monotonic sequence number (per ring), so eviction order is
    /// testable and renderers can show recency.
    pub seq: u64,
    /// The query's canonical-form fingerprint (same hash the plan cache
    /// keys on), so repeated shapes can be grouped.
    pub fingerprint: u64,
    /// The query text, truncated to a sane display length.
    pub sql: String,
    /// End-to-end serving time in nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown captured at record time.
    pub stages: Vec<(Stage, u64)>,
}

/// Longest SQL text retained per entry; the rest is elided.
const MAX_SQL_LEN: usize = 200;

#[derive(Debug, Default)]
struct RingInner {
    entries: VecDeque<SlowQuery>,
    next_seq: u64,
}

/// A bounded ring of recent slow queries, oldest evicted first.
#[derive(Debug)]
pub struct SlowQueryRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl SlowQueryRing {
    /// An empty ring retaining at most `capacity` entries (capacity 0
    /// disables retention entirely).
    pub fn new(capacity: usize) -> Self {
        SlowQueryRing {
            inner: Mutex::new(RingInner::default()),
            capacity,
        }
    }

    /// Record a slow query, evicting the oldest entry when full.
    pub fn push(&self, fingerprint: u64, sql: &str, total_ns: u64, stages: &[(Stage, u64)]) {
        if self.capacity == 0 {
            return;
        }
        let mut sql_owned: String = sql.chars().take(MAX_SQL_LEN).collect();
        if sql_owned.len() < sql.len() {
            sql_owned.push('…');
        }
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(SlowQuery {
            seq,
            fingerprint,
            sql: sql_owned,
            total_ns,
            stages: stages.to_vec(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.inner.lock().unwrap().entries.iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_oldest_first() {
        let ring = SlowQueryRing::new(3);
        for i in 0..5u64 {
            ring.push(i, &format!("SELECT {i}"), i * 1000, &[]);
        }
        let entries = ring.entries();
        assert_eq!(entries.len(), 3);
        // Entries 0 and 1 were evicted; 2, 3, 4 remain, oldest first.
        let fps: Vec<u64> = entries.iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps, vec![2, 3, 4]);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let ring = SlowQueryRing::new(0);
        ring.push(7, "SELECT 1", 999, &[]);
        assert!(ring.is_empty());
    }

    #[test]
    fn long_sql_is_truncated() {
        let ring = SlowQueryRing::new(1);
        let long = "x".repeat(500);
        ring.push(1, &long, 1, &[]);
        let e = &ring.entries()[0];
        assert!(e.sql.chars().count() <= MAX_SQL_LEN + 1);
        assert!(e.sql.ends_with('…'));
    }

    #[test]
    fn stage_breakdown_is_preserved() {
        let ring = SlowQueryRing::new(2);
        ring.push(
            9,
            "SELECT a",
            5000,
            &[(Stage::Rewrite, 3000), (Stage::Execute, 2000)],
        );
        let e = &ring.entries()[0];
        assert_eq!(
            e.stages,
            vec![(Stage::Rewrite, 3000), (Stage::Execute, 2000)]
        );
    }
}
