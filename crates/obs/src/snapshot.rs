//! `ObsSnapshot`: one point-in-time view of everything the registry and
//! the serving layers know, plus the renderers that replace the three
//! bespoke reporting paths (`:stats`, the `EXPLAIN` tail, and the CLI's
//! concurrent-bench report).

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;
use crate::registry::{CounterId, MetricsRegistry, Stage};
use crate::ring::SlowQuery;

/// Output format for [`ObsSnapshot::render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Line-oriented text for the REPL, `EXPLAIN` tails, and CLI dumps.
    Human,
    /// Prometheus text exposition (`# TYPE` + samples).
    Prometheus,
}

/// Rewrite-search counters for one query (the former
/// `RewriteStats::summary()` payload).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchSection {
    /// States popped from the frontier and expanded.
    pub states_expanded: usize,
    /// Candidate pairs rejected by the prefilter.
    pub candidates_prefiltered: usize,
    /// Candidate pairs that reached mapping enumeration.
    pub candidates_attempted: usize,
    /// Column mappings enumerated.
    pub mappings_enumerated: usize,
    /// Rewritings produced.
    pub rewritings: usize,
    /// Closure-cache hits during this search.
    pub closure_cache_hits: u64,
    /// Closure-cache misses during this search.
    pub closure_cache_misses: u64,
    /// Canonicalization wall time, nanoseconds.
    pub prepare_ns: u64,
    /// Search wall time, nanoseconds.
    pub search_ns: u64,
    /// Worker threads used.
    pub threads: usize,
}

impl SearchSection {
    /// Closure-cache hit fraction (0.0 when the cache was untouched).
    pub fn closure_hit_rate(&self) -> f64 {
        let total = self.closure_cache_hits + self.closure_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.closure_cache_hits as f64 / total as f64
        }
    }

    /// One-line summary, byte-identical to the historical
    /// `RewriteStats::summary()` output.
    pub fn summary(&self) -> String {
        format!(
            "states={} candidates={} (prefiltered {}, attempted {}) mappings={} \
             rewritings={} closure-cache={:.0}% hit threads={} \
             prepare={:.1}ms search={:.1}ms",
            self.states_expanded,
            self.candidates_prefiltered + self.candidates_attempted,
            self.candidates_prefiltered,
            self.candidates_attempted,
            self.mappings_enumerated,
            self.rewritings,
            self.closure_hit_rate() * 100.0,
            self.threads,
            self.prepare_ns as f64 / 1e6,
            self.search_ns as f64 / 1e6,
        )
    }
}

/// Session plan-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheSection {
    /// Plan-cache hits (session-cumulative).
    pub hits: u64,
    /// Plan-cache misses.
    pub misses: u64,
    /// Entries invalidated by schema changes.
    pub invalidations: u64,
}

impl PlanCacheSection {
    /// One-line summary, byte-identical to the historical
    /// `RewriteStats::plan_cache_summary()` output.
    pub fn summary(&self) -> String {
        format!(
            "plan-cache: {} hit(s), {} miss(es), {} invalidation(s)",
            self.hits, self.misses, self.invalidations
        )
    }
}

/// Shared-store identity and cumulative writer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSection {
    /// Is the session a handle on a shared store at all?
    pub attached: bool,
    /// Publish epoch of the snapshot read.
    pub epoch: u64,
    /// Schema epoch of that snapshot.
    pub schema_epoch: u64,
    /// Store-cumulative snapshot publishes.
    pub publishes: u64,
    /// Store-cumulative write batches applied.
    pub batches: u64,
    /// Write statements applied across all batches.
    pub batched_ops: u64,
    /// Largest batch applied.
    pub max_batch: u64,
}

impl StoreSection {
    /// Mean write statements per batch (0.0 before the first).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_ops as f64 / self.batches as f64
        }
    }

    /// One-line summary, byte-identical to the historical
    /// `RewriteStats::store_summary()` output.
    pub fn summary(&self) -> String {
        if !self.attached {
            return "store: none (session-local state)".to_string();
        }
        format!(
            "store: epoch={} schema-epoch={} publishes={} batches={} \
             batched-ops={} mean-batch={:.1} max-batch={}",
            self.epoch,
            self.schema_epoch,
            self.publishes,
            self.batches,
            self.batched_ops,
            self.mean_batch(),
            self.max_batch,
        )
    }
}

/// Per-query facts for `EXPLAIN ANALYZE`: which plan was used, how long
/// each stage took, and what the search had to do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySection {
    /// Canonical-form fingerprint (the plan-cache key hash).
    pub fingerprint: u64,
    /// Whether the plan cache served this query.
    pub cached: bool,
    /// Stage timings for this query, in pipeline order, nanoseconds.
    pub stages: Vec<(Stage, u64)>,
    /// End-to-end serving time, nanoseconds.
    pub total_ns: u64,
}

/// One stage's latency distribution, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Which stage.
    pub stage: Stage,
    /// Full bucket snapshot (used for Prometheus exposition).
    pub hist: HistogramSnapshot,
}

impl StageStats {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.count
    }
}

/// A point-in-time view of the observability state. Every section is
/// optional: a per-query snapshot (attached to an answer or an `EXPLAIN
/// ANALYZE`) carries the query/search/cache/store sections, while a
/// registry dump (`:stats`, `aggview metrics`) also carries counters,
/// stage histograms, and the slow-query ring. [`ObsSnapshot::render`]
/// skips absent sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// All registry counters `(id, value)`, empty for per-query snapshots.
    pub counters: Vec<(CounterId, u64)>,
    /// Stage histograms with at least one sample.
    pub stages: Vec<StageStats>,
    /// Retained slow queries, oldest first.
    pub slow: Vec<SlowQuery>,
    /// Slow-query threshold in milliseconds (set iff this snapshot came
    /// from a registry).
    pub slow_threshold_ms: Option<u64>,
    /// Rewrite-search counters for the rendered query.
    pub search: Option<SearchSection>,
    /// Session plan-cache counters.
    pub plan_cache: Option<PlanCacheSection>,
    /// Shared-store identity and writer counters.
    pub store: Option<StoreSection>,
    /// Per-shard store sections of a sharded session, in shard order
    /// (empty for unsharded sessions). Rendered with `shard="i"` labels
    /// in Prometheus output and `shard[i]`-prefixed lines in human
    /// output.
    pub shards: Vec<StoreSection>,
    /// Per-query stage timings (`EXPLAIN ANALYZE`).
    pub query: Option<QuerySection>,
}

impl ObsSnapshot {
    /// Snapshot a registry: all counters, every stage histogram with
    /// samples, and the slow-query ring.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        let counters = CounterId::ALL.iter().map(|&id| (id, reg.get(id))).collect();
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageStats {
                stage,
                hist: reg.stage_snapshot(stage),
            })
            .filter(|s| s.hist.count > 0)
            .collect();
        ObsSnapshot {
            counters,
            stages,
            slow: reg.slow_queries(),
            slow_threshold_ms: Some(reg.slow_threshold_ns() / 1_000_000),
            ..ObsSnapshot::default()
        }
    }

    /// The value of one counter in this snapshot (0 if absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == id)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Render to the requested format. `Human` is the consolidated
    /// replacement for the REPL `:stats` block, the `EXPLAIN` tail, and
    /// the bench report; `Prometheus` backs `aggview metrics` and
    /// `serve --metrics`.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Prometheus => self.render_prometheus(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        if let Some(q) = &self.query {
            let _ = writeln!(
                out,
                "query: fingerprint={:016x} plan={}",
                q.fingerprint,
                if q.cached { "cached" } else { "computed" }
            );
            for &(stage, ns) in &q.stages {
                let _ = writeln!(out, "  {:<10} {:>10}", stage.name(), fmt_ns(ns));
            }
            let _ = writeln!(out, "  {:<10} {:>10}", "total", fmt_ns(q.total_ns));
        }
        if let Some(s) = &self.search {
            let _ = writeln!(out, "search: {}", s.summary());
        }
        if let Some(p) = &self.plan_cache {
            let _ = writeln!(out, "{}", p.summary());
        }
        if let Some(s) = &self.store {
            let _ = writeln!(out, "{}", s.summary());
        }
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "shard[{i}] {}", s.summary());
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "stage", "count", "p50", "p95", "p99", "max"
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    s.stage.name(),
                    s.hist.count,
                    fmt_ns(s.hist.p50_ns()),
                    fmt_ns(s.hist.p95_ns()),
                    fmt_ns(s.hist.p99_ns()),
                    fmt_ns(s.hist.max_ns),
                );
            }
        }
        if let Some(threshold) = self.slow_threshold_ms {
            if self.slow.is_empty() {
                let _ = writeln!(out, "slow queries (>= {threshold}ms): none");
            } else {
                let _ = writeln!(out, "slow queries (>= {threshold}ms), oldest first:");
                for q in &self.slow {
                    let _ = writeln!(
                        out,
                        "  #{} {} fingerprint={:016x} {}",
                        q.seq,
                        fmt_ns(q.total_ns),
                        q.fingerprint,
                        q.sql
                    );
                }
            }
        }
        out
    }

    fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for &(id, value) in &self.counters {
            let name = id.name();
            if id.is_gauge() {
                let _ = writeln!(out, "# TYPE aggview_{name} gauge");
                let _ = writeln!(out, "aggview_{name} {value}");
            } else {
                let _ = writeln!(out, "# TYPE aggview_{name}_total counter");
                let _ = writeln!(out, "aggview_{name}_total {value}");
            }
        }
        if !self.stages.is_empty() {
            let _ = writeln!(out, "# TYPE aggview_stage_duration_nanoseconds histogram");
            for s in &self.stages {
                let stage = s.stage.name();
                let top = s
                    .hist
                    .buckets
                    .iter()
                    .rposition(|&n| n > 0)
                    .unwrap_or(0)
                    .min(63);
                let mut cumulative = 0u64;
                for i in 0..=top {
                    cumulative += s.hist.buckets[i];
                    let le = crate::hist::bucket_upper_edge(i);
                    let _ = writeln!(
                        out,
                        "aggview_stage_duration_nanoseconds_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "aggview_stage_duration_nanoseconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}",
                    s.hist.count
                );
                let _ = writeln!(
                    out,
                    "aggview_stage_duration_nanoseconds_sum{{stage=\"{stage}\"}} {}",
                    s.hist.sum_ns
                );
                let _ = writeln!(
                    out,
                    "aggview_stage_duration_nanoseconds_count{{stage=\"{stage}\"}} {}",
                    s.hist.count
                );
            }
        }
        if let Some(p) = &self.plan_cache {
            // Sessions without a registry dump still export their
            // plan-cache counters (per-query snapshots); registry dumps
            // already cover these via CounterId, so skip duplicates.
            if self.counters.is_empty() {
                let _ = writeln!(out, "# TYPE aggview_plan_cache_hits_total counter");
                let _ = writeln!(out, "aggview_plan_cache_hits_total {}", p.hits);
                let _ = writeln!(out, "# TYPE aggview_plan_cache_misses_total counter");
                let _ = writeln!(out, "aggview_plan_cache_misses_total {}", p.misses);
            }
        }
        if !self.shards.is_empty() {
            let _ = writeln!(out, "# TYPE aggview_shard_publishes_total counter");
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "aggview_shard_publishes_total{{shard=\"{i}\"}} {}",
                    s.publishes
                );
            }
            let _ = writeln!(out, "# TYPE aggview_shard_batched_ops_total counter");
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "aggview_shard_batched_ops_total{{shard=\"{i}\"}} {}",
                    s.batched_ops
                );
            }
            let _ = writeln!(out, "# TYPE aggview_shard_epoch gauge");
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "aggview_shard_epoch{{shard=\"{i}\"}} {}", s.epoch);
            }
        }
        out
    }
}

/// Human-readable nanosecond formatting: `560ns`, `1.2µs`, `3.4ms`, `1.20s`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsOptions;

    #[test]
    fn search_summary_matches_legacy_shape() {
        let s = SearchSection {
            states_expanded: 3,
            candidates_prefiltered: 4,
            candidates_attempted: 2,
            mappings_enumerated: 7,
            rewritings: 1,
            closure_cache_hits: 3,
            closure_cache_misses: 1,
            prepare_ns: 1_500_000,
            search_ns: 2_500_000,
            threads: 2,
        };
        assert_eq!(
            s.summary(),
            "states=3 candidates=6 (prefiltered 4, attempted 2) mappings=7 \
             rewritings=1 closure-cache=75% hit threads=2 \
             prepare=1.5ms search=2.5ms"
        );
    }

    #[test]
    fn store_summary_matches_legacy_shape() {
        let detached = StoreSection::default();
        assert_eq!(detached.summary(), "store: none (session-local state)");
        let attached = StoreSection {
            attached: true,
            epoch: 3,
            schema_epoch: 2,
            publishes: 3,
            batches: 3,
            batched_ops: 3,
            max_batch: 1,
        };
        assert_eq!(
            attached.summary(),
            "store: epoch=3 schema-epoch=2 publishes=3 batches=3 \
             batched-ops=3 mean-batch=1.0 max-batch=1"
        );
    }

    #[test]
    fn plan_cache_summary_matches_legacy_shape() {
        let p = PlanCacheSection {
            hits: 2,
            misses: 1,
            invalidations: 0,
        };
        assert_eq!(
            p.summary(),
            "plan-cache: 2 hit(s), 1 miss(es), 0 invalidation(s)"
        );
    }

    #[test]
    fn registry_snapshot_renders_both_formats() {
        let reg = MetricsRegistry::new(&ObsOptions::default());
        reg.incr(CounterId::Queries);
        reg.observe_ns(Stage::Execute, 1_234);
        let snap = ObsSnapshot::from_registry(&reg);
        assert_eq!(snap.counter(CounterId::Queries), 1);

        let human = snap.render(Format::Human);
        assert!(human.contains("execute"));
        assert!(human.contains("slow queries (>= 100ms): none"));

        let prom = snap.render(Format::Prometheus);
        assert!(prom.contains("# TYPE aggview_queries_total counter"));
        assert!(prom.contains("aggview_queries_total 1"));
        assert!(prom.contains("# TYPE aggview_write_queue_depth gauge"));
        assert!(prom.contains("aggview_stage_duration_nanoseconds_count{stage=\"execute\"} 1"));
        assert!(prom.contains(
            "aggview_stage_duration_nanoseconds_bucket{stage=\"execute\",le=\"+Inf\"} 1"
        ));
        // Every sample line is `name{labels} value` or `name value`, and
        // every metric has a preceding # TYPE line.
        for line in prom.lines() {
            assert!(
                line.starts_with("# TYPE aggview_") || line.starts_with("aggview_"),
                "unexpected exposition line: {line}"
            );
        }
    }

    #[test]
    fn per_query_snapshot_renders_explain_sections() {
        let snap = ObsSnapshot {
            search: Some(SearchSection::default()),
            plan_cache: Some(PlanCacheSection::default()),
            store: Some(StoreSection::default()),
            query: Some(QuerySection {
                fingerprint: 0xabcd,
                cached: true,
                stages: vec![(Stage::Parse, 100), (Stage::Execute, 2_000)],
                total_ns: 2_100,
            }),
            ..ObsSnapshot::default()
        };
        let human = snap.render(Format::Human);
        assert!(human.contains("query: fingerprint=000000000000abcd plan=cached"));
        assert!(human.contains("search: states=0"));
        assert!(human.contains("plan-cache: 0 hit(s)"));
        assert!(human.contains("store: none (session-local state)"));
        // No registry sections in a per-query snapshot.
        assert!(!human.contains("slow queries"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
