//! Model-checking the predicate-closure reasoner: on random conjunctions
//! over a small integer domain, everything the closure *entails* must hold
//! in every satisfying assignment (soundness of implication), and whenever
//! a satisfying assignment exists the closure must report satisfiable
//! (soundness of the unsat verdict).
//!
//! Completeness over the integers is deliberately not claimed: the
//! reasoner works in dense-order semantics (no gap reasoning like
//! `A > 3 ∧ A < 5 ⟹ A = 4`), matching the paper's closure.

use aggview_core::canon::{Atom, Term};
use aggview_core::PredClosure;
use aggview_sql::{CmpOp, Literal};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_COLS: usize = 4;
const DOMAIN: i64 = 5;

fn random_atoms(seed: u64, n: usize) -> Vec<Atom> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lhs = Term::Col(rng.random_range(0..N_COLS));
            let op = match rng.random_range(0..6) {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            let rhs = if rng.random_bool(0.5) {
                Term::Col(rng.random_range(0..N_COLS))
            } else {
                Term::Const(Literal::Int(rng.random_range(0..DOMAIN)))
            };
            Atom::new(lhs, op, rhs)
        })
        .collect()
}

fn holds(atom: &Atom, assignment: &[i64]) -> bool {
    let val = |t: &Term| -> i64 {
        match t {
            Term::Col(c) => assignment[*c],
            Term::Const(Literal::Int(v)) => *v,
            Term::Const(other) => panic!("integer model only, got {other:?}"),
        }
    };
    let (a, b) = (val(&atom.lhs), val(&atom.rhs));
    match atom.op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn assignments() -> impl Iterator<Item = Vec<i64>> {
    (0..(DOMAIN as usize).pow(N_COLS as u32)).map(|mut code| {
        (0..N_COLS)
            .map(|_| {
                let v = (code % DOMAIN as usize) as i64;
                code /= DOMAIN as usize;
                v
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn implication_is_sound(seed in any::<u64>(), n_atoms in 1usize..6) {
        let atoms = random_atoms(seed, n_atoms);
        let universe: Vec<Term> = (0..N_COLS).map(Term::Col).collect();
        let closure = PredClosure::build(&atoms, &universe);

        let satisfying: Vec<Vec<i64>> = assignments()
            .filter(|a| atoms.iter().all(|atom| holds(atom, a)))
            .collect();

        // Unsat verdict soundness: a model refutes "unsatisfiable".
        if !satisfying.is_empty() {
            prop_assert!(
                closure.satisfiable(),
                "closure says unsat but {satisfying:?} satisfies {atoms:?}"
            );
        }

        // Implication soundness: every entailed candidate atom must hold in
        // every satisfying assignment.
        if !satisfying.is_empty() {
            let mut candidates: Vec<Atom> = Vec::new();
            for i in 0..N_COLS {
                for j in 0..N_COLS {
                    for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                        candidates.push(Atom::new(Term::Col(i), op, Term::Col(j)));
                    }
                }
                for v in 0..DOMAIN {
                    for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le] {
                        candidates.push(Atom::new(
                            Term::Col(i),
                            op,
                            Term::Const(Literal::Int(v)),
                        ));
                    }
                }
            }
            for cand in &candidates {
                if closure.implies_atom(cand) {
                    for a in &satisfying {
                        prop_assert!(
                            holds(cand, a),
                            "closure of {atoms:?} claims {cand:?}, violated by {a:?}"
                        );
                    }
                }
            }
        }
    }

    /// The residual atoms the closure derives are themselves entailed —
    /// they must hold in every satisfying assignment.
    #[test]
    fn residuals_are_entailed(seed in any::<u64>(), n_atoms in 1usize..6) {
        let atoms = random_atoms(seed, n_atoms);
        let universe: Vec<Term> = (0..N_COLS).map(Term::Col).collect();
        let closure = PredClosure::build(&atoms, &universe);
        if !closure.satisfiable() {
            return Ok(());
        }
        let residual = closure.residual_atoms(|_| true);
        for a in assignments().filter(|a| atoms.iter().all(|atom| holds(atom, a))) {
            for r in &residual {
                prop_assert!(
                    holds(r, &a),
                    "residual {r:?} of {atoms:?} violated by {a:?}"
                );
            }
        }
    }
}
