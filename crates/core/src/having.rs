//! Predicate move-around normalization of `HAVING` clauses — Section 3.3.
//!
//! Before usability is checked, both the query and the view are normalized
//! by *moving maximal sets of conditions from the `HAVING` clause to the
//! `WHERE` clause*, strengthening `Conds(Q)` without changing the query's
//! result. The paper cites the general predicate move-around machinery of
//! [LMS94, RSSS95]; we implement the sound subset the paper itself uses in
//! its examples:
//!
//! 1. A `HAVING` atom over *grouping columns and constants only* moves to
//!    `WHERE` verbatim (it holds for every row of a group iff it holds for
//!    the group).
//! 2. `MAX(B) > c` (or `≥`) moves as `B > c`, and dually `MIN(B) < c` (or
//!    `≤`) as `B < c`, **provided every aggregate expression in the query
//!    is that same aggregate**. Removing the non-qualifying rows then (a)
//!    eliminates exactly the groups the `HAVING` clause eliminated and (b)
//!    leaves the surviving groups' `MAX`/`MIN` values unchanged — which is
//!    only safe because no other aggregate observes the removed rows.
//!
//! The move both strengthens `Conds(Q)` (helping condition C3 find a
//! residual) and removes the atom from `GConds(Q)`.

use crate::canon::{Atom, Canonical, GAtom, GTerm, Term};
use aggview_sql::ast::{AggFunc, CmpOp};

use crate::canon::AggExpr;

/// Normalize a canonical query by moving movable `HAVING` atoms into the
/// `WHERE` clause. Returns the number of atoms moved.
pub fn normalize_having(q: &mut Canonical) -> usize {
    let mut moved = 0;
    let mut remaining: Vec<GAtom> = Vec::with_capacity(q.gconds.len());
    let gconds = std::mem::take(&mut q.gconds);
    // `agg_exprs` must reflect the whole query, including atoms we keep.
    let all_aggs: Vec<AggExpr> = {
        let mut v: Vec<AggExpr> = Vec::new();
        for s in &q.select {
            if let crate::canon::SelItem::Agg(a) = s {
                v.push(a.clone());
            }
        }
        for g in &gconds {
            for t in [&g.lhs, &g.rhs] {
                if let GTerm::Agg(a) = t {
                    v.push(a.clone());
                }
            }
        }
        v
    };

    for atom in gconds {
        match movable(&atom, &all_aggs) {
            Some(where_atom) => {
                q.conds.push(where_atom);
                moved += 1;
            }
            None => remaining.push(atom),
        }
    }
    q.gconds = remaining;
    moved
}

/// If `atom` may move to the `WHERE` clause, the `WHERE` atom it becomes.
fn movable(atom: &GAtom, all_aggs: &[AggExpr]) -> Option<Atom> {
    // Rule 1: grouping columns and constants only.
    if let (Some(l), Some(r)) = (scalar_term(&atom.lhs), scalar_term(&atom.rhs)) {
        return Some(Atom::new(l, atom.op, r));
    }

    // Rule 2: MAX(B) > c / MIN(B) < c, with the aggregate oriented left.
    let (agg, op, konst) = match (&atom.lhs, &atom.rhs) {
        (GTerm::Agg(a), GTerm::Const(c)) => (a, atom.op, c),
        (GTerm::Const(c), GTerm::Agg(a)) => (a, atom.op.flip(), c),
        _ => return None,
    };
    let AggExpr::Plain(spec) = agg else {
        return None;
    };
    let arg = spec.arg?;
    let applies = matches!(
        (spec.func, op),
        (AggFunc::Max, CmpOp::Gt)
            | (AggFunc::Max, CmpOp::Ge)
            | (AggFunc::Min, CmpOp::Lt)
            | (AggFunc::Min, CmpOp::Le)
    );
    if !applies {
        return None;
    }
    // Every aggregate in the query must be this exact aggregate.
    if !all_aggs.iter().all(|a| a == agg) {
        return None;
    }
    Some(Atom::new(Term::Col(arg), op, Term::Const(konst.clone())))
}

fn scalar_term(t: &GTerm) -> Option<Term> {
    match t {
        GTerm::Col(c) => Some(Term::Col(*c)),
        GTerm::Const(l) => Some(Term::Const(l.clone())),
        GTerm::Agg(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::Canonical;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn canon(sql: &str) -> Canonical {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R", ["A", "B", "C"]))
            .unwrap();
        Canonical::from_query(&parse_query(sql).unwrap(), &cat).unwrap()
    }

    #[test]
    fn grouping_column_atom_moves() {
        let mut q = canon("SELECT A, SUM(B) FROM R GROUP BY A HAVING A > 5 AND SUM(B) < 100");
        let moved = normalize_having(&mut q);
        assert_eq!(moved, 1);
        assert_eq!(q.gconds.len(), 1);
        assert!(q.conds.contains(&Atom::new(
            Term::Col(0),
            CmpOp::Gt,
            Term::Const(aggview_sql::Literal::Int(5))
        )));
    }

    #[test]
    fn max_gt_moves_when_sole_aggregate() {
        let mut q = canon("SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) > 10");
        let moved = normalize_having(&mut q);
        assert_eq!(moved, 1);
        assert!(q.gconds.is_empty());
        assert!(q.conds.contains(&Atom::new(
            Term::Col(1),
            CmpOp::Gt,
            Term::Const(aggview_sql::Literal::Int(10))
        )));
    }

    #[test]
    fn min_le_moves_when_sole_aggregate() {
        let mut q = canon("SELECT A, MIN(B) FROM R GROUP BY A HAVING MIN(B) <= 3");
        assert_eq!(normalize_having(&mut q), 1);
        assert!(q.gconds.is_empty());
    }

    #[test]
    fn flipped_constant_orientation_moves() {
        let mut q = canon("SELECT A, MAX(B) FROM R GROUP BY A HAVING 10 < MAX(B)");
        assert_eq!(normalize_having(&mut q), 1);
        assert_eq!(
            q.conds.last().unwrap(),
            &Atom::new(
                Term::Col(1),
                CmpOp::Gt,
                Term::Const(aggview_sql::Literal::Int(10))
            )
        );
    }

    #[test]
    fn max_lt_does_not_move() {
        // MAX(B) < 10 cannot become B < 10: it would keep groups whose max
        // exceeds 10 (as truncated groups).
        let mut q = canon("SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) < 10");
        assert_eq!(normalize_having(&mut q), 0);
        assert_eq!(q.gconds.len(), 1);
    }

    #[test]
    fn max_gt_blocked_by_other_aggregates() {
        // COUNT(C) would observe the rows removed by B > 10.
        let mut q = canon("SELECT A, MAX(B), COUNT(C) FROM R GROUP BY A HAVING MAX(B) > 10");
        assert_eq!(normalize_having(&mut q), 0);
    }

    #[test]
    fn repeated_same_aggregate_is_fine() {
        // MAX(B) appears twice (SELECT and HAVING) — still the sole
        // aggregate expression.
        let mut q = canon("SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) > 10 AND MAX(B) >= 12");
        // Both atoms qualify and both move.
        assert_eq!(normalize_having(&mut q), 2);
        assert!(q.gconds.is_empty());
    }

    #[test]
    fn sum_predicates_never_move() {
        let mut q = canon("SELECT A, SUM(B) FROM R GROUP BY A HAVING SUM(B) > 10");
        assert_eq!(normalize_having(&mut q), 0);
    }

    #[test]
    fn agg_to_agg_comparison_stays() {
        let mut q = canon("SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) > MIN(B)");
        assert_eq!(normalize_having(&mut q), 0);
    }
}
