//! The top-level rewriter and multi-view iteration — Section 3.2.
//!
//! [`Rewriter::rewrite`] finds **all** rewritings of a query using any
//! number of the given materialized views, by iterating single-view
//! substitutions: each successive rewriting treats previously incorporated
//! views as database tables. Theorem 3.2 guarantees that, for conjunctive
//! views with equality predicates, this iteration is sound, Church-Rosser
//! (order-independent) and complete. States are deduplicated by their
//! *application set* — which view was applied to which (provenance-labeled)
//! occurrences — which is exactly the invariant the Church-Rosser property
//! provides.
//!
//! Routing per candidate (query state, view):
//! * conjunctive view → Section 3 ([`crate::conjunctive`]),
//! * aggregation view + aggregation query → Section 4
//!   ([`crate::aggregate`]),
//! * aggregation view + conjunctive query → rejected (Section 4.5),
//! * conjunctive view + conjunctive query, both provably sets → Section 5
//!   many-to-1 mappings ([`crate::set_mode`]) in addition to the 1-1 ones.

use crate::aggregate::{rewrite_aggregate, VaMode};
use crate::canon::{CanonError, Canonical, Term};
use crate::closure::PredClosure;
use crate::conjunctive::{is_conjunctive, is_conjunctive_core, rewrite_conjunctive};
use crate::cost::{estimate_cost, TableStats};
use crate::expand::rewrite_expand;
use crate::explain::{CandidateMode, CandidateReport, WhyNot};
use crate::having::normalize_having;
use crate::mapping::{enumerate_mappings, Mapping};
use crate::set_mode::{result_is_set, rewrite_set_mode};
use aggview_catalog::{Catalog, SchemaSource};
use aggview_sql::ast::Query;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A materialized view: a name and its defining query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The view's name (how rewritten queries reference it).
    pub name: String,
    /// The defining query.
    pub query: Query,
}

impl ViewDef {
    /// Create a view definition.
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        ViewDef {
            name: name.into(),
            query,
        }
    }

    /// The view's output column names (see [`Query::output_names`]).
    pub fn output_names(&self) -> Vec<String> {
        self.query.output_names()
    }
}

/// Rewriting strategy for the Section 4 multiplicity machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Weighted aggregates (`SUM(N·A)` …) — always sound, no auxiliary
    /// views. The default.
    #[default]
    Weighted,
    /// The paper's `V^a` auxiliary-view construction where it is sound
    /// (see `DESIGN.md`), weighted aggregates otherwise.
    PaperFaithful,
}

/// Options controlling the rewriter.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Section 4 strategy.
    pub strategy: Strategy,
    /// Enable Section 5 many-to-1 rewritings (needs catalog keys).
    pub enable_set_mode: bool,
    /// Iterate to find multi-view rewritings (Section 3.2); otherwise only
    /// single-view rewritings are produced.
    pub multi_view: bool,
    /// Stop after this many rewritings.
    pub max_rewritings: usize,
    /// Maximum number of view applications per rewriting.
    pub max_depth: usize,
    /// Apply the Section 3.3 HAVING move-around normalization before
    /// checking usability (on by default; off only for ablation studies).
    pub normalize_having: bool,
    /// Enable the footnote-3 "expand" extension: answer *conjunctive*
    /// queries from aggregation views by joining with the interpreted
    /// `Nat` table on `Nat.k <= count`. Rewritings produced this way set
    /// [`Rewriting::requires_nat`] and need the `Nat` relation at
    /// execution time (`aggview::run::ensure_nat`).
    pub enable_expand: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            strategy: Strategy::Weighted,
            enable_set_mode: true,
            multi_view: true,
            max_rewritings: 64,
            max_depth: 8,
            normalize_having: true,
            enable_expand: false,
        }
    }
}

/// A rewriting of the input query that uses one or more views.
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// The rewritten query (references views by name in its `FROM`).
    pub query: Query,
    /// Canonical form of the rewritten query.
    pub canonical: Canonical,
    /// Auxiliary views (`V^a`) to materialize, in order, before `query`.
    pub aux_views: Vec<ViewDef>,
    /// Names of the views used, in application order.
    pub views_used: Vec<String>,
    /// Whether the paper's `V^a` construction was used anywhere.
    pub used_paper_va: bool,
    /// Whether the rewriting relies on Section 5 set semantics (its
    /// guarantee is then set-equivalence; both sides are provably sets).
    pub set_semantics: bool,
    /// Whether the rewriting joins the interpreted `Nat` table (the
    /// footnote-3 expansion) — the executing database must contain it.
    pub requires_nat: bool,
}

impl Rewriting {
    /// A one-line human-readable summary of how this rewriting answers the
    /// query (used by the CLI and the examples).
    pub fn description(&self) -> String {
        let mut parts = vec![format!("uses {:?}", self.views_used)];
        if self.used_paper_va {
            parts.push("via the paper's V^a auxiliary view".to_string());
        }
        if !self.aux_views.is_empty() {
            parts.push(format!(
                "materializes {} auxiliary view(s)",
                self.aux_views.len()
            ));
        }
        if self.set_semantics {
            parts.push("set semantics (Section 5)".to_string());
        }
        if self.requires_nat {
            parts.push("requires the Nat table (footnote 3)".to_string());
        }
        parts.join("; ")
    }

    /// Estimated evaluation cost (main query plus auxiliary views).
    pub fn cost(&self, stats: &TableStats) -> f64 {
        let aux: f64 = self
            .aux_views
            .iter()
            .map(|v| estimate_cost(&v.query, stats))
            .sum();
        aux + estimate_cost(&self.query, stats)
    }
}

/// Errors from [`Rewriter::rewrite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The input query failed to canonicalize.
    Query(CanonError),
    /// A view definition failed to canonicalize.
    View {
        /// The offending view.
        view: String,
        /// The underlying error.
        error: CanonError,
    },
    /// Two views (or a view and a base table) share a name.
    DuplicateName(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Query(e) => write!(f, "query: {e}"),
            RewriteError::View { view, error } => write!(f, "view `{view}`: {error}"),
            RewriteError::DuplicateName(n) => write!(f, "duplicate relation name `{n}`"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// The rewriting engine.
pub struct Rewriter<'a> {
    catalog: &'a Catalog,
    options: RewriteOptions,
}

struct PreparedView {
    name: String,
    canonical: Canonical,
    out_names: Vec<String>,
    conjunctive: bool,
    /// Conjunctive up to DISTINCT (eligible for Section 5 set semantics).
    conjunctive_core: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApplyMode {
    /// Sections 3/4 multiset rewriting.
    Multiset,
    /// Section 5 set-semantics rewriting (many-to-1 mapping).
    SetSemantics,
    /// Footnote-3 expansion (conjunctive query, aggregation view).
    Expand,
}

struct State {
    canonical: Canonical,
    labels: Vec<String>,
    apps: BTreeSet<String>,
    aux: Vec<ViewDef>,
    used: Vec<String>,
    used_va: bool,
    set_semantics: bool,
    requires_nat: bool,
}

impl<'a> Rewriter<'a> {
    /// A rewriter with default options.
    pub fn new(catalog: &'a Catalog) -> Self {
        Rewriter {
            catalog,
            options: RewriteOptions::default(),
        }
    }

    /// A rewriter with explicit options.
    pub fn with_options(catalog: &'a Catalog, options: RewriteOptions) -> Self {
        Rewriter { catalog, options }
    }

    /// The active options.
    pub fn options(&self) -> &RewriteOptions {
        &self.options
    }

    fn prepare(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<(Canonical, Vec<PreparedView>), RewriteError> {
        // View schemas are visible to later views and to the query.
        let mut view_schemas: HashMap<String, Vec<String>> = HashMap::new();
        let mut prepared = Vec::with_capacity(views.len());
        for v in views {
            if self.catalog.table(&v.name).is_some() || view_schemas.contains_key(&v.name) {
                return Err(RewriteError::DuplicateName(v.name.clone()));
            }
            let schemas = Chain {
                first: &view_schemas,
                second: self.catalog,
            };
            let mut canonical =
                Canonical::from_query(&v.query, &schemas).map_err(|error| RewriteError::View {
                    view: v.name.clone(),
                    error,
                })?;
            if self.options.normalize_having {
                normalize_having(&mut canonical);
            }
            let out_names = v.output_names();
            view_schemas.insert(v.name.clone(), out_names.clone());
            let conjunctive = is_conjunctive(&canonical);
            let conjunctive_core = is_conjunctive_core(&canonical);
            prepared.push(PreparedView {
                name: v.name.clone(),
                canonical,
                out_names,
                conjunctive,
                conjunctive_core,
            });
        }
        let schemas = Chain {
            first: &view_schemas,
            second: self.catalog,
        };
        let mut q = Canonical::from_query(query, &schemas).map_err(RewriteError::Query)?;
        if self.options.normalize_having {
            normalize_having(&mut q);
        }
        Ok((q, prepared))
    }

    /// Find rewritings of `query` that use the given views. Returns every
    /// rewriting found (possibly none), up to the configured cap.
    pub fn rewrite(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<Vec<Rewriting>, RewriteError> {
        let (root, prepared) = self.prepare(query, views)?;
        let const_universe = collect_const_terms(&root, &prepared);

        let mut results: Vec<Rewriting> = Vec::new();
        let mut seen: HashSet<BTreeSet<String>> = HashSet::new();
        let mut queue: VecDeque<State> = VecDeque::new();
        let mut aux_counter = 0usize;
        queue.push_back(State {
            labels: (0..root.tables.len()).map(|i| format!("q{i}")).collect(),
            canonical: root,
            apps: BTreeSet::new(),
            aux: Vec::new(),
            used: Vec::new(),
            used_va: false,
            set_semantics: false,
            requires_nat: false,
        });
        seen.insert(BTreeSet::new());

        while let Some(state) = queue.pop_front() {
            if results.len() >= self.options.max_rewritings {
                break;
            }
            if state.apps.len() >= self.options.max_depth {
                continue;
            }
            if !state.canonical.is_plain() {
                continue; // terminal: derived aggregate forms
            }
            if !self.options.multi_view && !state.apps.is_empty() {
                continue;
            }

            let mut universe: Vec<Term> =
                (0..state.canonical.n_cols()).map(Term::Col).collect();
            universe.extend(const_universe.iter().cloned());
            let closure = PredClosure::build(&state.canonical.conds, &universe);

            for view in &prepared {
                for (mapping, mode) in
                    self.candidate_mappings(&state, view, &closure)
                {
                    let attempt = self.apply(
                        &state,
                        view,
                        &mapping,
                        &closure,
                        mode,
                        &mut aux_counter,
                    );
                    let Ok(next) = attempt else { continue };
                    if seen.insert(next.apps.clone()) {
                        results.push(Rewriting {
                            query: next.canonical.to_query(),
                            canonical: next.canonical.clone(),
                            aux_views: next.aux.clone(),
                            views_used: next.used.clone(),
                            used_paper_va: next.used_va,
                            set_semantics: next.set_semantics,
                            requires_nat: next.requires_nat,
                        });
                        if results.len() >= self.options.max_rewritings {
                            return Ok(results);
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
        Ok(results)
    }

    /// All mappings to try for (state, view): 1-1 always; many-to-1 extras
    /// when Section 5 applies; expansion mappings when footnote 3 applies.
    fn candidate_mappings(
        &self,
        state: &State,
        view: &PreparedView,
        closure: &PredClosure,
    ) -> Vec<(Mapping, ApplyMode)> {
        let mut out: Vec<(Mapping, ApplyMode)> = Vec::new();

        // Sections 3/4 multiset machinery: duplicate-preserving conjunctive
        // views work for any query; (non-DISTINCT) aggregation views for
        // aggregation queries. A DISTINCT view changes multiplicities and
        // never enters the multiset path. Section 4.5 leaves aggregation
        // view + conjunctive query to the footnote-3 expansion (opt-in).
        let aggregation_view = !view.conjunctive_core && !view.canonical.distinct;
        if view.conjunctive || (aggregation_view && state.canonical.is_aggregation_query()) {
            for m in enumerate_mappings(&view.canonical, &state.canonical, true, Some(closure)) {
                out.push((m, ApplyMode::Multiset));
            }
        } else if aggregation_view
            && !state.canonical.is_aggregation_query()
            && self.options.enable_expand
        {
            for m in enumerate_mappings(&view.canonical, &state.canonical, true, Some(closure)) {
                out.push((m, ApplyMode::Expand));
            }
        }

        // Section 5 set semantics: conjunctive-core query and view, both
        // provably sets (keys/FDs, or DISTINCT by definition). Many-to-1
        // mappings always; 1-1 mappings too when the multiset path was
        // closed (DISTINCT views).
        if self.options.enable_set_mode
            && view.conjunctive_core
            && is_conjunctive_core(&state.canonical)
            && result_is_set(&state.canonical, self.catalog)
            && result_is_set(&view.canonical, self.catalog)
        {
            for m in enumerate_mappings(&view.canonical, &state.canonical, false, Some(closure))
            {
                if !m.is_one_to_one() || !view.conjunctive {
                    out.push((m, ApplyMode::SetSemantics));
                }
            }
        }
        out
    }

    fn apply(
        &self,
        state: &State,
        view: &PreparedView,
        mapping: &Mapping,
        closure: &PredClosure,
        mode: ApplyMode,
        aux_counter: &mut usize,
    ) -> Result<State, WhyNot> {
        let app_label = {
            let mapped: Vec<&str> = mapping
                .occ_map
                .iter()
                .map(|&q| state.labels[q].as_str())
                .collect();
            format!("{}({})", view.name, mapped.join(","))
        };

        let mut aux = state.aux.clone();
        let mut used_va = state.used_va;
        let mut requires_nat = state.requires_nat;
        let canonical = if mode == ApplyMode::Expand {
            requires_nat = true;
            rewrite_expand(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
            )?
        } else if mode == ApplyMode::SetSemantics {
            rewrite_set_mode(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
                self.catalog,
            )?
        } else if view.conjunctive {
            rewrite_conjunctive(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
            )?
        } else {
            *aux_counter += 1;
            let aux_name = format!("{}_va{}", view.name, aux_counter);
            let mode = match self.options.strategy {
                Strategy::Weighted => VaMode::Weighted,
                Strategy::PaperFaithful => VaMode::PaperVa,
            };
            let out = rewrite_aggregate(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
                mode,
                &aux_name,
            )?;
            for (name, def, out_names) in &out.aux_views {
                let mut ast = def.to_query();
                for (item, n) in ast.select.iter_mut().zip(out_names) {
                    item.alias = Some(n.clone());
                }
                aux.push(ViewDef::new(name.clone(), ast));
            }
            used_va |= out.used_va;
            out.query
        };

        // Provenance labels for the new state: kept occurrences keep their
        // labels (in order); the view (or V^a) occurrence gets the
        // application label.
        let image = mapping.image_occs();
        let mut labels: Vec<String> = (0..state.canonical.tables.len())
            .filter(|i| !image.contains(i))
            .map(|i| state.labels[i].clone())
            .collect();
        labels.push(app_label.clone());
        if mode == ApplyMode::Expand {
            labels.push(format!("Nat:{app_label}"));
        }
        debug_assert_eq!(labels.len(), canonical.tables.len());

        let mut apps = state.apps.clone();
        apps.insert(app_label);
        let mut used = state.used.clone();
        used.push(view.name.clone());

        Ok(State {
            canonical,
            labels,
            apps,
            aux,
            used,
            used_va,
            set_semantics: state.set_semantics || mode == ApplyMode::SetSemantics,
            requires_nat,
        })
    }

    /// Explain, for each view, every candidate single-step mapping on the
    /// original query: the rewriting it yields or the condition it fails.
    pub fn explain(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<Vec<CandidateReport>, RewriteError> {
        let (root, prepared) = self.prepare(query, views)?;
        let const_universe = collect_const_terms(&root, &prepared);
        let mut universe: Vec<Term> = (0..root.tables.len())
            .flat_map(|i| root.tables[i].cols())
            .map(Term::Col)
            .collect();
        universe.extend(const_universe);
        let closure = PredClosure::build(&root.conds, &universe);
        let state = State {
            labels: (0..root.tables.len()).map(|i| format!("q{i}")).collect(),
            canonical: root,
            apps: BTreeSet::new(),
            aux: Vec::new(),
            used: Vec::new(),
            used_va: false,
            set_semantics: false,
            requires_nat: false,
        };

        let mut reports = Vec::new();
        let mut aux_counter = 0usize;
        for view in &prepared {
            let aggregation_view = !view.conjunctive_core && !view.canonical.distinct;
            let conjunctive_query = !state.canonical.is_aggregation_query();
            if aggregation_view && conjunctive_query && !self.options.enable_expand {
                reports.push(CandidateReport {
                    view: view.name.clone(),
                    mapping: None,
                    mode: CandidateMode::Multiset,
                    outcome: Err(WhyNot::AggregationViewForConjunctiveQuery),
                });
                continue;
            }
            // Unpruned enumeration so failures are reported per mapping.
            let one_to_one = enumerate_mappings(&view.canonical, &state.canonical, true, None);
            let mode = if aggregation_view && conjunctive_query {
                ApplyMode::Expand
            } else {
                ApplyMode::Multiset
            };
            let mut any = false;
            if view.conjunctive || aggregation_view {
                for m in &one_to_one {
                    any = true;
                    let outcome = self
                        .apply(&state, view, m, &closure, mode, &mut aux_counter)
                        .map(|s| s.canonical.to_query().to_string());
                    reports.push(CandidateReport {
                        view: view.name.clone(),
                        mapping: Some(m.occ_map.clone()),
                        mode: match mode {
                            ApplyMode::Expand => CandidateMode::Expand,
                            _ => CandidateMode::Multiset,
                        },
                        outcome,
                    });
                }
            }
            // Section 5 candidates (many-to-1; 1-1 too for DISTINCT views).
            if self.options.enable_set_mode
                && view.conjunctive_core
                && is_conjunctive_core(&state.canonical)
            {
                for m in enumerate_mappings(&view.canonical, &state.canonical, false, None) {
                    if m.is_one_to_one() && view.conjunctive {
                        continue; // already reported on the multiset path
                    }
                    any = true;
                    let outcome = self
                        .apply(&state, view, &m, &closure, ApplyMode::SetSemantics, &mut aux_counter)
                        .map(|s| s.canonical.to_query().to_string());
                    reports.push(CandidateReport {
                        view: view.name.clone(),
                        mapping: Some(m.occ_map.clone()),
                        mode: CandidateMode::SetSemantics,
                        outcome,
                    });
                }
            }
            if !any {
                reports.push(CandidateReport {
                    view: view.name.clone(),
                    mapping: None,
                    mode: CandidateMode::Multiset,
                    outcome: Err(WhyNot::NoColumnMapping),
                });
            }
        }
        Ok(reports)
    }
}

fn collect_const_terms(root: &Canonical, views: &[PreparedView]) -> Vec<Term> {
    let mut consts: Vec<Term> = Vec::new();
    let mut push = |t: &Term| {
        if matches!(t, Term::Const(_)) && !consts.contains(t) {
            consts.push(t.clone());
        }
    };
    for a in &root.conds {
        push(&a.lhs);
        push(&a.rhs);
    }
    for v in views {
        for a in &v.canonical.conds {
            push(&a.lhs);
            push(&a.rhs);
        }
    }
    consts
}

/// Schema chaining: view outputs first, catalog second.
struct Chain<'a> {
    first: &'a HashMap<String, Vec<String>>,
    second: &'a Catalog,
}

impl SchemaSource for Chain<'_> {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.first
            .get(name)
            .cloned()
            .or_else(|| self.second.table_columns(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::TableSchema;
    use aggview_sql::parse_query;

    fn telephony_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new("Calling_Plans", ["Plan_Id", "Plan_Name"]).with_key(["Plan_Id"]),
        )
        .unwrap();
        cat.add_table(
            TableSchema::new(
                "Calls",
                ["Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge"],
            )
            .with_key(["Call_Id"]),
        )
        .unwrap();
        cat
    }

    fn v1() -> ViewDef {
        ViewDef::new(
            "V1",
            parse_query(
                "SELECT Calls.Plan_Id, Plan_Name, Month, Year, \
                 SUM(Charge) AS Monthly_Earnings \
                 FROM Calls, Calling_Plans \
                 WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
                 GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
            )
            .unwrap(),
        )
    }

    #[test]
    fn example_1_1_motivating() {
        // The paper's motivating example, end to end.
        let cat = telephony_catalog();
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name \
             HAVING SUM(Charge) < 1000000",
        )
        .unwrap();
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v1()]).unwrap();
        assert_eq!(rws.len(), 1);
        let rw = &rws[0];
        assert_eq!(rw.views_used, vec!["V1"]);
        assert!(rw.aux_views.is_empty());
        assert_eq!(
            rw.query.to_string(),
            "SELECT V1.Plan_Id, V1.Plan_Name, SUM(V1.Monthly_Earnings) FROM V1 \
             WHERE V1.Year = 1995 GROUP BY V1.Plan_Id, V1.Plan_Name \
             HAVING SUM(V1.Monthly_Earnings) < 1000000"
        );
    }

    #[test]
    fn view_must_not_cover_the_query_conditions_it_lacks() {
        // A view missing the join condition is unusable.
        let cat = telephony_catalog();
        let bad_view = ViewDef::new(
            "B",
            parse_query(
                "SELECT Calls.Plan_Id, Plan_Name, Year, SUM(Charge) AS S \
                 FROM Calls, Calling_Plans \
                 WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1994 \
                 GROUP BY Calls.Plan_Id, Plan_Name, Year",
            )
            .unwrap(),
        );
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name",
        )
        .unwrap();
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter.rewrite(&q, &[bad_view]).unwrap().is_empty());
    }

    #[test]
    fn multiple_views_iterate_in_any_order() {
        // Two conjunctive views covering disjoint parts of the query;
        // iteration must find the combined rewriting regardless of order.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        let q = parse_query("SELECT A, C FROM R1, R2 WHERE B = 1 AND D = 2").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A FROM R1 WHERE B = 1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT C FROM R2 WHERE D = 2").unwrap());
        let rewriter = Rewriter::new(&cat);
        let order1 = rewriter.rewrite(&q, &[va.clone(), vb.clone()]).unwrap();
        let order2 = rewriter.rewrite(&q, &[vb, va]).unwrap();
        // Three rewritings each: {VA}, {VB}, {VA,VB}.
        assert_eq!(order1.len(), 3);
        assert_eq!(order2.len(), 3);
        let sigs = |rws: &[Rewriting]| -> BTreeSet<BTreeSet<String>> {
            rws.iter()
                .map(|r| r.views_used.iter().cloned().collect())
                .collect()
        };
        assert_eq!(sigs(&order1), sigs(&order2));
        // The two-view rewriting mentions both views and no base tables.
        let combined = order1
            .iter()
            .find(|r| r.views_used.len() == 2)
            .expect("combined rewriting");
        assert!(combined
            .query
            .from
            .iter()
            .all(|t| t.table == "VA" || t.table == "VB"));
    }

    #[test]
    fn same_view_used_twice() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.B").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        // V can replace x, y, or both (both assignments of a single
        // replacement are distinct apps; the double use collapses to one
        // canonical app set per pairing).
        let double = rws
            .iter()
            .filter(|r| r.views_used.len() == 2)
            .collect::<Vec<_>>();
        assert!(!double.is_empty());
        for r in &double {
            assert!(r.query.from.iter().all(|t| t.table == "V"));
        }
    }

    #[test]
    fn explain_reports_reasons() {
        let cat = telephony_catalog();
        let q = parse_query(
            "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
        )
        .unwrap();
        // This view groups by Month only and lacks Year — unusable; the
        // report should say why (C2: Plan_Id... actually Year residual).
        let v = ViewDef::new(
            "VM",
            parse_query("SELECT Month, SUM(Charge) AS S FROM Calls GROUP BY Month").unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        let reports = rewriter.explain(&q, &[v]).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_err());
    }

    #[test]
    fn duplicate_view_name_rejected() {
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id FROM Calls").unwrap();
        let v = ViewDef::new("Calls", parse_query("SELECT Plan_Id FROM Calls").unwrap());
        let rewriter = Rewriter::new(&cat);
        assert_eq!(
            rewriter.rewrite(&q, &[v]).unwrap_err(),
            RewriteError::DuplicateName("Calls".into())
        );
    }

    #[test]
    fn single_view_mode_stops_at_depth_one() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        let q = parse_query("SELECT A, C FROM R1, R2").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A FROM R1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT C FROM R2").unwrap());
        let opts = RewriteOptions {
            multi_view: false,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[va, vb]).unwrap();
        assert_eq!(rws.len(), 2);
        assert!(rws.iter().all(|r| r.views_used.len() == 1));
    }

    #[test]
    fn view_over_view_chains() {
        // VB is defined over VA; rewriting can chain through both.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = 3").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A, B FROM R1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT A FROM VA WHERE B = 3").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[va, vb]).unwrap();
        // {VA}, then {VA,VB} via mapping VB onto the VA occurrence.
        let sigs: BTreeSet<Vec<String>> =
            rws.iter().map(|r| r.views_used.clone()).collect();
        assert!(sigs.contains(&vec!["VA".to_string()]));
        assert!(sigs.contains(&vec!["VA".to_string(), "VB".to_string()]));
    }

    #[test]
    fn set_mode_rewriting_via_rewriter() {
        // Example 5.1 through the public API.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
            .unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = C").unwrap();
        let v = ViewDef::new(
            "V1",
            parse_query("SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C").unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
        let set_rw = rws.iter().find(|r| r.set_semantics).expect("set rewriting");
        assert_eq!(
            set_rw.query.to_string(),
            "SELECT V1.A1 FROM V1 WHERE V1.A1 = V1.A2"
        );
        // Without keys, no rewriting exists at all.
        let mut cat2 = Catalog::new();
        cat2.add_table(TableSchema::new("R1", ["A", "B", "C"])).unwrap();
        let rewriter2 = Rewriter::new(&cat2);
        assert!(rewriter2.rewrite(&q, &[v]).unwrap().is_empty());
    }

    #[test]
    fn paper_va_strategy_produces_aux_views() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
            .unwrap();
        cat.add_table(TableSchema::new("R2", ["E", "F"])).unwrap();
        let q = parse_query("SELECT A, SUM(E) FROM R1, R2 GROUP BY A").unwrap();
        let v = ViewDef::new(
            "V2",
            parse_query(
                "SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B",
            )
            .unwrap(),
        );
        let opts = RewriteOptions {
            strategy: Strategy::PaperFaithful,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        assert_eq!(rws.len(), 1);
        assert!(rws[0].used_paper_va);
        assert_eq!(rws[0].aux_views.len(), 1);
        // The aux view aliases its output columns.
        let aux = &rws[0].aux_views[0];
        assert_eq!(aux.query.output_names(), vec!["A", "cnt_va"]);
    }

    #[test]
    fn description_summarizes() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = 1").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        let d = rws[0].description();
        assert!(d.contains("uses [\"V\"]"), "{d}");
    }

    #[test]
    fn no_views_no_rewritings() {
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id FROM Calls").unwrap();
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter.rewrite(&q, &[]).unwrap().is_empty());
    }

    #[test]
    fn aggregation_view_rejected_for_conjunctive_query() {
        // Section 4.5 via the public API.
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id, Charge FROM Calls").unwrap();
        let v = ViewDef::new(
            "VC",
            parse_query(
                "SELECT Plan_Id, Charge, COUNT(Call_Id) AS N FROM Calls GROUP BY Plan_Id, Charge",
            )
            .unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap().is_empty());
        let reports = rewriter.explain(&q, &[v]).unwrap();
        assert_eq!(
            reports[0].outcome,
            Err(WhyNot::AggregationViewForConjunctiveQuery)
        );
    }

    #[test]
    fn max_rewritings_cap_respected() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT x.A, y.A, z.A FROM R1 x, R1 y, R1 z").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let opts = RewriteOptions {
            max_rewritings: 3,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        assert_eq!(rws.len(), 3);
    }
}
