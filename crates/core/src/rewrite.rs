//! The top-level rewriter and multi-view iteration — Section 3.2.
//!
//! [`Rewriter::rewrite`] finds **all** rewritings of a query using any
//! number of the given materialized views, by iterating single-view
//! substitutions: each successive rewriting treats previously incorporated
//! views as database tables. Theorem 3.2 guarantees that, for conjunctive
//! views with equality predicates, this iteration is sound, Church-Rosser
//! (order-independent) and complete. States are deduplicated by their
//! *application set* — which view was applied to which (provenance-labeled)
//! occurrences — which is exactly the invariant the Church-Rosser property
//! provides.
//!
//! Routing per candidate (query state, view):
//! * conjunctive view → Section 3 ([`crate::conjunctive`]),
//! * aggregation view + aggregation query → Section 4
//!   ([`crate::aggregate`]),
//! * aggregation view + conjunctive query → rejected (Section 4.5),
//! * conjunctive view + conjunctive query, both provably sets → Section 5
//!   many-to-1 mappings ([`crate::set_mode`]) in addition to the 1-1 ones.
//!
//! # Search architecture
//!
//! The BFS over states runs **level-synchronously**: all `(state, view)`
//! candidate evaluations of one depth level are independent (each reads
//! only its own state plus the immutable prepared views), so they are
//! fanned out across [`std::thread::scope`] workers — see
//! [`RewriteOptions::threads`]. Results are then reduced **in task order**
//! (state-major, view-major, mapping enumeration order), which is exactly
//! the order the sequential loop produces; the `seen` application-set
//! dedup, the output ordering, and the `max_rewritings` cut-off are applied
//! during that reduction, so the produced `Vec<Rewriting>` is byte-for-byte
//! identical for any thread count. Theorem 3.2's Church-Rosser property is
//! what makes the parallel exploration *complete* regardless of evaluation
//! order: states are identified by their application set, so every
//! interleaving of view applications converges to the same state set.
//!
//! Three per-level optimizations keep candidate evaluation cheap:
//! * a **prefilter index** ([`TableSignature`]) rejects `(state, view)`
//!   pairs whose per-relation occurrence counts already rule out any
//!   column mapping (a necessary condition for C1), before
//!   [`enumerate_mappings`] runs;
//! * **per-pair closure universes**: the closure a `(state, view)` task
//!   reasons over spans the state's columns and constants plus *that*
//!   view's constants only. Pooling every candidate view's constants into
//!   one shared universe (the obvious alternative) makes each closure
//!   `O(pool size)` wide and the whole level superlinear in the number of
//!   candidate views, yet enables no extra derivations: every implication
//!   checked for the pair only mentions the pair's own terms, and
//!   constant-to-constant order facts are derived directly from values;
//! * a **closure cache** ([`crate::ClosureCache`]) memoizes
//!   [`PredClosure::build`] keyed by `(conds, universe)`, shared across
//!   states, levels, and repeated `rewrite` calls on one [`Rewriter`].
//!
//! [`Rewriter::rewrite_with_stats`] reports counters and per-phase wall
//! times for all of the above as [`RewriteStats`].

use crate::aggregate::{rewrite_aggregate, VaMode};
use crate::canon::{Atom, CanonError, Canonical, Term};
use crate::closure::{ClosureCache, PredClosure};
use crate::conjunctive::{is_conjunctive, is_conjunctive_core, rewrite_conjunctive};
use crate::cost::{estimate_cost, TableStats};
use crate::expand::rewrite_expand;
use crate::explain::{CandidateMode, CandidateReport, WhyNot};
use crate::having::normalize_having;
use crate::mapping::{enumerate_mappings, Mapping, TableSignature};
use crate::set_mode::{result_is_set, rewrite_set_mode};
use aggview_catalog::{Catalog, SchemaSource};
use aggview_sql::ast::Query;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A materialized view: a name and its defining query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The view's name (how rewritten queries reference it).
    pub name: String,
    /// The defining query.
    pub query: Query,
}

impl ViewDef {
    /// Create a view definition.
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        ViewDef {
            name: name.into(),
            query,
        }
    }

    /// The view's output column names (see [`Query::output_names`]).
    pub fn output_names(&self) -> Vec<String> {
        self.query.output_names()
    }
}

/// Rewriting strategy for the Section 4 multiplicity machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Weighted aggregates (`SUM(N·A)` …) — always sound, no auxiliary
    /// views. The default.
    #[default]
    Weighted,
    /// The paper's `V^a` auxiliary-view construction where it is sound
    /// (see `DESIGN.md`), weighted aggregates otherwise.
    PaperFaithful,
}

/// Options controlling the rewriter.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Section 4 strategy.
    pub strategy: Strategy,
    /// Enable Section 5 many-to-1 rewritings (needs catalog keys).
    pub enable_set_mode: bool,
    /// Iterate to find multi-view rewritings (Section 3.2); otherwise only
    /// single-view rewritings are produced.
    pub multi_view: bool,
    /// Stop after this many rewritings.
    pub max_rewritings: usize,
    /// Maximum number of view applications per rewriting.
    pub max_depth: usize,
    /// Apply the Section 3.3 HAVING move-around normalization before
    /// checking usability (on by default; off only for ablation studies).
    pub normalize_having: bool,
    /// Enable the footnote-3 "expand" extension: answer *conjunctive*
    /// queries from aggregation views by joining with the interpreted
    /// `Nat` table on `Nat.k <= count`. Rewritings produced this way set
    /// [`Rewriting::requires_nat`] and need the `Nat` relation at
    /// execution time (`aggview::run::ensure_nat`).
    pub enable_expand: bool,
    /// Worker threads for frontier-level candidate evaluation. `None`
    /// (the default) uses [`std::thread::available_parallelism`];
    /// `Some(1)` runs fully sequentially. The produced rewritings are
    /// identical for every value (see the module docs).
    pub threads: Option<NonZeroUsize>,
    /// Consult the [`TableSignature`] index before enumerating mappings.
    /// On by default; turning it off is an ablation switch for tests and
    /// benchmarks — it never changes the produced rewritings.
    pub prefilter: bool,
    /// Memoize [`PredClosure`] builds in the rewriter's [`ClosureCache`].
    /// On by default; turning it off is an ablation switch that rebuilds
    /// every closure from scratch (the seed behaviour) — it never changes
    /// the produced rewritings.
    pub closure_cache: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            strategy: Strategy::Weighted,
            enable_set_mode: true,
            multi_view: true,
            max_rewritings: 64,
            max_depth: 8,
            normalize_having: true,
            enable_expand: false,
            threads: None,
            prefilter: true,
            closure_cache: true,
        }
    }
}

/// Counters and timings from one [`Rewriter::rewrite_with_stats`] call.
#[derive(Debug, Clone, Default)]
pub struct RewriteStats {
    /// States popped from the frontier and expanded.
    pub states_expanded: usize,
    /// `(state, view)` pairs rejected by the signature prefilter (or by
    /// mode routing) before mapping enumeration.
    pub candidates_prefiltered: usize,
    /// `(state, view)` pairs that reached mapping enumeration.
    pub candidates_attempted: usize,
    /// Total column mappings enumerated across all attempted pairs.
    pub mappings_enumerated: usize,
    /// Rewritings produced.
    pub rewritings: usize,
    /// Closure-cache hits during this call.
    pub closure_cache_hits: u64,
    /// Closure-cache misses during this call.
    pub closure_cache_misses: u64,
    /// Wall time spent canonicalizing the query and views.
    pub prepare_time: Duration,
    /// Wall time spent in the search itself.
    pub search_time: Duration,
    /// Worker threads used for candidate evaluation.
    pub threads: usize,
    /// Serving-layer plan-cache hits (the search and planning above were
    /// skipped entirely). Filled in by the session, not the search.
    pub plan_cache_hits: u64,
    /// Serving-layer plan-cache misses (this search ran).
    pub plan_cache_misses: u64,
    /// Serving-layer plan-cache entries invalidated by catalog or data
    /// changes since the session started.
    pub plan_cache_invalidations: u64,
    /// Is this session a handle on a shared concurrent store? When
    /// false, the `store_*` counters below are meaningless. Filled in by
    /// the session, not the search.
    pub store_attached: bool,
    /// Publish sequence number of the snapshot this query was served
    /// from (shared store only).
    pub store_epoch: u64,
    /// Schema epoch of that snapshot (DDL statements applied so far).
    pub store_schema_epoch: u64,
    /// Store-cumulative snapshots published.
    pub store_publishes: u64,
    /// Store-cumulative write batches applied.
    pub store_batches: u64,
    /// Store-cumulative write statements applied across all batches.
    pub store_batched_ops: u64,
    /// Largest write batch the store has applied.
    pub store_max_batch: u64,
}

impl RewriteStats {
    /// Closure-cache hits as a fraction of lookups (0.0 when none).
    pub fn closure_hit_rate(&self) -> f64 {
        let total = self.closure_cache_hits + self.closure_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.closure_cache_hits as f64 / total as f64
        }
    }

    /// Prefiltered pairs as a fraction of all candidate pairs (0.0 when
    /// none).
    pub fn prefilter_rate(&self) -> f64 {
        let total = self.candidates_prefiltered + self.candidates_attempted;
        if total == 0 {
            0.0
        } else {
            self.candidates_prefiltered as f64 / total as f64
        }
    }

    /// This search's counters as an observability section. The obs crate
    /// sits below core, so the conversion lives here.
    pub fn search_section(&self) -> aggview_obs::SearchSection {
        aggview_obs::SearchSection {
            states_expanded: self.states_expanded,
            candidates_prefiltered: self.candidates_prefiltered,
            candidates_attempted: self.candidates_attempted,
            mappings_enumerated: self.mappings_enumerated,
            rewritings: self.rewritings,
            closure_cache_hits: self.closure_cache_hits,
            closure_cache_misses: self.closure_cache_misses,
            prepare_ns: self.prepare_time.as_nanos().min(u64::MAX as u128) as u64,
            search_ns: self.search_time.as_nanos().min(u64::MAX as u128) as u64,
            threads: self.threads,
        }
    }

    /// The session plan-cache counters as an observability section.
    pub fn plan_cache_section(&self) -> aggview_obs::PlanCacheSection {
        aggview_obs::PlanCacheSection {
            hits: self.plan_cache_hits,
            misses: self.plan_cache_misses,
            invalidations: self.plan_cache_invalidations,
        }
    }

    /// The shared-store counters as an observability section.
    pub fn store_section(&self) -> aggview_obs::StoreSection {
        aggview_obs::StoreSection {
            attached: self.store_attached,
            epoch: self.store_epoch,
            schema_epoch: self.store_schema_epoch,
            publishes: self.store_publishes,
            batches: self.store_batches,
            batched_ops: self.store_batched_ops,
            max_batch: self.store_max_batch,
        }
    }

    /// Fold this search's counters and timings into a metrics registry:
    /// the per-search work counters become cumulative registry counters,
    /// and the prepare+search wall time is one observation in the
    /// `rewrite` stage histogram.
    pub fn record_into(&self, registry: &aggview_obs::MetricsRegistry) {
        use aggview_obs::CounterId as C;
        registry.add(C::RewriteStates, self.states_expanded as u64);
        registry.add(C::RewritePrefiltered, self.candidates_prefiltered as u64);
        registry.add(C::RewriteAttempted, self.candidates_attempted as u64);
        registry.add(C::RewriteMappings, self.mappings_enumerated as u64);
        registry.add(C::RewriteEmitted, self.rewritings as u64);
        registry.add(C::ClosureHits, self.closure_cache_hits);
        registry.add(C::ClosureMisses, self.closure_cache_misses);
        let total = self.prepare_time + self.search_time;
        registry.observe_ns(
            aggview_obs::Stage::Rewrite,
            total.as_nanos().min(u64::MAX as u128) as u64,
        );
    }

    /// A one-line human-readable summary (used by the CLI's `:stats`).
    /// Delegates to [`aggview_obs::SearchSection::summary`] — the single
    /// renderer shared with `ObsSnapshot`.
    pub fn summary(&self) -> String {
        self.search_section().summary()
    }

    /// One-line plan-cache summary (`hits/misses/invalidations` are
    /// session-cumulative, unlike the per-search counters above).
    pub fn plan_cache_summary(&self) -> String {
        self.plan_cache_section().summary()
    }

    /// Mean write statements per store batch (0.0 before the first).
    pub fn store_mean_batch(&self) -> f64 {
        self.store_section().mean_batch()
    }

    /// One-line shared-store summary: the snapshot this query read
    /// (publish epoch + schema epoch) and the store-cumulative publish /
    /// write-batch counters. Sessions that own their state report
    /// `store: none`.
    pub fn store_summary(&self) -> String {
        self.store_section().summary()
    }
}

/// A rewriting of the input query that uses one or more views.
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// The rewritten query (references views by name in its `FROM`).
    pub query: Query,
    /// Canonical form of the rewritten query.
    pub canonical: Canonical,
    /// Auxiliary views (`V^a`) to materialize, in order, before `query`.
    pub aux_views: Vec<ViewDef>,
    /// Names of the views used, in application order.
    pub views_used: Vec<String>,
    /// Whether the paper's `V^a` construction was used anywhere.
    pub used_paper_va: bool,
    /// Whether the rewriting relies on Section 5 set semantics (its
    /// guarantee is then set-equivalence; both sides are provably sets).
    pub set_semantics: bool,
    /// Whether the rewriting joins the interpreted `Nat` table (the
    /// footnote-3 expansion) — the executing database must contain it.
    pub requires_nat: bool,
}

impl Rewriting {
    /// A one-line human-readable summary of how this rewriting answers the
    /// query (used by the CLI and the examples).
    pub fn description(&self) -> String {
        let mut parts = vec![format!("uses {:?}", self.views_used)];
        if self.used_paper_va {
            parts.push("via the paper's V^a auxiliary view".to_string());
        }
        if !self.aux_views.is_empty() {
            parts.push(format!(
                "materializes {} auxiliary view(s)",
                self.aux_views.len()
            ));
        }
        if self.set_semantics {
            parts.push("set semantics (Section 5)".to_string());
        }
        if self.requires_nat {
            parts.push("requires the Nat table (footnote 3)".to_string());
        }
        parts.join("; ")
    }

    /// Estimated evaluation cost (main query plus auxiliary views).
    pub fn cost(&self, stats: &TableStats) -> f64 {
        let aux: f64 = self
            .aux_views
            .iter()
            .map(|v| estimate_cost(&v.query, stats))
            .sum();
        aux + estimate_cost(&self.query, stats)
    }
}

/// Errors from [`Rewriter::rewrite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The input query failed to canonicalize.
    Query(CanonError),
    /// A view definition failed to canonicalize.
    View {
        /// The offending view.
        view: String,
        /// The underlying error.
        error: CanonError,
    },
    /// Two views (or a view and a base table) share a name.
    DuplicateName(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Query(e) => write!(f, "query: {e}"),
            RewriteError::View { view, error } => write!(f, "view `{view}`: {error}"),
            RewriteError::DuplicateName(n) => write!(f, "duplicate relation name `{n}`"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// The rewriting engine.
pub struct Rewriter<'a> {
    catalog: &'a Catalog,
    options: RewriteOptions,
    /// `options.threads` resolved once at construction: on Linux,
    /// `available_parallelism()` re-reads cgroup limits on every call
    /// (several µs), which would dominate small searches.
    threads: usize,
    /// Memoized predicate closures, shared across states, levels, and
    /// repeated `rewrite` calls on this rewriter.
    closure_cache: ClosureCache,
}

struct PreparedView {
    name: String,
    canonical: Canonical,
    out_names: Vec<String>,
    conjunctive: bool,
    /// Conjunctive up to DISTINCT (eligible for Section 5 set semantics).
    conjunctive_core: bool,
    /// Non-DISTINCT aggregation view (Section 4 / footnote-3 routing).
    aggregation_view: bool,
    /// The view's result is provably a set (keys/FDs or DISTINCT).
    result_set: bool,
    /// Prefilter signature of the view's `FROM` list.
    signature: TableSignature,
    /// Constant terms in the view's conditions. The closure universe of a
    /// `(state, view)` candidate is the state's columns and constants plus
    /// *this* view's constants — constants of unrelated views would only
    /// inflate every closure (quadratically, on pools where each view
    /// carries its own constants) without enabling any new derivation.
    consts: Vec<Term>,
}

/// Per-state values hoisted out of the `(state × view)` candidate loop.
struct StateCtx {
    signature: TableSignature,
    is_aggregation: bool,
    /// Set-semantics eligibility of the state (conjunctive core *and*
    /// provably-set result); false when set mode is disabled.
    set_eligible: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApplyMode {
    /// Sections 3/4 multiset rewriting.
    Multiset,
    /// Section 5 set-semantics rewriting (many-to-1 mapping).
    SetSemantics,
    /// Footnote-3 expansion (conjunctive query, aggregation view).
    Expand,
}

struct State {
    canonical: Canonical,
    labels: Vec<String>,
    apps: BTreeSet<String>,
    aux: Vec<ViewDef>,
    used: Vec<String>,
    used_va: bool,
    set_semantics: bool,
    requires_nat: bool,
}

/// What one `(state, view)` task yields: the successor states its mappings
/// produce (in enumeration order) and how many mappings were enumerated.
type TaskOutcome = (Vec<State>, usize);

impl<'a> Rewriter<'a> {
    /// A rewriter with default options.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_options(catalog, RewriteOptions::default())
    }

    /// A rewriter with explicit options.
    pub fn with_options(catalog: &'a Catalog, options: RewriteOptions) -> Self {
        let threads = match options.threads {
            Some(n) => n.get(),
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        Rewriter {
            catalog,
            options,
            threads,
            closure_cache: ClosureCache::default(),
        }
    }

    /// The number of worker threads candidate evaluation will use.
    fn thread_count(&self) -> usize {
        self.threads
    }

    /// The active options.
    pub fn options(&self) -> &RewriteOptions {
        &self.options
    }

    fn prepare(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<(Canonical, Vec<PreparedView>), RewriteError> {
        // View schemas are visible to later views and to the query.
        let mut view_schemas: HashMap<String, Vec<String>> = HashMap::new();
        let mut prepared = Vec::with_capacity(views.len());
        for v in views {
            if self.catalog.table(&v.name).is_some() || view_schemas.contains_key(&v.name) {
                return Err(RewriteError::DuplicateName(v.name.clone()));
            }
            let schemas = Chain {
                first: &view_schemas,
                second: self.catalog,
            };
            let mut canonical =
                Canonical::from_query(&v.query, &schemas).map_err(|error| RewriteError::View {
                    view: v.name.clone(),
                    error,
                })?;
            if self.options.normalize_having {
                normalize_having(&mut canonical);
            }
            let out_names = v.output_names();
            view_schemas.insert(v.name.clone(), out_names.clone());
            let conjunctive = is_conjunctive(&canonical);
            let conjunctive_core = is_conjunctive_core(&canonical);
            // A DISTINCT view changes multiplicities and never enters the
            // multiset path; a non-DISTINCT, non-conjunctive view is an
            // aggregation view (Section 4 / footnote-3 routing).
            let aggregation_view = !conjunctive_core && !canonical.distinct;
            let result_set = self.options.enable_set_mode
                && conjunctive_core
                && result_is_set(&canonical, self.catalog);
            let signature = TableSignature::of(&canonical);
            let consts = const_terms_of(&canonical.conds);
            prepared.push(PreparedView {
                name: v.name.clone(),
                canonical,
                out_names,
                conjunctive,
                conjunctive_core,
                aggregation_view,
                result_set,
                signature,
                consts,
            });
        }
        let schemas = Chain {
            first: &view_schemas,
            second: self.catalog,
        };
        let mut q = Canonical::from_query(query, &schemas).map_err(RewriteError::Query)?;
        if self.options.normalize_having {
            normalize_having(&mut q);
        }
        Ok((q, prepared))
    }

    /// Find rewritings of `query` that use the given views. Returns every
    /// rewriting found (possibly none), up to the configured cap.
    pub fn rewrite(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<Vec<Rewriting>, RewriteError> {
        self.rewrite_with_stats(query, views).map(|(rws, _)| rws)
    }

    /// [`Rewriter::rewrite`], additionally reporting search counters and
    /// per-phase wall times.
    pub fn rewrite_with_stats(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<(Vec<Rewriting>, RewriteStats), RewriteError> {
        let mut stats = RewriteStats::default();
        let cache_before = self.closure_cache.stats();

        let t_prepare = Instant::now();
        let (root, prepared) = self.prepare(query, views)?;
        stats.prepare_time = t_prepare.elapsed();

        let t_search = Instant::now();
        let mut results: Vec<Rewriting> = Vec::new();
        let mut seen: HashSet<BTreeSet<String>> = HashSet::new();
        seen.insert(BTreeSet::new());
        let mut frontier: Vec<State> = vec![State {
            labels: (0..root.tables.len()).map(|i| format!("q{i}")).collect(),
            canonical: root,
            apps: BTreeSet::new(),
            aux: Vec::new(),
            used: Vec::new(),
            used_va: false,
            set_semantics: false,
            requires_nat: false,
        }];
        let threads = self.thread_count();

        // Level-synchronous BFS. The sequential formulation is a FIFO
        // queue, which processes states in exact level order and appends
        // children behind the current level — so taking the whole frontier,
        // evaluating its (state, view) tasks in any order, and reducing in
        // task order reproduces the sequential output byte for byte.
        'search: while !frontier.is_empty() {
            if results.len() >= self.options.max_rewritings {
                break;
            }
            // Expandable states of this level, with their constants and
            // per-state context. Closures are built per `(state, view)`
            // task (inside the workers): the universe of a pair is the
            // state's columns and constants plus that view's constants, so
            // closure cost is independent of the candidate-pool size.
            let mut expandable: Vec<(State, Vec<Term>, StateCtx)> = Vec::new();
            for state in std::mem::take(&mut frontier) {
                if state.apps.len() >= self.options.max_depth {
                    continue;
                }
                if !state.canonical.is_plain() {
                    continue; // terminal: derived aggregate forms
                }
                if !self.options.multi_view && !state.apps.is_empty() {
                    continue;
                }
                let state_consts = const_terms_of(&state.canonical.conds);
                let ctx = StateCtx {
                    signature: TableSignature::of(&state.canonical),
                    is_aggregation: state.canonical.is_aggregation_query(),
                    set_eligible: self.options.enable_set_mode
                        && is_conjunctive_core(&state.canonical)
                        && result_is_set(&state.canonical, self.catalog),
                };
                expandable.push((state, state_consts, ctx));
            }
            stats.states_expanded += expandable.len();

            // Prefilter: candidate (state, view) tasks whose signatures
            // admit at least one mapping on an eligible path.
            let mut tasks: Vec<(usize, usize)> = Vec::new();
            for (si, (_, _, ctx)) in expandable.iter().enumerate() {
                for (vi, view) in prepared.iter().enumerate() {
                    if self.candidate_admissible(ctx, view) {
                        tasks.push((si, vi));
                    } else {
                        stats.candidates_prefiltered += 1;
                    }
                }
            }
            stats.candidates_attempted += tasks.len();

            // Evaluate all tasks of the level; each yields the successor
            // states its mappings produce, in enumeration order.
            let outcomes: Vec<TaskOutcome> =
                self.evaluate_tasks(&tasks, &expandable, &prepared, threads);

            // Deterministic reduction in task order.
            for (produced, n_mappings) in outcomes {
                stats.mappings_enumerated += n_mappings;
                for next in produced {
                    if seen.insert(next.apps.clone()) {
                        results.push(Rewriting {
                            query: next.canonical.to_query(),
                            canonical: next.canonical.clone(),
                            aux_views: next.aux.clone(),
                            views_used: next.used.clone(),
                            used_paper_va: next.used_va,
                            set_semantics: next.set_semantics,
                            requires_nat: next.requires_nat,
                        });
                        if results.len() >= self.options.max_rewritings {
                            break 'search;
                        }
                        frontier.push(next);
                    }
                }
            }
        }
        stats.search_time = t_search.elapsed();
        let cache_after = self.closure_cache.stats();
        stats.closure_cache_hits = cache_after.hits - cache_before.hits;
        stats.closure_cache_misses = cache_after.misses - cache_before.misses;
        stats.rewritings = results.len();
        stats.threads = threads;
        Ok((results, stats))
    }

    /// Evaluate the level's tasks, across `threads` workers when the level
    /// is large enough to amortize the spawns. Each task builds (or fetches
    /// from the cache) the closure of its own `(state, view)` universe;
    /// `scratch` is a per-worker buffer so the universe Vec is not
    /// reallocated per task.
    fn evaluate_tasks(
        &self,
        tasks: &[(usize, usize)],
        expandable: &[(State, Vec<Term>, StateCtx)],
        prepared: &[PreparedView],
        threads: usize,
    ) -> Vec<TaskOutcome> {
        let eval = |&(si, vi): &(usize, usize), scratch: &mut Vec<Term>| -> TaskOutcome {
            let (state, state_consts, ctx) = &expandable[si];
            let view = &prepared[vi];
            scratch.clear();
            scratch.extend((0..state.canonical.n_cols()).map(Term::Col));
            scratch.extend(state_consts.iter().cloned());
            for t in &view.consts {
                if !scratch.contains(t) {
                    scratch.push(t.clone());
                }
            }
            let closure = if self.options.closure_cache {
                self.closure_cache
                    .get_or_build(&state.canonical.conds, scratch)
            } else {
                Arc::new(PredClosure::build(&state.canonical.conds, scratch))
            };
            let mappings = self.candidate_mappings(state, ctx, view, &closure);
            let n = mappings.len();
            let produced = mappings
                .into_iter()
                .filter_map(|(m, mode)| self.apply(state, view, &m, &closure, mode).ok())
                .collect();
            (produced, n)
        };

        // Below this many tasks the thread spawns cost more than the work
        // they distribute (BENCH_1.json: parallel eval is slower than
        // sequential up to ~4 candidate views), so small levels always run
        // sequentially.
        const SMALL_FRONTIER: usize = 4;
        let workers = if tasks.len() <= SMALL_FRONTIER {
            1
        } else {
            threads.min(tasks.len())
        };
        if workers <= 1 {
            let mut scratch = Vec::new();
            return tasks.iter().map(|t| eval(t, &mut scratch)).collect();
        }
        // Work-stealing over a shared atomic cursor; each worker tags its
        // outcomes with the task index so the merge restores task order.
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<TaskOutcome>> = (0..tasks.len()).map(|_| None).collect();
        let per_worker: Vec<Vec<(usize, TaskOutcome)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let eval = &eval;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let mut scratch = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks.len() {
                                break;
                            }
                            local.push((i, eval(&tasks[i], &mut scratch)));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, outcome) in per_worker.into_iter().flatten() {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|o| o.expect("task evaluated"))
            .collect()
    }

    /// The prefilter: could `(state, view)` produce any mapping on any
    /// eligible path? Signature checks are exact w.r.t. C1 (see
    /// [`TableSignature`]); with `prefilter` off, only mode eligibility is
    /// checked (which `candidate_mappings` would re-derive anyway).
    fn candidate_admissible(&self, ctx: &StateCtx, view: &PreparedView) -> bool {
        let one_to_one_path = view.conjunctive
            || (view.aggregation_view && (ctx.is_aggregation || self.options.enable_expand));
        let set_path = view.conjunctive_core && view.result_set && ctx.set_eligible;
        if !self.options.prefilter {
            return one_to_one_path || set_path;
        }
        (one_to_one_path && ctx.signature.admits_one_to_one(&view.signature))
            || (set_path && ctx.signature.admits_many_to_one(&view.signature))
    }

    /// All mappings to try for (state, view): 1-1 always; many-to-1 extras
    /// when Section 5 applies; expansion mappings when footnote 3 applies.
    fn candidate_mappings(
        &self,
        state: &State,
        ctx: &StateCtx,
        view: &PreparedView,
        closure: &PredClosure,
    ) -> Vec<(Mapping, ApplyMode)> {
        let mut out: Vec<(Mapping, ApplyMode)> = Vec::new();

        // Sections 3/4 multiset machinery: duplicate-preserving conjunctive
        // views work for any query; (non-DISTINCT) aggregation views for
        // aggregation queries. A DISTINCT view changes multiplicities and
        // never enters the multiset path. Section 4.5 leaves aggregation
        // view + conjunctive query to the footnote-3 expansion (opt-in).
        if view.conjunctive || (view.aggregation_view && ctx.is_aggregation) {
            // The entailment prune is the search-side copy of C3's first
            // half; the fault-injection flag must disable both copies or
            // the prune silently masks the injected bug.
            let prune = if crate::conjunctive::unsound_skip_c3() {
                None
            } else {
                Some(closure)
            };
            for m in enumerate_mappings(&view.canonical, &state.canonical, true, prune) {
                out.push((m, ApplyMode::Multiset));
            }
        } else if view.aggregation_view && !ctx.is_aggregation && self.options.enable_expand {
            for m in enumerate_mappings(&view.canonical, &state.canonical, true, Some(closure)) {
                out.push((m, ApplyMode::Expand));
            }
        }

        // Section 5 set semantics: conjunctive-core query and view, both
        // provably sets (keys/FDs, or DISTINCT by definition). Many-to-1
        // mappings always; 1-1 mappings too when the multiset path was
        // closed (DISTINCT views).
        if view.conjunctive_core && view.result_set && ctx.set_eligible {
            for m in enumerate_mappings(&view.canonical, &state.canonical, false, Some(closure)) {
                if !m.is_one_to_one() || !view.conjunctive {
                    out.push((m, ApplyMode::SetSemantics));
                }
            }
        }
        out
    }

    fn apply(
        &self,
        state: &State,
        view: &PreparedView,
        mapping: &Mapping,
        closure: &PredClosure,
        mode: ApplyMode,
    ) -> Result<State, WhyNot> {
        let app_label = {
            let mapped: Vec<&str> = mapping
                .occ_map
                .iter()
                .map(|&q| state.labels[q].as_str())
                .collect();
            format!("{}({})", view.name, mapped.join(","))
        };

        let mut aux = state.aux.clone();
        let mut used_va = state.used_va;
        let mut requires_nat = state.requires_nat;
        let canonical = if mode == ApplyMode::Expand {
            requires_nat = true;
            rewrite_expand(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
            )?
        } else if mode == ApplyMode::SetSemantics {
            rewrite_set_mode(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
                self.catalog,
            )?
        } else if view.conjunctive {
            rewrite_conjunctive(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
            )?
        } else {
            // Auxiliary-view names must be a pure function of the state so
            // that parallel and sequential evaluation produce identical
            // output: the application depth (apps strictly grows along a
            // branch) makes the name unique within a rewriting.
            let aux_name = format!("{}_va{}", view.name, state.apps.len() + 1);
            let mode = match self.options.strategy {
                Strategy::Weighted => VaMode::Weighted,
                Strategy::PaperFaithful => VaMode::PaperVa,
            };
            let out = rewrite_aggregate(
                &state.canonical,
                &view.canonical,
                &view.name,
                &view.out_names,
                mapping,
                closure,
                mode,
                &aux_name,
            )?;
            for (name, def, out_names) in &out.aux_views {
                let mut ast = def.to_query();
                for (item, n) in ast.select.iter_mut().zip(out_names) {
                    item.alias = Some(n.clone());
                }
                aux.push(ViewDef::new(name.clone(), ast));
            }
            used_va |= out.used_va;
            out.query
        };

        // Provenance labels for the new state: kept occurrences keep their
        // labels (in order); the view (or V^a) occurrence gets the
        // application label.
        let image = mapping.image_occs();
        let mut labels: Vec<String> = (0..state.canonical.tables.len())
            .filter(|i| !image.contains(i))
            .map(|i| state.labels[i].clone())
            .collect();
        labels.push(app_label.clone());
        if mode == ApplyMode::Expand {
            labels.push(format!("Nat:{app_label}"));
        }
        debug_assert_eq!(labels.len(), canonical.tables.len());

        let mut apps = state.apps.clone();
        apps.insert(app_label);
        let mut used = state.used.clone();
        used.push(view.name.clone());

        Ok(State {
            canonical,
            labels,
            apps,
            aux,
            used,
            used_va,
            set_semantics: state.set_semantics || mode == ApplyMode::SetSemantics,
            requires_nat,
        })
    }

    /// Explain, for each view, every candidate single-step mapping on the
    /// original query: the rewriting it yields or the condition it fails.
    pub fn explain(
        &self,
        query: &Query,
        views: &[ViewDef],
    ) -> Result<Vec<CandidateReport>, RewriteError> {
        let (root, prepared) = self.prepare(query, views)?;
        let const_universe = collect_const_terms(&root, &prepared);
        let mut universe: Vec<Term> = (0..root.tables.len())
            .flat_map(|i| root.tables[i].cols())
            .map(Term::Col)
            .collect();
        universe.extend(const_universe);
        let closure = self.closure_cache.get_or_build(&root.conds, &universe);
        let state = State {
            labels: (0..root.tables.len()).map(|i| format!("q{i}")).collect(),
            canonical: root,
            apps: BTreeSet::new(),
            aux: Vec::new(),
            used: Vec::new(),
            used_va: false,
            set_semantics: false,
            requires_nat: false,
        };

        let mut reports = Vec::new();
        for view in &prepared {
            let aggregation_view = view.aggregation_view;
            let conjunctive_query = !state.canonical.is_aggregation_query();
            if aggregation_view && conjunctive_query && !self.options.enable_expand {
                reports.push(CandidateReport {
                    view: view.name.clone(),
                    mapping: None,
                    mode: CandidateMode::Multiset,
                    outcome: Err(WhyNot::AggregationViewForConjunctiveQuery),
                });
                continue;
            }
            // Unpruned enumeration so failures are reported per mapping.
            let one_to_one = enumerate_mappings(&view.canonical, &state.canonical, true, None);
            let mode = if aggregation_view && conjunctive_query {
                ApplyMode::Expand
            } else {
                ApplyMode::Multiset
            };
            let mut any = false;
            if view.conjunctive || aggregation_view {
                for m in &one_to_one {
                    any = true;
                    let outcome = self
                        .apply(&state, view, m, &closure, mode)
                        .map(|s| s.canonical.to_query().to_string());
                    reports.push(CandidateReport {
                        view: view.name.clone(),
                        mapping: Some(m.occ_map.clone()),
                        mode: match mode {
                            ApplyMode::Expand => CandidateMode::Expand,
                            _ => CandidateMode::Multiset,
                        },
                        outcome,
                    });
                }
            }
            // Section 5 candidates (many-to-1; 1-1 too for DISTINCT views).
            if self.options.enable_set_mode
                && view.conjunctive_core
                && is_conjunctive_core(&state.canonical)
            {
                for m in enumerate_mappings(&view.canonical, &state.canonical, false, None) {
                    if m.is_one_to_one() && view.conjunctive {
                        continue; // already reported on the multiset path
                    }
                    any = true;
                    let outcome = self
                        .apply(&state, view, &m, &closure, ApplyMode::SetSemantics)
                        .map(|s| s.canonical.to_query().to_string());
                    reports.push(CandidateReport {
                        view: view.name.clone(),
                        mapping: Some(m.occ_map.clone()),
                        mode: CandidateMode::SetSemantics,
                        outcome,
                    });
                }
            }
            if !any {
                reports.push(CandidateReport {
                    view: view.name.clone(),
                    mapping: None,
                    mode: CandidateMode::Multiset,
                    outcome: Err(WhyNot::NoColumnMapping),
                });
            }
        }
        Ok(reports)
    }
}

fn collect_const_terms(root: &Canonical, views: &[PreparedView]) -> Vec<Term> {
    let mut consts = const_terms_of(&root.conds);
    for v in views {
        for t in &v.consts {
            if !consts.contains(t) {
                consts.push(t.clone());
            }
        }
    }
    consts
}

/// The distinct constant terms mentioned in `conds`, in first-appearance
/// order.
fn const_terms_of(conds: &[Atom]) -> Vec<Term> {
    let mut consts: Vec<Term> = Vec::new();
    let mut push = |t: &Term| {
        if matches!(t, Term::Const(_)) && !consts.contains(t) {
            consts.push(t.clone());
        }
    };
    for a in conds {
        push(&a.lhs);
        push(&a.rhs);
    }
    consts
}

/// Schema chaining: view outputs first, catalog second.
struct Chain<'a> {
    first: &'a HashMap<String, Vec<String>>,
    second: &'a Catalog,
}

impl SchemaSource for Chain<'_> {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.first
            .get(name)
            .cloned()
            .or_else(|| self.second.table_columns(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::TableSchema;
    use aggview_sql::parse_query;

    fn telephony_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new("Calling_Plans", ["Plan_Id", "Plan_Name"]).with_key(["Plan_Id"]),
        )
        .unwrap();
        cat.add_table(
            TableSchema::new(
                "Calls",
                [
                    "Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge",
                ],
            )
            .with_key(["Call_Id"]),
        )
        .unwrap();
        cat
    }

    fn v1() -> ViewDef {
        ViewDef::new(
            "V1",
            parse_query(
                "SELECT Calls.Plan_Id, Plan_Name, Month, Year, \
                 SUM(Charge) AS Monthly_Earnings \
                 FROM Calls, Calling_Plans \
                 WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
                 GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
            )
            .unwrap(),
        )
    }

    #[test]
    fn example_1_1_motivating() {
        // The paper's motivating example, end to end.
        let cat = telephony_catalog();
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name \
             HAVING SUM(Charge) < 1000000",
        )
        .unwrap();
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v1()]).unwrap();
        assert_eq!(rws.len(), 1);
        let rw = &rws[0];
        assert_eq!(rw.views_used, vec!["V1"]);
        assert!(rw.aux_views.is_empty());
        assert_eq!(
            rw.query.to_string(),
            "SELECT V1.Plan_Id, V1.Plan_Name, SUM(V1.Monthly_Earnings) FROM V1 \
             WHERE V1.Year = 1995 GROUP BY V1.Plan_Id, V1.Plan_Name \
             HAVING SUM(V1.Monthly_Earnings) < 1000000"
        );
    }

    #[test]
    fn view_must_not_cover_the_query_conditions_it_lacks() {
        // A view missing the join condition is unusable.
        let cat = telephony_catalog();
        let bad_view = ViewDef::new(
            "B",
            parse_query(
                "SELECT Calls.Plan_Id, Plan_Name, Year, SUM(Charge) AS S \
                 FROM Calls, Calling_Plans \
                 WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1994 \
                 GROUP BY Calls.Plan_Id, Plan_Name, Year",
            )
            .unwrap(),
        );
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name",
        )
        .unwrap();
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter.rewrite(&q, &[bad_view]).unwrap().is_empty());
    }

    #[test]
    fn multiple_views_iterate_in_any_order() {
        // Two conjunctive views covering disjoint parts of the query;
        // iteration must find the combined rewriting regardless of order.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        let q = parse_query("SELECT A, C FROM R1, R2 WHERE B = 1 AND D = 2").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A FROM R1 WHERE B = 1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT C FROM R2 WHERE D = 2").unwrap());
        let rewriter = Rewriter::new(&cat);
        let order1 = rewriter.rewrite(&q, &[va.clone(), vb.clone()]).unwrap();
        let order2 = rewriter.rewrite(&q, &[vb, va]).unwrap();
        // Three rewritings each: {VA}, {VB}, {VA,VB}.
        assert_eq!(order1.len(), 3);
        assert_eq!(order2.len(), 3);
        let sigs = |rws: &[Rewriting]| -> BTreeSet<BTreeSet<String>> {
            rws.iter()
                .map(|r| r.views_used.iter().cloned().collect())
                .collect()
        };
        assert_eq!(sigs(&order1), sigs(&order2));
        // The two-view rewriting mentions both views and no base tables.
        let combined = order1
            .iter()
            .find(|r| r.views_used.len() == 2)
            .expect("combined rewriting");
        assert!(combined
            .query
            .from
            .iter()
            .all(|t| t.table == "VA" || t.table == "VB"));
    }

    #[test]
    fn same_view_used_twice() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.B").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        // V can replace x, y, or both (both assignments of a single
        // replacement are distinct apps; the double use collapses to one
        // canonical app set per pairing).
        let double = rws
            .iter()
            .filter(|r| r.views_used.len() == 2)
            .collect::<Vec<_>>();
        assert!(!double.is_empty());
        for r in &double {
            assert!(r.query.from.iter().all(|t| t.table == "V"));
        }
    }

    #[test]
    fn explain_reports_reasons() {
        let cat = telephony_catalog();
        let q = parse_query(
            "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
        )
        .unwrap();
        // This view groups by Month only and lacks Year — unusable; the
        // report should say why (C2: Plan_Id... actually Year residual).
        let v = ViewDef::new(
            "VM",
            parse_query("SELECT Month, SUM(Charge) AS S FROM Calls GROUP BY Month").unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        let reports = rewriter.explain(&q, &[v]).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_err());
    }

    #[test]
    fn duplicate_view_name_rejected() {
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id FROM Calls").unwrap();
        let v = ViewDef::new("Calls", parse_query("SELECT Plan_Id FROM Calls").unwrap());
        let rewriter = Rewriter::new(&cat);
        assert_eq!(
            rewriter.rewrite(&q, &[v]).unwrap_err(),
            RewriteError::DuplicateName("Calls".into())
        );
    }

    #[test]
    fn single_view_mode_stops_at_depth_one() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        let q = parse_query("SELECT A, C FROM R1, R2").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A FROM R1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT C FROM R2").unwrap());
        let opts = RewriteOptions {
            multi_view: false,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[va, vb]).unwrap();
        assert_eq!(rws.len(), 2);
        assert!(rws.iter().all(|r| r.views_used.len() == 1));
    }

    #[test]
    fn view_over_view_chains() {
        // VB is defined over VA; rewriting can chain through both.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = 3").unwrap();
        let va = ViewDef::new("VA", parse_query("SELECT A, B FROM R1").unwrap());
        let vb = ViewDef::new("VB", parse_query("SELECT A FROM VA WHERE B = 3").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[va, vb]).unwrap();
        // {VA}, then {VA,VB} via mapping VB onto the VA occurrence.
        let sigs: BTreeSet<Vec<String>> = rws.iter().map(|r| r.views_used.clone()).collect();
        assert!(sigs.contains(&vec!["VA".to_string()]));
        assert!(sigs.contains(&vec!["VA".to_string(), "VB".to_string()]));
    }

    #[test]
    fn set_mode_rewriting_via_rewriter() {
        // Example 5.1 through the public API.
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
            .unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = C").unwrap();
        let v = ViewDef::new(
            "V1",
            parse_query("SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C").unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, std::slice::from_ref(&v)).unwrap();
        let set_rw = rws.iter().find(|r| r.set_semantics).expect("set rewriting");
        assert_eq!(
            set_rw.query.to_string(),
            "SELECT V1.A1 FROM V1 WHERE V1.A1 = V1.A2"
        );
        // Without keys, no rewriting exists at all.
        let mut cat2 = Catalog::new();
        cat2.add_table(TableSchema::new("R1", ["A", "B", "C"]))
            .unwrap();
        let rewriter2 = Rewriter::new(&cat2);
        assert!(rewriter2.rewrite(&q, &[v]).unwrap().is_empty());
    }

    #[test]
    fn paper_va_strategy_produces_aux_views() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
            .unwrap();
        cat.add_table(TableSchema::new("R2", ["E", "F"])).unwrap();
        let q = parse_query("SELECT A, SUM(E) FROM R1, R2 GROUP BY A").unwrap();
        let v = ViewDef::new(
            "V2",
            parse_query("SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B").unwrap(),
        );
        let opts = RewriteOptions {
            strategy: Strategy::PaperFaithful,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        assert_eq!(rws.len(), 1);
        assert!(rws[0].used_paper_va);
        assert_eq!(rws[0].aux_views.len(), 1);
        // The aux view aliases its output columns.
        let aux = &rws[0].aux_views[0];
        assert_eq!(aux.query.output_names(), vec!["A", "cnt_va"]);
    }

    #[test]
    fn description_summarizes() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT A FROM R1 WHERE B = 1").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let rewriter = Rewriter::new(&cat);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        let d = rws[0].description();
        assert!(d.contains("uses [\"V\"]"), "{d}");
    }

    #[test]
    fn no_views_no_rewritings() {
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id FROM Calls").unwrap();
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter.rewrite(&q, &[]).unwrap().is_empty());
    }

    #[test]
    fn aggregation_view_rejected_for_conjunctive_query() {
        // Section 4.5 via the public API.
        let cat = telephony_catalog();
        let q = parse_query("SELECT Plan_Id, Charge FROM Calls").unwrap();
        let v = ViewDef::new(
            "VC",
            parse_query(
                "SELECT Plan_Id, Charge, COUNT(Call_Id) AS N FROM Calls GROUP BY Plan_Id, Charge",
            )
            .unwrap(),
        );
        let rewriter = Rewriter::new(&cat);
        assert!(rewriter
            .rewrite(&q, std::slice::from_ref(&v))
            .unwrap()
            .is_empty());
        let reports = rewriter.explain(&q, &[v]).unwrap();
        assert_eq!(
            reports[0].outcome,
            Err(WhyNot::AggregationViewForConjunctiveQuery)
        );
    }

    #[test]
    fn max_rewritings_cap_respected() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        let q = parse_query("SELECT x.A, y.A, z.A FROM R1 x, R1 y, R1 z").unwrap();
        let v = ViewDef::new("V", parse_query("SELECT A, B FROM R1").unwrap());
        let opts = RewriteOptions {
            max_rewritings: 3,
            ..RewriteOptions::default()
        };
        let rewriter = Rewriter::with_options(&cat, opts);
        let rws = rewriter.rewrite(&q, &[v]).unwrap();
        assert_eq!(rws.len(), 3);
    }
}
