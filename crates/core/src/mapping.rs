//! Column mappings (Definition 2.1) and their enumeration.
//!
//! A column mapping φ from view `V` to query `Q` maps every `FROM`
//! occurrence of `V` to an occurrence of `Q` over the *same base table*,
//! carrying columns positionally. Condition C1 requires φ to be 1-1
//! (distinct view occurrences map to distinct query occurrences); Section 5
//! relaxes this to many-to-1 under set semantics.
//!
//! Enumeration is a backtracking search over occurrence assignments with an
//! optional semantic pruning hook: a partial assignment is abandoned as
//! soon as a fully-mapped view condition atom is *not* entailed by
//! `Conds(Q)` — mapped view conditions must be entailed in any usable
//! rewriting (the first half of condition C3), so this prunes without
//! losing completeness.

use crate::canon::{Atom, Canonical, ColId, Term};
use crate::closure::PredClosure;
use std::collections::BTreeMap;

/// Per-relation occurrence counts of a query or view `FROM` list — the
/// cheap necessary condition for condition C1 used by the rewriter's
/// candidate prefilter.
///
/// [`enumerate_mappings`] builds, for every view occurrence, the list of
/// query occurrences over the same `(base, arity)` pair; the search finds
/// nothing when any list is empty, and under C1 (1-1) it additionally finds
/// nothing when a relation has more view occurrences than query occurrences
/// (pigeonhole). Both facts depend only on these counts, so comparing
/// signatures rejects exactly the `(query, view)` pairs whose enumeration
/// would return no mapping for structural reasons — the prefilter can never
/// lose a rewriting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableSignature {
    counts: BTreeMap<(String, usize), usize>,
}

impl TableSignature {
    /// The signature of a canonical query's `FROM` list.
    pub fn of(c: &Canonical) -> Self {
        let mut counts = BTreeMap::new();
        for t in &c.tables {
            *counts.entry((t.base.clone(), t.arity)).or_insert(0) += 1;
        }
        TableSignature { counts }
    }

    /// Could a 1-1 (condition C1) mapping from a view with signature
    /// `view` into this query exist? Requires every view relation to occur
    /// in the query at least as many times.
    pub fn admits_one_to_one(&self, view: &TableSignature) -> bool {
        view.counts
            .iter()
            .all(|(k, &n)| self.counts.get(k).is_some_and(|&m| m >= n))
    }

    /// Could a many-to-1 (Section 5) mapping from a view with signature
    /// `view` into this query exist? Requires every view relation to occur
    /// in the query at least once.
    pub fn admits_many_to_one(&self, view: &TableSignature) -> bool {
        view.counts.keys().all(|k| self.counts.contains_key(k))
    }
}

/// A column mapping φ, represented by its occurrence assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// `occ_map[v]` = the query occurrence that view occurrence `v` maps to.
    pub occ_map: Vec<usize>,
}

impl Mapping {
    /// Is this mapping 1-1 on occurrences?
    pub fn is_one_to_one(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.occ_map.iter().all(|&q| seen.insert(q))
    }

    /// φ applied to a view column.
    pub fn map_col(&self, view: &Canonical, query: &Canonical, vcol: ColId) -> ColId {
        let info = &view.columns[vcol];
        query.col_of(self.occ_map[info.occ], info.pos)
    }

    /// φ applied to a term.
    pub fn map_term(&self, view: &Canonical, query: &Canonical, t: &Term) -> Term {
        match t {
            Term::Col(c) => Term::Col(self.map_col(view, query, *c)),
            Term::Const(l) => Term::Const(l.clone()),
        }
    }

    /// φ applied to an atom.
    pub fn map_atom(&self, view: &Canonical, query: &Canonical, a: &Atom) -> Atom {
        Atom::new(
            self.map_term(view, query, &a.lhs),
            a.op,
            self.map_term(view, query, &a.rhs),
        )
    }

    /// The set of query occurrences in the image of φ.
    pub fn image_occs(&self) -> std::collections::HashSet<usize> {
        self.occ_map.iter().copied().collect()
    }

    /// The set of query columns in φ(Cols(V)).
    pub fn image_cols(&self, query: &Canonical) -> Vec<bool> {
        let mut image = vec![false; query.n_cols()];
        for &qocc in &self.occ_map {
            for c in query.tables[qocc].cols() {
                image[c] = true;
            }
        }
        image
    }
}

/// Enumerate the column mappings from `view` to `query`.
///
/// `one_to_one` selects condition C1 (true) or the Section 5 relaxation
/// (false). `prune` supplies the closure of `Conds(Q)`; when given, partial
/// assignments whose fully-mapped view atoms are not entailed are cut.
pub fn enumerate_mappings(
    view: &Canonical,
    query: &Canonical,
    one_to_one: bool,
    prune: Option<&PredClosure>,
) -> Vec<Mapping> {
    let nv = view.tables.len();
    // Candidate query occurrences per view occurrence.
    let candidates: Vec<Vec<usize>> = view
        .tables
        .iter()
        .map(|vt| {
            query
                .tables
                .iter()
                .enumerate()
                .filter(|(_, qt)| qt.base == vt.base && qt.arity == vt.arity)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    if candidates.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }

    // Index view atoms by the highest view occurrence they mention, so each
    // atom is checked exactly once — when its last occurrence is assigned.
    // Atoms mentioning no view column (constant-constant) are checked up
    // front.
    let mut atoms_by_last: Vec<Vec<&Atom>> = vec![Vec::new(); nv];
    for a in &view.conds {
        let mut last: Option<usize> = None;
        for t in [&a.lhs, &a.rhs] {
            if let Term::Col(c) = t {
                let occ = view.columns[*c].occ;
                last = Some(last.map_or(occ, |l: usize| l.max(occ)));
            }
        }
        match last {
            Some(occ) => atoms_by_last[occ].push(a),
            None => {
                if let Some(cl) = prune {
                    if !cl.implies_atom(a) {
                        return Vec::new();
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut assignment = vec![usize::MAX; nv];
    let mut used = vec![false; query.tables.len()];
    search(
        0,
        &mut assignment,
        &mut used,
        &candidates,
        &atoms_by_last,
        view,
        query,
        one_to_one,
        prune,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn search(
    v: usize,
    assignment: &mut Vec<usize>,
    used: &mut Vec<bool>,
    candidates: &[Vec<usize>],
    atoms_by_last: &[Vec<&Atom>],
    view: &Canonical,
    query: &Canonical,
    one_to_one: bool,
    prune: Option<&PredClosure>,
    out: &mut Vec<Mapping>,
) {
    if v == candidates.len() {
        out.push(Mapping {
            occ_map: assignment.clone(),
        });
        return;
    }
    for &q in &candidates[v] {
        if one_to_one && used[q] {
            continue;
        }
        assignment[v] = q;
        // Semantic pruning: atoms fully mapped by now must be entailed.
        let ok = match prune {
            None => true,
            Some(cl) => {
                let partial = Mapping {
                    occ_map: assignment[..=v].to_vec(),
                };
                atoms_by_last[v].iter().all(|a| {
                    // Safe: every column of `a` lives in occurrences ≤ v.
                    cl.implies_atom(&map_prefix_atom(&partial, view, query, a))
                })
            }
        };
        if ok {
            used[q] = true;
            search(
                v + 1,
                assignment,
                used,
                candidates,
                atoms_by_last,
                view,
                query,
                one_to_one,
                prune,
                out,
            );
            used[q] = false;
        }
        assignment[v] = usize::MAX;
    }
}

fn map_prefix_atom(prefix: &Mapping, view: &Canonical, query: &Canonical, a: &Atom) -> Atom {
    let map_term = |t: &Term| match t {
        Term::Col(c) => {
            let info = &view.columns[*c];
            Term::Col(query.col_of(prefix.occ_map[info.occ], info.pos))
        }
        Term::Const(l) => Term::Const(l.clone()),
    };
    Atom::new(map_term(&a.lhs), a.op, map_term(&a.rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn single_table_mapping() {
        let q = canon("SELECT A FROM R1, R2");
        let v = canon("SELECT A FROM R1");
        let ms = enumerate_mappings(&v, &q, true, None);
        assert_eq!(ms, vec![Mapping { occ_map: vec![0] }]);
        assert_eq!(ms[0].map_col(&v, &q, 0), 0);
        assert_eq!(ms[0].map_col(&v, &q, 1), 1);
    }

    #[test]
    fn no_mapping_when_base_missing() {
        let q = canon("SELECT A FROM R1");
        let v = canon("SELECT C FROM R2");
        assert!(enumerate_mappings(&v, &q, true, None).is_empty());
    }

    #[test]
    fn self_join_enumerates_permutations() {
        let q = canon("SELECT x.A FROM R1 x, R1 y");
        let v = canon("SELECT u.A FROM R1 u, R1 w");
        let ms = enumerate_mappings(&v, &q, true, None);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Mapping {
            occ_map: vec![0, 1]
        }));
        assert!(ms.contains(&Mapping {
            occ_map: vec![1, 0]
        }));
        assert!(ms.iter().all(|m| m.is_one_to_one()));
    }

    #[test]
    fn many_to_one_allows_collapsing() {
        let q = canon("SELECT A FROM R1");
        let v = canon("SELECT u.A FROM R1 u, R1 w");
        assert!(enumerate_mappings(&v, &q, true, None).is_empty());
        let ms = enumerate_mappings(&v, &q, false, None);
        assert_eq!(
            ms,
            vec![Mapping {
                occ_map: vec![0, 0]
            }]
        );
        assert!(!ms[0].is_one_to_one());
    }

    #[test]
    fn pruning_rejects_unentailed_view_conditions() {
        let q = canon("SELECT A FROM R1, R2 WHERE A = C");
        let v_ok = canon("SELECT A FROM R1, R2 WHERE A = C");
        let v_bad = canon("SELECT A FROM R1, R2 WHERE B = D");
        let universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        let cl = PredClosure::build(&q.conds, &universe);
        assert_eq!(enumerate_mappings(&v_ok, &q, true, Some(&cl)).len(), 1);
        assert!(enumerate_mappings(&v_bad, &q, true, Some(&cl)).is_empty());
        // Without pruning the structural mapping still exists.
        assert_eq!(enumerate_mappings(&v_bad, &q, true, None).len(), 1);
    }

    #[test]
    fn image_cols_marks_mapped_occurrences() {
        let q = canon("SELECT A FROM R1, R2");
        let v = canon("SELECT C FROM R2");
        let ms = enumerate_mappings(&v, &q, true, None);
        let image = ms[0].image_cols(&q);
        assert_eq!(image, vec![false, false, true, true]);
    }

    #[test]
    fn signature_agrees_with_enumeration_emptiness() {
        // For every (query, view) pair here, the signature verdict must
        // match "enumerate_mappings found something" whenever enumeration
        // runs without semantic pruning.
        let shapes = [
            "SELECT A FROM R1",
            "SELECT A FROM R1, R2",
            "SELECT x.A FROM R1 x, R1 y",
            "SELECT x.A FROM R1 x, R1 y, R2",
            "SELECT C FROM R2",
        ];
        for qs in &shapes {
            for vs in &shapes {
                let q = canon(qs);
                let v = canon(vs);
                let (sq, sv) = (TableSignature::of(&q), TableSignature::of(&v));
                let one = !enumerate_mappings(&v, &q, true, None).is_empty();
                let many = !enumerate_mappings(&v, &q, false, None).is_empty();
                assert_eq!(sq.admits_one_to_one(&sv), one, "1-1 {vs} into {qs}");
                assert_eq!(sq.admits_many_to_one(&sv), many, "m-1 {vs} into {qs}");
            }
        }
    }

    #[test]
    fn map_atom_carries_constants() {
        let q = canon("SELECT A FROM R1, R2");
        let v = canon("SELECT A FROM R1 WHERE B = 5");
        let ms = enumerate_mappings(&v, &q, true, None);
        let mapped = ms[0].map_atom(&v, &q, &v.conds[0]);
        assert_eq!(
            mapped,
            Atom::new(
                Term::Col(1),
                aggview_sql::CmpOp::Eq,
                Term::Const(aggview_sql::Literal::Int(5))
            )
        );
    }
}
