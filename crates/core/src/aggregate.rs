//! Aggregation queries and aggregation views — Section 4 of the paper.
//!
//! When the view itself has grouping and aggregation, two new difficulties
//! arise (Section 4's intuition): an aggregated column is *partially
//! projected out* (only its aggregate survives), and the `GROUP BY`
//! *loses tuple multiplicities*. The conditions become:
//!
//! * **C2'** — grouping columns of `Q` in φ's image must be exposed as
//!   *non-aggregation* view outputs (`ColSel(V)`),
//! * **C3'** — as C3, but `Conds'` may additionally not constrain
//!   `φ(AggSel(V))` (aggregated-away columns are not available),
//! * **C4'** — each query aggregate must be computable: either the view
//!   exposes the same aggregate (coalescing subgroups — Example 4.1 /
//!   Example 1.1), or the raw column plus a `COUNT` column that recovers
//!   the lost multiplicities (Example 4.2), with `SUM`/`COUNT` always
//!   requiring a `COUNT` column when multiplicities matter.
//!
//! Two rewriting strategies are provided (see `DESIGN.md` for the analysis,
//! including the over-counting pitfall in the paper's printed step S5'):
//!
//! * [`VaMode::Weighted`] — always-sound weighted aggregates:
//!   `SUM(A) ↦ SUM(N·A)`, `COUNT(A) ↦ SUM(N)`, `AVG(A) ↦ SUM(N·A)/SUM(N)`.
//! * [`VaMode::PaperVa`] — the paper's auxiliary-view construction
//!   (steps S4'-1(b) and S5'): build `V^a` by summing the view's `COUNT`
//!   column over `QV_Groups`, then scale (`Cnt_V^a · AGG(A)`). Applied only
//!   when the view occurrence can be *pruned* in favour of `V^a` (the
//!   condition under which the construction is multiset-correct); falls
//!   back to the weighted form otherwise.
//!
//! Section 4.4 (AVG) uses the SUM/COUNT/AVG identities; Section 4.5 (an
//! aggregation view can never answer a conjunctive query) is enforced by
//! the caller routing in [`crate::rewrite`].

use crate::canon::{AggExpr, AggSpec, Atom, Canonical, ColId, GAtom, GTerm, SelItem, Term};
use crate::closure::PredClosure;
use crate::conjunctive::derive_residual;
use crate::explain::WhyNot;
use crate::frame::Frame;
use crate::mapping::Mapping;
use aggview_sql::ast::AggFunc;
use std::collections::{HashMap, HashSet};

/// Which Section 4 rewriting strategy to use for multiplicity recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VaMode {
    /// Weighted aggregates (`SUM(N·A)` etc.) — always sound.
    #[default]
    Weighted,
    /// The paper's `V^a` auxiliary view where soundly applicable
    /// (single weighted aggregate, view occurrence prunable); weighted
    /// otherwise.
    PaperVa,
}

/// Result of an aggregation-view rewriting.
#[derive(Debug, Clone)]
pub struct AggRewrite {
    /// The rewritten query.
    pub query: Canonical,
    /// Auxiliary view definitions (`V^a`), to be materialized before the
    /// query: `(name, definition-over-the-view, output column names)`.
    pub aux_views: Vec<(String, Canonical, Vec<String>)>,
    /// Whether the paper's `V^a` construction was used.
    pub used_va: bool,
}

/// Abstract per-aggregate plan (phase 1: feasibility; materialized against
/// the frame in phase 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Plan {
    /// `AGG(view_col)` — same aggregate exposed by the view (S4'-1(a)),
    /// or MIN/MAX over an exposed raw column, or `COUNT ↦ SUM(N)`.
    ViewAgg { func: AggFunc, sel_idx: usize },
    /// MIN/MAX/plain over a column outside the image (left unchanged).
    External { func: AggFunc, col: Option<ColId> },
    /// `SUM(N · B)` with both from the view.
    WeightedView { count_idx: usize, val_idx: usize },
    /// `SUM(N · A)` with `A` outside the image.
    WeightedExt { count_idx: usize, col: ColId },
    /// `SUM(num)/SUM(den)` over two view aggregate outputs (AVG).
    Ratio { num_idx: usize, den_idx: usize },
    /// `SUM(N·B)/SUM(N)` with both from the view (AVG).
    WeightedAvgView { count_idx: usize, val_idx: usize },
    /// `SUM(N·A)/SUM(N)` with `A` outside the image (AVG).
    WeightedAvgExt { count_idx: usize, col: ColId },
}

impl Plan {
    /// View SELECT positions this plan reads.
    fn view_idxs(&self) -> Vec<usize> {
        match self {
            Plan::ViewAgg { sel_idx, .. } => vec![*sel_idx],
            Plan::External { .. } => vec![],
            Plan::WeightedView { count_idx, val_idx }
            | Plan::WeightedAvgView { count_idx, val_idx } => vec![*count_idx, *val_idx],
            Plan::WeightedExt { count_idx, .. } | Plan::WeightedAvgExt { count_idx, .. } => {
                vec![*count_idx]
            }
            Plan::Ratio { num_idx, den_idx } => vec![*num_idx, *den_idx],
        }
    }

    /// Does this plan need the multiplicity weighting that the paper's
    /// `V^a` construction replaces?
    fn is_weighted_sum(&self) -> bool {
        matches!(self, Plan::WeightedView { .. } | Plan::WeightedExt { .. })
    }
}

/// Check C2'–C4' for the given mapping and apply S1'–S5'.
///
/// Preconditions (enforced by the caller): `query` is an aggregation query
/// with only plain aggregate forms; `view` is an aggregation view whose
/// select items are plain; both are HAVING-normalized.
#[allow(clippy::too_many_arguments)]
pub fn rewrite_aggregate(
    query: &Canonical,
    view: &Canonical,
    view_name: &str,
    view_out_names: &[String],
    mapping: &Mapping,
    q_closure: &PredClosure,
    mode: VaMode,
    aux_name: &str,
) -> Result<AggRewrite, WhyNot> {
    debug_assert_eq!(view_out_names.len(), view.select.len());
    if view.distinct {
        return Err(WhyNot::Unsupported {
            reason: "SELECT DISTINCT aggregation views".into(),
        });
    }
    if !query.is_plain() {
        return Err(WhyNot::Unsupported {
            reason: "aggregation views cannot be applied to queries with derived aggregate \
                     forms (apply them before conjunctive steps introduce those forms)"
                .into(),
        });
    }

    let image = mapping.image_cols(query);

    // View output anatomy.
    let mut colsel_syntactic: HashMap<ColId, usize> = HashMap::new(); // φ(B) -> sel idx
    let mut count_idx: Option<usize> = None;
    for (i, item) in view.select.iter().enumerate() {
        match item {
            SelItem::Col(b) => {
                let qcol = mapping.map_col(view, query, *b);
                colsel_syntactic.entry(qcol).or_insert(i);
            }
            SelItem::Agg(AggExpr::Plain(spec)) => {
                if spec.func == AggFunc::Count && count_idx.is_none() {
                    count_idx = Some(i);
                }
            }
            SelItem::Agg(_) => {
                return Err(WhyNot::Unsupported {
                    reason: "view definitions with derived aggregate forms".into(),
                })
            }
        }
    }

    // Equality-based exposure over ColSel(V) (for B_A substitutions).
    let expose = |qcol: ColId| -> Option<usize> {
        if let Some(&i) = colsel_syntactic.get(&qcol) {
            return Some(i);
        }
        view.select.iter().enumerate().find_map(|(i, item)| {
            let SelItem::Col(b) = item else { return None };
            let mapped = mapping.map_col(view, query, *b);
            q_closure.cols_equal(qcol, mapped).then_some(i)
        })
    };
    // Aggregate exposure: the first view output `AGG(B)` with
    // `Conds(Q) ⊨ A = φ(B)`.
    let agg_expose = |qcol: ColId, func: AggFunc| -> Option<usize> {
        view.select.iter().enumerate().find_map(|(i, item)| {
            let SelItem::Agg(AggExpr::Plain(spec)) = item else {
                return None;
            };
            if spec.func != func {
                return None;
            }
            let b = spec.arg?;
            let mapped = mapping.map_col(view, query, b);
            q_closure.cols_equal(qcol, mapped).then_some(i)
        })
    };

    // --- Condition C2' ---------------------------------------------------
    let mut needed: Vec<ColId> = query.col_sel();
    needed.extend(query.groups.iter().copied());
    for &a in &needed {
        if image[a] && expose(a).is_none() {
            return Err(WhyNot::SelectColumnNotExposed {
                column: query.columns[a].name.clone(),
            });
        }
    }

    // --- Condition C3' ---------------------------------------------------
    let mapped_vconds: Vec<Atom> = view
        .conds
        .iter()
        .map(|a| mapping.map_atom(view, query, a))
        .collect();
    for atom in &mapped_vconds {
        if !q_closure.implies_atom(atom) {
            return Err(WhyNot::ViewCondsNotImplied {
                atom: format!("{atom:?}"),
            });
        }
    }
    let allowed = |t: &Term| match t {
        Term::Col(c) => !image[*c] || colsel_syntactic.contains_key(c),
        Term::Const(_) => true,
    };
    let residual = derive_residual(q_closure, &query.conds, &mapped_vconds, allowed)
        .ok_or(WhyNot::NoResidual)?;

    // --- Condition C4' ---------------------------------------------------
    let plan_for = |spec: &AggSpec| -> Result<Plan, WhyNot> {
        let fail = |missing: &str| WhyNot::AggregateNotComputable {
            agg: format!("{spec:?}"),
            missing: missing.to_string(),
        };
        let in_image = |c: ColId| image[c];
        match (spec.func, spec.arg) {
            (AggFunc::Count, arg) => {
                // COUNT counts rows; with an aggregation view, each view
                // row stands for COUNT-column-many original rows, in or out
                // of the image alike (C4' parts 1(b) and 2).
                let _ = arg;
                let n = count_idx
                    .ok_or_else(|| fail("no COUNT column in the view to recover multiplicities"))?;
                Ok(Plan::ViewAgg {
                    func: AggFunc::Sum,
                    sel_idx: n,
                })
            }
            (func, Some(a)) if in_image(a) => match func {
                AggFunc::Min | AggFunc::Max => {
                    if let Some(i) = agg_expose(a, func) {
                        Ok(Plan::ViewAgg { func, sel_idx: i })
                    } else if let Some(i) = expose(a) {
                        Ok(Plan::ViewAgg { func, sel_idx: i })
                    } else {
                        Err(fail("neither the raw column nor its MIN/MAX is exposed"))
                    }
                }
                AggFunc::Sum => {
                    if let Some(i) = agg_expose(a, AggFunc::Sum) {
                        Ok(Plan::ViewAgg {
                            func: AggFunc::Sum,
                            sel_idx: i,
                        })
                    } else if let (Some(raw), Some(n)) = (expose(a), count_idx) {
                        Ok(Plan::WeightedView {
                            count_idx: n,
                            val_idx: raw,
                        })
                    } else if let (Some(avg), Some(n)) = (agg_expose(a, AggFunc::Avg), count_idx) {
                        // SUM = Σ N·AVG (Section 4.4 identity).
                        Ok(Plan::WeightedView {
                            count_idx: n,
                            val_idx: avg,
                        })
                    } else {
                        Err(fail(
                            "no SUM output, and no raw/AVG column plus COUNT to recover it",
                        ))
                    }
                }
                AggFunc::Avg => {
                    if let (Some(s), Some(n)) = (agg_expose(a, AggFunc::Sum), count_idx) {
                        Ok(Plan::Ratio {
                            num_idx: s,
                            den_idx: n,
                        })
                    } else if let (Some(raw), Some(n)) = (expose(a), count_idx) {
                        Ok(Plan::WeightedAvgView {
                            count_idx: n,
                            val_idx: raw,
                        })
                    } else if let (Some(avg), Some(n)) = (agg_expose(a, AggFunc::Avg), count_idx) {
                        Ok(Plan::WeightedAvgView {
                            count_idx: n,
                            val_idx: avg,
                        })
                    } else {
                        Err(fail("AVG needs (SUM|raw|AVG) plus a COUNT column"))
                    }
                }
                AggFunc::Count => unreachable!("handled above"),
            },
            (func, Some(a)) => {
                // A outside the image (C4' part 2 / step S5').
                match func {
                    AggFunc::Min | AggFunc::Max => Ok(Plan::External { func, col: Some(a) }),
                    AggFunc::Sum => {
                        let n = count_idx.ok_or_else(|| {
                            fail("SUM over an unmapped column needs a COUNT column (C4' part 2)")
                        })?;
                        Ok(Plan::WeightedExt {
                            count_idx: n,
                            col: a,
                        })
                    }
                    AggFunc::Avg => {
                        let n = count_idx.ok_or_else(|| {
                            fail("AVG over an unmapped column needs a COUNT column")
                        })?;
                        Ok(Plan::WeightedAvgExt {
                            count_idx: n,
                            col: a,
                        })
                    }
                    AggFunc::Count => unreachable!("handled above"),
                }
            }
            (_, None) => unreachable!("only COUNT takes *, handled above"),
        }
    };

    // Plans for every aggregate in Sel(Q) and GConds(Q).
    let mut plans: HashMap<AggSpec, Plan> = HashMap::new();
    for agg in query.agg_exprs() {
        let AggExpr::Plain(spec) = agg else {
            unreachable!("query.is_plain() checked");
        };
        if !plans.contains_key(spec) {
            plans.insert(*spec, plan_for(spec)?);
        }
    }

    // --- Section 4.3: the view's HAVING clause ---------------------------
    // Conservative sound treatment: a view HAVING eliminates groups; if the
    // query may coalesce several view groups (its grouping does not pin
    // every view grouping column), reject. Otherwise the view's conditions
    // must be entailed by the query's HAVING conditions, with a residual.
    let gconds_out: Vec<GAtom> = if view.gconds.is_empty() {
        query.gconds.clone()
    } else {
        // No-coalescing check: every φ(Groups(V)) column must be pinned by
        // a query grouping column or a constant.
        for &vg in &view.groups {
            let qg = mapping.map_col(view, query, vg);
            let pinned = q_closure.const_of(qg).is_some()
                || query.groups.iter().any(|&g| q_closure.cols_equal(qg, g));
            if !pinned {
                return Err(WhyNot::ViewHavingWithCoalescing);
            }
        }
        match_gconds(query, view, mapping, q_closure)?
    };
    // The residual HAVING may use canonicalized aggregate specs (argument
    // replaced by an entailed-equal column) that differ from the query's
    // literal specs — make sure each has a plan.
    for g in &gconds_out {
        for t in [&g.lhs, &g.rhs] {
            if let GTerm::Agg(AggExpr::Plain(spec)) = t {
                if !plans.contains_key(spec) {
                    plans.insert(*spec, plan_for(spec)?);
                }
            }
        }
    }

    // --- Steps S1'–S5' ----------------------------------------------------
    // Optionally replace the whole view occurrence by the paper's V^a.
    let weighted: Vec<&Plan> = plans.values().filter(|p| p.is_weighted_sum()).collect();
    if mode == VaMode::PaperVa && weighted.len() == 1 && view.gconds.is_empty() {
        let target = weighted[0].clone();
        if let Some(out) = try_paper_va(
            query,
            view,
            view_name,
            view_out_names,
            mapping,
            q_closure,
            &image,
            &colsel_syntactic,
            &expose,
            &residual,
            &gconds_out,
            &plans,
            &target,
            aux_name,
        ) {
            return Ok(out);
        }
    }

    // Weighted (default) construction.
    let frame = Frame::build(query, &mapping.image_occs(), view_name, view_out_names);
    let trans = |c: ColId| -> Option<ColId> {
        if image[c] {
            expose(c).map(|i| frame.view_col(i))
        } else {
            frame.trans_keep[c]
        }
    };
    let trans_residual = |c: ColId| -> Option<ColId> {
        if image[c] {
            colsel_syntactic.get(&c).map(|&i| frame.view_col(i))
        } else {
            frame.trans_keep[c]
        }
    };
    let materialize = |plan: &Plan| -> AggExpr {
        match plan {
            Plan::ViewAgg { func, sel_idx } => AggExpr::Plain(AggSpec {
                func: *func,
                arg: Some(frame.view_col(*sel_idx)),
            }),
            Plan::External { func, col } => AggExpr::Plain(AggSpec {
                func: *func,
                arg: col.map(|c| trans(c).expect("external column kept")),
            }),
            Plan::WeightedView { count_idx, val_idx } => AggExpr::WeightedSum {
                weight: frame.view_col(*count_idx),
                arg: frame.view_col(*val_idx),
            },
            Plan::WeightedExt { count_idx, col } => AggExpr::WeightedSum {
                weight: frame.view_col(*count_idx),
                arg: trans(*col).expect("external column kept"),
            },
            Plan::Ratio { num_idx, den_idx } => AggExpr::RatioOfSums {
                num: frame.view_col(*num_idx),
                den: frame.view_col(*den_idx),
            },
            Plan::WeightedAvgView { count_idx, val_idx } => AggExpr::WeightedAvg {
                weight: frame.view_col(*count_idx),
                arg: frame.view_col(*val_idx),
            },
            Plan::WeightedAvgExt { count_idx, col } => AggExpr::WeightedAvg {
                weight: frame.view_col(*count_idx),
                arg: trans(*col).expect("external column kept"),
            },
        }
    };
    let trans_agg = |a: &AggExpr| -> AggExpr {
        let AggExpr::Plain(spec) = a else {
            unreachable!("query.is_plain() checked");
        };
        materialize(&plans[spec])
    };

    let mut new_q = frame.new_q.clone();
    new_q.select = query
        .select
        .iter()
        .map(|item| match item {
            SelItem::Col(c) => SelItem::Col(trans(*c).expect("C2' checked")),
            SelItem::Agg(a) => SelItem::Agg(trans_agg(a)),
        })
        .collect();
    new_q.groups = query
        .groups
        .iter()
        .map(|&c| trans(c).expect("C2' checked"))
        .collect();
    new_q.conds = residual
        .iter()
        .map(|a| {
            let tt = |t: &Term| match t {
                Term::Col(c) => Term::Col(trans_residual(*c).expect("allowed terms only")),
                Term::Const(l) => Term::Const(l.clone()),
            };
            Atom::new(tt(&a.lhs), a.op, tt(&a.rhs))
        })
        .collect();
    new_q.gconds = gconds_out
        .iter()
        .map(|g| GAtom {
            lhs: trans_gterm(&g.lhs, &trans, &trans_agg),
            op: g.op,
            rhs: trans_gterm(&g.rhs, &trans, &trans_agg),
        })
        .collect();

    Ok(AggRewrite {
        query: new_q,
        aux_views: Vec::new(),
        used_va: false,
    })
}

fn trans_gterm(
    t: &GTerm,
    trans: &dyn Fn(ColId) -> Option<ColId>,
    trans_agg: &dyn Fn(&AggExpr) -> AggExpr,
) -> GTerm {
    match t {
        GTerm::Col(c) => GTerm::Col(trans(*c).expect("grouping column translated")),
        GTerm::Const(l) => GTerm::Const(l.clone()),
        GTerm::Agg(a) => GTerm::Agg(trans_agg(a)),
    }
}

/// Section 4.3 HAVING matching under the no-coalescing precondition:
/// `GConds(Q) ≡ φ(GConds(V)) ∧ GConds'`, computed with the same closure
/// machinery over a space where each aggregate term is a synthetic column.
fn match_gconds(
    query: &Canonical,
    view: &Canonical,
    mapping: &Mapping,
    q_closure: &PredClosure,
) -> Result<Vec<GAtom>, WhyNot> {
    let base = query.n_cols();
    let mut agg_terms: Vec<AggSpec> = Vec::new();
    let mut from_query: HashSet<usize> = HashSet::new();

    // Canonicalize a column to the least query column entailed equal.
    let canon_col = |c: ColId| -> ColId {
        (0..query.n_cols())
            .find(|&d| q_closure.cols_equal(c, d))
            .unwrap_or(c)
    };
    let mut intern_agg = |spec: &AggSpec| -> usize {
        let canon = AggSpec {
            func: spec.func,
            arg: spec.arg.map(canon_col),
        };
        if let Some(i) = agg_terms.iter().position(|s| *s == canon) {
            base + i
        } else {
            agg_terms.push(canon);
            base + agg_terms.len() - 1
        }
    };

    let mut encode = |g: &GAtom, map_view: bool| -> Result<Atom, WhyNot> {
        let mut enc_term = |t: &GTerm| -> Result<Term, WhyNot> {
            Ok(match t {
                GTerm::Col(c) => {
                    let qc = if map_view {
                        mapping.map_col(view, query, *c)
                    } else {
                        *c
                    };
                    Term::Col(canon_col(qc))
                }
                GTerm::Const(l) => Term::Const(l.clone()),
                GTerm::Agg(a) => {
                    let AggExpr::Plain(spec) = a else {
                        return Err(WhyNot::Unsupported {
                            reason: "derived aggregate forms in HAVING".into(),
                        });
                    };
                    let mapped = if map_view {
                        AggSpec {
                            func: spec.func,
                            arg: spec.arg.map(|c| mapping.map_col(view, query, c)),
                        }
                    } else {
                        *spec
                    };
                    Term::Col(intern_agg(&mapped))
                }
            })
        };
        Ok(Atom::new(enc_term(&g.lhs)?, g.op, enc_term(&g.rhs)?))
    };

    let mut q_atoms = Vec::new();
    for g in &query.gconds {
        let a = encode(g, false)?;
        for t in [&a.lhs, &a.rhs] {
            if let Term::Col(c) = t {
                if *c >= base {
                    from_query.insert(*c);
                }
            }
        }
        q_atoms.push(a);
    }
    let v_atoms: Vec<Atom> = view
        .gconds
        .iter()
        .map(|g| encode(g, true))
        .collect::<Result<_, _>>()?;

    let mut universe: Vec<Term> = Vec::new();
    for a in q_atoms.iter().chain(v_atoms.iter()) {
        universe.push(a.lhs.clone());
        universe.push(a.rhs.clone());
    }
    let gq = PredClosure::build(&q_atoms, &universe);
    for a in &v_atoms {
        if !gq.implies_atom(a) {
            return Err(WhyNot::HavingMismatch {
                reason: format!("view HAVING condition {a:?} not implied by the query's"),
            });
        }
    }
    // Residual over query-side aggregate terms and grouping columns.
    let allowed = |t: &Term| match t {
        Term::Col(c) if *c >= base => from_query.contains(c),
        _ => true,
    };
    let residual =
        derive_residual(&gq, &q_atoms, &v_atoms, allowed).ok_or(WhyNot::HavingMismatch {
            reason: "no residual HAVING conditions reconstruct the query's".into(),
        })?;

    // Decode back to GAtoms in query space.
    let decode_term = |t: &Term| -> GTerm {
        match t {
            Term::Const(l) => GTerm::Const(l.clone()),
            Term::Col(c) if *c < base => GTerm::Col(*c),
            Term::Col(c) => GTerm::Agg(AggExpr::Plain(agg_terms[*c - base])),
        }
    };
    Ok(residual
        .iter()
        .map(|a| GAtom {
            lhs: decode_term(&a.lhs),
            op: a.op,
            rhs: decode_term(&a.rhs),
        })
        .collect())
}

/// Attempt the paper's `V^a` construction for the single weighted plan.
///
/// `V^a` groups the view by `QV_Groups` (the exposed view grouping columns
/// pinned by the query's grouping — plus `B_A` itself for the S4'-1(b)
/// case) and sums the COUNT column. The construction is multiset-correct
/// exactly when the view occurrence can be *pruned*: every view output the
/// rewritten query still needs is part of `V^a`'s output. Returns `None`
/// when that fails (caller falls back to the weighted form).
#[allow(clippy::too_many_arguments)]
fn try_paper_va(
    query: &Canonical,
    view: &Canonical,
    view_name: &str,
    view_out_names: &[String],
    mapping: &Mapping,
    q_closure: &PredClosure,
    image: &[bool],
    colsel_syntactic: &HashMap<ColId, usize>,
    expose: &dyn Fn(ColId) -> Option<usize>,
    residual: &[Atom],
    gconds_out: &[GAtom],
    plans: &HashMap<AggSpec, Plan>,
    target: &Plan,
    aux_name: &str,
) -> Option<AggRewrite> {
    // QV_Groups: view SELECT positions of non-aggregation outputs whose
    // mapped column is pinned by the query's grouping (or a constant).
    let mut qvg: Vec<usize> = Vec::new();
    for (i, item) in view.select.iter().enumerate() {
        let SelItem::Col(b) = item else { continue };
        let qcol = mapping.map_col(view, query, *b);
        let pinned = q_closure.const_of(qcol).is_some()
            || query.groups.iter().any(|&g| q_closure.cols_equal(qcol, g));
        if pinned {
            qvg.push(i);
        }
    }
    // S4'-1(b): the summed raw column joins the V^a grouping.
    let (count_idx, extra_group, ext_col) = match target {
        Plan::WeightedView { count_idx, val_idx } => (*count_idx, Some(*val_idx), None),
        Plan::WeightedExt { count_idx, col } => (*count_idx, None, Some(*col)),
        _ => return None,
    };
    let mut va_groups = qvg.clone();
    if let Some(v) = extra_group {
        if !va_groups.contains(&v) {
            va_groups.push(v);
        }
    }

    // Prunability: every view position used by anything (C2' exposures in
    // SELECT/GROUP BY, the residual, other plans) must be in `va_groups`.
    let mut needed: HashSet<usize> = HashSet::new();
    let need_col = |c: ColId, needed: &mut HashSet<usize>| -> bool {
        if image[c] {
            match expose(c) {
                Some(i) => {
                    needed.insert(i);
                    true
                }
                None => false,
            }
        } else {
            true
        }
    };
    for item in &query.select {
        if let SelItem::Col(c) = item {
            if !need_col(*c, &mut needed) {
                return None;
            }
        }
    }
    for &c in &query.groups {
        if !need_col(c, &mut needed) {
            return None;
        }
    }
    for a in residual {
        for t in [&a.lhs, &a.rhs] {
            if let Term::Col(c) = t {
                if image[*c] {
                    needed.insert(*colsel_syntactic.get(c)?);
                }
            }
        }
    }
    for g in gconds_out {
        for t in [&g.lhs, &g.rhs] {
            if let GTerm::Col(c) = t {
                if !need_col(*c, &mut needed) {
                    return None;
                }
            }
        }
    }
    for plan in plans.values() {
        if plan == target {
            continue;
        }
        for i in plan.view_idxs() {
            needed.insert(i);
        }
    }
    if !needed.iter().all(|i| va_groups.contains(i)) {
        return None;
    }

    // Build V^a over the (materialized) view.
    let mut va = Canonical::empty();
    va.add_table(view_name, view_out_names.to_vec());
    let mut va_out_names: Vec<String> = Vec::new();
    for &i in &va_groups {
        va.select.push(SelItem::Col(i)); // view occ is table 0; ColId == sel pos
        va.groups.push(i);
        va_out_names.push(view_out_names[i].clone());
    }
    let agg_pos = va.select.len();
    match extra_group {
        Some(b) => {
            // Sum_V^a = B · SUM(N).
            va.select.push(SelItem::Agg(AggExpr::Scaled {
                factor: b,
                spec: AggSpec::on(AggFunc::Sum, count_idx),
            }));
            va_out_names.push("sum_va".to_string());
        }
        None => {
            // Cnt_V^a = SUM(N).
            va.select.push(SelItem::Agg(AggExpr::Plain(AggSpec::on(
                AggFunc::Sum,
                count_idx,
            ))));
            va_out_names.push("cnt_va".to_string());
        }
    }

    // Build the main query over V^a (the view occurrence is pruned).
    let frame = Frame::build(query, &mapping.image_occs(), aux_name, &va_out_names);
    let va_pos_of_view_idx = |i: usize| -> Option<usize> { va_groups.iter().position(|&g| g == i) };
    let trans = |c: ColId| -> Option<ColId> {
        if image[c] {
            let i = expose(c)?;
            Some(frame.view_col(va_pos_of_view_idx(i)?))
        } else {
            frame.trans_keep[c]
        }
    };
    let materialize = |plan: &Plan| -> Option<AggExpr> {
        if plan == target {
            return Some(match extra_group {
                // S4'-1(b): SUM(A) ↦ SUM(Sum_V^a).
                Some(_) => AggExpr::Plain(AggSpec::on(AggFunc::Sum, frame.view_col(agg_pos))),
                // S5': AGG(A) ↦ Cnt_V^a · AGG(A).
                None => AggExpr::Scaled {
                    factor: frame.view_col(agg_pos),
                    spec: AggSpec {
                        func: AggFunc::Sum,
                        arg: Some(trans(ext_col.expect("ext target"))?),
                    },
                },
            });
        }
        Some(match plan {
            Plan::ViewAgg { func, sel_idx } => AggExpr::Plain(AggSpec {
                func: *func,
                // A pure aggregate surviving alongside V^a must read a
                // va_groups column (prunability guaranteed it).
                arg: Some(frame.view_col(va_pos_of_view_idx(*sel_idx)?)),
            }),
            Plan::External { func, col } => AggExpr::Plain(AggSpec {
                func: *func,
                arg: col.map(|c| trans(c).expect("external column kept")),
            }),
            _ => return None,
        })
    };

    let mut new_q = frame.new_q.clone();
    for item in &query.select {
        let sel = match item {
            SelItem::Col(c) => SelItem::Col(trans(*c)?),
            SelItem::Agg(AggExpr::Plain(spec)) => SelItem::Agg(materialize(&plans[spec])?),
            SelItem::Agg(_) => return None,
        };
        new_q.select.push(sel);
    }
    for &c in &query.groups {
        new_q.groups.push(trans(c)?);
    }
    // S5' adds Cnt_V^a to Groups(Q) (but not to ColSel).
    if extra_group.is_none() {
        new_q.groups.push(frame.view_col(agg_pos));
    }
    for a in residual {
        let tt = |t: &Term| -> Option<Term> {
            Some(match t {
                Term::Col(c) => Term::Col(trans(*c)?),
                Term::Const(l) => Term::Const(l.clone()),
            })
        };
        new_q.conds.push(Atom::new(tt(&a.lhs)?, a.op, tt(&a.rhs)?));
    }
    for g in gconds_out {
        let tt = |t: &GTerm| -> Option<GTerm> {
            Some(match t {
                GTerm::Col(c) => GTerm::Col(trans(*c)?),
                GTerm::Const(l) => GTerm::Const(l.clone()),
                GTerm::Agg(AggExpr::Plain(spec)) => GTerm::Agg(materialize(&plans[spec])?),
                GTerm::Agg(_) => return None,
            })
        };
        new_q.gconds.push(GAtom {
            lhs: tt(&g.lhs)?,
            op: g.op,
            rhs: tt(&g.rhs)?,
        });
    }

    Some(AggRewrite {
        query: new_q,
        aux_views: vec![(aux_name.to_string(), va, va_out_names)],
        used_va: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::enumerate_mappings;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
            .unwrap();
        cat.add_table(TableSchema::new("R2", ["E", "F"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    fn rewrite_all(
        q: &Canonical,
        v: &Canonical,
        name: &str,
        outs: &[&str],
        mode: VaMode,
    ) -> Vec<AggRewrite> {
        let out_names: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        let mut universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        for a in q.conds.iter().chain(v.conds.iter()) {
            for t in [&a.lhs, &a.rhs] {
                if matches!(t, Term::Const(_)) {
                    universe.push(t.clone());
                }
            }
        }
        let cl = PredClosure::build(&q.conds, &universe);
        enumerate_mappings(v, q, true, Some(&cl))
            .into_iter()
            .filter_map(|m| rewrite_aggregate(q, v, name, &out_names, &m, &cl, mode, "Va").ok())
            .collect()
    }

    #[test]
    fn example_4_1_coalescing_subgroups() {
        // Paper Example 4.1: COUNT of coarser groups = SUM of finer COUNTs.
        let q = canon("SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E");
        let v = canon("SELECT A, C, COUNT(D) FROM R1 WHERE B = D GROUP BY A, C");
        let rws = rewrite_all(&q, &v, "V1", &["A", "C", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        let sql = rws[0].query.to_query().to_string();
        assert_eq!(
            sql,
            "SELECT V1.A, R2.E, SUM(V1.N) FROM R2, V1 WHERE V1.C = R2.F GROUP BY V1.A, R2.E"
        );
        assert!(rws[0].aux_views.is_empty());
    }

    #[test]
    fn example_4_2_v1_fails_no_count() {
        // Example 4.2: V1 (SUM only, no COUNT) cannot recover the lost
        // multiplicities for SUM(E1).
        let q = canon("SELECT A, SUM(E) FROM R1, R2 GROUP BY A");
        let v1 = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B");
        assert!(rewrite_all(&q, &v1, "V1", &["A", "B", "S"], VaMode::Weighted).is_empty());
    }

    #[test]
    fn example_4_2_v2_weighted() {
        // Example 4.2 with V2 (SUM + COUNT): weighted strategy.
        let q = canon("SELECT A, SUM(E) FROM R1, R2 GROUP BY A");
        let v2 = canon("SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v2, "V2", &["A", "B", "S", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        let sql = rws[0].query.to_query().to_string();
        assert_eq!(
            sql,
            "SELECT V2.A, SUM(V2.N * R2.E) FROM R2, V2 GROUP BY V2.A"
        );
    }

    #[test]
    fn example_4_2_v2_paper_va() {
        // Example 4.2 with the paper's V^a construction: the view is
        // prunable (only A and the counts are needed), so V^a applies.
        let q = canon("SELECT A, SUM(E) FROM R1, R2 GROUP BY A");
        let v2 = canon("SELECT A, B, SUM(C), COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v2, "V2", &["A", "B", "S", "N"], VaMode::PaperVa);
        assert_eq!(rws.len(), 1);
        let rw = &rws[0];
        assert!(rw.used_va);
        assert_eq!(rw.aux_views.len(), 1);
        let (name, va, outs) = &rw.aux_views[0];
        assert_eq!(name, "Va");
        assert_eq!(
            va.to_query().to_string(),
            "SELECT V2.A, SUM(V2.N) FROM V2 GROUP BY V2.A"
        );
        assert_eq!(outs, &vec!["A".to_string(), "cnt_va".to_string()]);
        // Main query: Cnt_V^a · SUM(E), grouped by A and Cnt_V^a.
        let sql = rw.query.to_query().to_string();
        assert_eq!(
            sql,
            "SELECT Va.A, Va.cnt_va * SUM(R2.E) FROM R2, Va GROUP BY Va.A, Va.cnt_va"
        );
    }

    #[test]
    fn example_4_4_aggregated_column_cannot_be_constrained() {
        // Paper Example 4.4: the query constrains B (B = F) but the view
        // aggregates B away — condition C3' must fail.
        let q = canon("SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E");
        let v = canon("SELECT A, E, F, SUM(B) FROM R1, R2 GROUP BY A, E, F");
        assert!(rewrite_all(&q, &v, "V", &["A", "E", "F", "S"], VaMode::Weighted).is_empty());
        // Without the WHERE clause the view applies (sanity check).
        let q2 = canon("SELECT A, E, SUM(B) FROM R1, R2 GROUP BY A, E");
        let rws = rewrite_all(&q2, &v, "V", &["A", "E", "F", "S"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, V.E, SUM(V.S) FROM V GROUP BY V.A, V.E"
        );
    }

    #[test]
    fn sum_of_sums_direct() {
        // Example 1.1 pattern: SUM rolled up over coalesced groups.
        let q = canon("SELECT A, SUM(C) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "S"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.S) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn min_of_mins_and_max_of_maxes() {
        let q = canon("SELECT A, MIN(C), MAX(D) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B, MIN(C), MAX(D) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "MN", "MX"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, MIN(V.MN), MAX(V.MX) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn min_over_raw_grouping_column() {
        // MIN over a column the view groups by (exposed raw).
        let q = canon("SELECT A, MIN(B) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, MIN(V.B) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn sum_over_raw_grouping_column_needs_count() {
        let q = canon("SELECT A, SUM(B) FROM R1 GROUP BY A");
        // Without COUNT: unusable.
        let v_nocount = canon("SELECT A, B FROM R1 GROUP BY A, B");
        assert!(rewrite_all(&q, &v_nocount, "V", &["A", "B"], VaMode::Weighted).is_empty());
        // With COUNT: weighted sum.
        let v = canon("SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N * V.B) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn sum_over_raw_grouping_column_paper_va() {
        // S4'-1(b): V^a groups by QV_Groups ∪ {B} and pre-multiplies.
        let q = canon("SELECT A, SUM(B) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "N"], VaMode::PaperVa);
        assert_eq!(rws.len(), 1);
        let rw = &rws[0];
        assert!(rw.used_va);
        let (_, va, _) = &rw.aux_views[0];
        assert_eq!(
            va.to_query().to_string(),
            "SELECT V.A, V.B, V.B * SUM(V.N) FROM V GROUP BY V.A, V.B"
        );
        assert_eq!(
            rw.query.to_query().to_string(),
            "SELECT Va.A, SUM(Va.sum_va) FROM Va GROUP BY Va.A"
        );
    }

    #[test]
    fn count_maps_to_sum_of_counts() {
        let q = canon("SELECT A, COUNT(E) FROM R1, R2 GROUP BY A");
        let v = canon("SELECT A, COUNT(B) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        // COUNT over R2's column still needs R2's multiplicity — the view
        // contributes SUM(N)... no: COUNT(E) counts join rows. The plan is
        // SUM(N) over the view side — but E is external, so each (v, r2)
        // row stands for N(v) originals: SUM(N) counts exactly right.
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N) FROM R2, V GROUP BY V.A"
        );
    }

    #[test]
    fn avg_from_sum_and_count() {
        let q = canon("SELECT A, AVG(C) FROM R1 GROUP BY A");
        let v = canon("SELECT A, SUM(C), COUNT(C) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "S", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.S) / SUM(V.N) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn sum_from_avg_and_count() {
        // Section 4.4: SUM = Σ N·AVG.
        let q = canon("SELECT A, SUM(C) FROM R1 GROUP BY A");
        let v = canon("SELECT A, AVG(C), COUNT(C) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "Av", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N * V.Av) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn avg_without_count_fails() {
        let q = canon("SELECT A, AVG(C) FROM R1 GROUP BY A");
        let v = canon("SELECT A, AVG(C) FROM R1 GROUP BY A");
        assert!(rewrite_all(&q, &v, "V", &["A", "Av"], VaMode::Weighted).is_empty());
    }

    #[test]
    fn view_having_requires_no_coalescing() {
        // The view eliminates groups with HAVING; the query coalesces over
        // B — unusable.
        let q = canon("SELECT A, SUM(C) FROM R1 GROUP BY A HAVING SUM(C) > 5");
        let v = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5");
        assert!(rewrite_all(&q, &v, "V", &["A", "B", "S"], VaMode::Weighted).is_empty());
    }

    #[test]
    fn view_having_matches_without_coalescing() {
        // Same grouping, same HAVING: usable, residual HAVING empty.
        let q = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5");
        let v = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "S"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, V.B, SUM(V.S) FROM V GROUP BY V.A, V.B"
        );
    }

    #[test]
    fn view_having_stronger_than_query_fails() {
        // View keeps only SUM > 10; query wants SUM > 5 — groups lost.
        let q = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5");
        let v = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 10");
        assert!(rewrite_all(&q, &v, "V", &["A", "B", "S"], VaMode::Weighted).is_empty());
    }

    #[test]
    fn query_having_stronger_than_view_leaves_residual() {
        let q = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 10");
        let v = canon("SELECT A, B, SUM(C) FROM R1 GROUP BY A, B HAVING SUM(C) > 5");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "S"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, V.B, SUM(V.S) FROM V GROUP BY V.A, V.B HAVING SUM(V.S) > 10"
        );
    }

    #[test]
    fn paper_va_falls_back_when_view_not_prunable() {
        // The residual (B = F) references view column B, which is not
        // pinned by the query's grouping — V^a cannot replace the view, so
        // PaperVa mode must fall back to the weighted form.
        let q = canon("SELECT A, SUM(E) FROM R1, R2 WHERE B = F GROUP BY A");
        let v = canon("SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "N"], VaMode::PaperVa);
        assert_eq!(rws.len(), 1);
        assert!(!rws[0].used_va, "must fall back to the weighted strategy");
        assert!(rws[0].aux_views.is_empty());
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N * R2.E) FROM R2, V WHERE V.B = R2.F GROUP BY V.A"
        );
    }

    #[test]
    fn paper_va_applies_to_having_aggregate() {
        // The weighted aggregate appears in HAVING only; V^a still applies
        // (S4'/S5' are extended to GConds aggregates in Section 4.3).
        let q = canon("SELECT A FROM R1, R2 GROUP BY A HAVING SUM(E) > 10");
        let v = canon("SELECT A, COUNT(C) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "N"], VaMode::PaperVa);
        assert_eq!(rws.len(), 1);
        assert!(rws[0].used_va);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT Va.A FROM R2, Va GROUP BY Va.A, Va.cnt_va HAVING Va.cnt_va * SUM(R2.E) > 10"
        );
    }

    #[test]
    fn multiple_weighted_aggregates_disable_paper_va() {
        // Two weighted aggregates: the single-V^a restriction falls back.
        let q = canon("SELECT A, SUM(E), SUM(F) FROM R1, R2 GROUP BY A");
        let v = canon("SELECT A, COUNT(C) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "N"], VaMode::PaperVa);
        assert_eq!(rws.len(), 1);
        assert!(!rws[0].used_va);
    }

    #[test]
    fn avg_external_column() {
        let q = canon("SELECT A, AVG(E) FROM R1, R2 GROUP BY A");
        let v = canon("SELECT A, COUNT(C) FROM R1 GROUP BY A");
        let rws = rewrite_all(&q, &v, "V", &["A", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N * R2.E) / SUM(V.N) FROM R2, V GROUP BY V.A"
        );
    }

    #[test]
    fn count_star_over_aggregated_view() {
        let q = canon("SELECT A, COUNT(*) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B, COUNT(C) FROM R1 GROUP BY A, B");
        let rws = rewrite_all(&q, &v, "V", &["A", "B", "N"], VaMode::Weighted);
        assert_eq!(rws.len(), 1);
        assert_eq!(
            rws[0].query.to_query().to_string(),
            "SELECT V.A, SUM(V.N) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn grouping_column_must_be_nonaggregated_output() {
        // C2': A exposed only under an aggregate is not good enough.
        let q = canon("SELECT A, SUM(C) FROM R1 GROUP BY A");
        let v = canon("SELECT B, SUM(A), SUM(C), COUNT(C) FROM R1 GROUP BY B");
        assert!(rewrite_all(&q, &v, "V", &["B", "SA", "SC", "N"], VaMode::Weighted).is_empty());
    }
}
