//! The rewriting engine of *"Reasoning with Aggregation Constraints in
//! Views"* (Dar, Jagadish, Levy, Srivastava, 1996).
//!
//! Given a single-block SQL query `Q` and a set of materialized view
//! definitions, this crate finds rewritings `Q'` that (a) mention views in
//! their `FROM` clause and (b) are *multiset-equivalent* to `Q`.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module | What it implements |
//! |---|---|---|
//! | §2 | [`canon`] | Canonical query form with globally unique column identities (the paper's renaming convention) |
//! | §2, §3 (footnote 2) | [`closure`] | Closure of conjunctions of built-in predicates; satisfiability, implication, equivalence, residual `Conds'` computation |
//! | §3 C1 | [`mapping`] | Enumeration of 1-1 (and, for §5, many-to-1) column mappings |
//! | §3.3 | [`having`] | Predicate move-around normalization of `HAVING` clauses |
//! | §3 | [`conjunctive`] | Conditions C1–C4 and rewriting steps S1–S4 (conjunctive views) |
//! | §4 | [`aggregate`] | Conditions C2'–C4', steps S1'–S5' incl. the auxiliary view `V^a`, AVG (§4.4), the §4.5 impossibility |
//! | §5 | [`set_mode`] | Set-semantics rewriting with many-to-1 mappings under key reasoning |
//! | §3.2 | [`rewrite`] | Iterative multi-view rewriting (sound, Church-Rosser, complete for equalities) and the top-level [`Rewriter`] |
//! | §7 (future work) | [`advisor`] | View selection: synthesize + validate candidate summary views |
//! | — | [`cost`] | A simple cardinality cost model for ranking rewritings |
//! | — | [`explain`] | Diagnostics: why a view is / is not usable |

pub mod advisor;
pub mod aggregate;
pub mod canon;
pub mod classify;
pub mod closure;
pub mod conjunctive;
pub mod cost;
pub mod expand;
pub mod explain;
mod frame;
pub mod having;
pub mod mapping;
pub mod rewrite;
pub mod set_mode;
pub mod simplify;

pub use advisor::{suggest_views, ViewSuggestion};
pub use canon::{
    AggExpr, AggSpec, Atom, CanonError, Canonical, ColId, GAtom, GTerm, SelItem, Term,
};
pub use classify::{classify, QueryClass};
pub use closure::{ClosureCache, ClosureCacheStats, PredClosure};
pub use cost::{estimate_cost, TableStats};
pub use explain::{CandidateMode, CandidateReport, WhyNot};
pub use mapping::{Mapping, TableSignature};
pub use rewrite::{
    RewriteError, RewriteOptions, RewriteStats, Rewriter, Rewriting, Strategy, ViewDef,
};
pub use simplify::{simplify_conditions, Simplification};
