//! Closure of conjunctions of built-in predicates.
//!
//! The paper's usability conditions repeatedly ask questions of the form
//! *"does `Conds(Q)` imply `A = φ(B)`?"* and *"is `Conds(Q)` equivalent to
//! `φ(Conds(V)) ∧ Conds'`?"* (conditions C2–C4, C2'–C4'). Footnote 2
//! observes that for conjunctions of `=, ≠, <, ≤, >, ≥` atoms over columns
//! and constants, the closure (the set of all entailed atoms) is polynomial
//! in the input. This module computes that closure:
//!
//! * equalities via union-find (including constant identification),
//! * order atoms via transitive closure with strictness tracking
//!   (`≤∘< ⊆ <`),
//! * the strengthening rule `a ≤ b ∧ a ≠ b ⟹ a < b`,
//! * derived equality `a ≤ b ∧ b ≤ a ⟹ a = b` (classes are merged and the
//!   closure is rebuilt — this terminates because each merge reduces the
//!   class count),
//! * all order/disequality facts between distinct constants.
//!
//! Inference is sound for all the paper's domains and complete for dense
//! total orders; over the integers, gap reasoning such as
//! `A > 3 ∧ A < 5 ⟹ A = 4` is (knowingly) not performed — the paper's
//! closure does not perform it either.

use crate::canon::{Atom, ColId, Term};
use aggview_sql::ast::{CmpOp, Literal};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Compare two constants with SQL semantics (numeric coercion across
/// int/double; strings and bools within their type). `None` means the
/// constants are incomparable (different, non-coercible types).
pub fn const_cmp(a: &Literal, b: &Literal) -> Option<Ordering> {
    fn num(l: &Literal) -> Option<f64> {
        match l {
            Literal::Int(v) => Some(*v as f64),
            Literal::Double(v) => Some(*v),
            _ => None,
        }
    }
    match (a, b) {
        (Literal::Int(x), Literal::Int(y)) => Some(x.cmp(y)),
        (Literal::Str(x), Literal::Str(y)) => Some(x.cmp(y)),
        (Literal::Bool(x), Literal::Bool(y)) => Some(x.cmp(y)),
        _ => {
            let x = num(a)?;
            let y = num(b)?;
            x.partial_cmp(&y)
        }
    }
}

/// The computed closure of a conjunction of atoms over a term universe.
///
/// ```
/// use aggview_core::canon::{Atom, Term};
/// use aggview_core::PredClosure;
/// use aggview_sql::{CmpOp, Literal};
///
/// // A = B ∧ B ≤ 5  entails  A ≤ 5 and A < 7.
/// let atoms = vec![
///     Atom::new(Term::Col(0), CmpOp::Eq, Term::Col(1)),
///     Atom::new(Term::Col(1), CmpOp::Le, Term::Const(Literal::Int(5))),
/// ];
/// let closure = PredClosure::build(&atoms, &[Term::Const(Literal::Int(7))]);
/// assert!(closure.satisfiable());
/// assert!(closure.implies_atom(&Atom::new(
///     Term::Col(0), CmpOp::Le, Term::Const(Literal::Int(5)))));
/// assert!(closure.implies_atom(&Atom::new(
///     Term::Col(0), CmpOp::Lt, Term::Const(Literal::Int(7)))));
/// ```
#[derive(Debug, Clone)]
pub struct PredClosure {
    terms: Vec<Term>,
    tindex: HashMap<Term, usize>,
    /// Class id per term index.
    class_of: Vec<usize>,
    n_classes: usize,
    /// `le[i][j]`: class `i ≤ j` is entailed.
    le: Vec<Vec<bool>>,
    /// `lt[i][j]`: class `i < j` is entailed.
    lt: Vec<Vec<bool>>,
    /// Entailed disequalities between classes (normalized pairs).
    ne: HashSet<(usize, usize)>,
    /// One constant per class that contains constants.
    class_const: Vec<Option<Literal>>,
    unsat: bool,
}

impl PredClosure {
    /// Build the closure of `atoms`. The term universe is the atoms' terms
    /// plus `extra_terms` (pass every term you intend to query).
    pub fn build(atoms: &[Atom], extra_terms: &[Term]) -> PredClosure {
        // Derived equalities (a ≤ b ∧ b ≤ a) force a class merge and a
        // rebuild; each iteration strictly reduces the class count.
        let mut extra_eqs: Vec<Atom> = Vec::new();
        loop {
            let (closure, new_eqs) = Self::build_once(atoms, extra_terms, &extra_eqs);
            if new_eqs.is_empty() || closure.unsat {
                return closure;
            }
            extra_eqs.extend(new_eqs);
        }
    }

    fn build_once(
        atoms: &[Atom],
        extra_terms: &[Term],
        extra_eqs: &[Atom],
    ) -> (PredClosure, Vec<Atom>) {
        // 1. Collect the term universe.
        let mut terms: Vec<Term> = Vec::new();
        let mut tindex: HashMap<Term, usize> = HashMap::new();
        let intern = |t: &Term, terms: &mut Vec<Term>, tindex: &mut HashMap<Term, usize>| {
            *tindex.entry(t.clone()).or_insert_with(|| {
                terms.push(t.clone());
                terms.len() - 1
            })
        };
        for a in atoms.iter().chain(extra_eqs.iter()) {
            intern(&a.lhs, &mut terms, &mut tindex);
            intern(&a.rhs, &mut terms, &mut tindex);
        }
        for t in extra_terms {
            intern(t, &mut terms, &mut tindex);
        }
        let n = terms.len();

        // 2. Union-find over equalities (and equal constants).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };
        for a in atoms.iter().chain(extra_eqs.iter()) {
            if a.op == CmpOp::Eq {
                let (i, j) = (tindex[&a.lhs], tindex[&a.rhs]);
                union(&mut parent, i, j);
            }
        }
        // Identify equal constants (e.g. `1` and `1.0`).
        let const_idx: Vec<usize> = (0..n)
            .filter(|&i| matches!(terms[i], Term::Const(_)))
            .collect();
        for (p, &i) in const_idx.iter().enumerate() {
            for &j in &const_idx[p + 1..] {
                let (Term::Const(a), Term::Const(b)) = (&terms[i], &terms[j]) else {
                    unreachable!();
                };
                if const_cmp(a, b) == Some(Ordering::Equal) {
                    union(&mut parent, i, j);
                }
            }
        }

        // 3. Number the classes.
        let mut class_of = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            if class_of[r] == usize::MAX {
                class_of[r] = reps.len();
                reps.push(r);
            }
            class_of[i] = class_of[r];
        }
        let m = reps.len();

        // A constant per class, and immediate unsat when a class holds two
        // different constants.
        let mut class_const: Vec<Option<Literal>> = vec![None; m];
        let mut unsat = false;
        for i in 0..n {
            if let Term::Const(c) = &terms[i] {
                match &class_const[class_of[i]] {
                    None => class_const[class_of[i]] = Some(c.clone()),
                    Some(existing) => {
                        if const_cmp(existing, c) != Some(Ordering::Equal) {
                            unsat = true;
                        }
                    }
                }
            }
        }

        // 4. Seed the order matrices and disequalities.
        let mut le = vec![vec![false; m]; m];
        let mut lt = vec![vec![false; m]; m];
        let mut ne: HashSet<(usize, usize)> = HashSet::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..m {
            le[i][i] = true;
        }
        let add_ne = |ne: &mut HashSet<(usize, usize)>, a: usize, b: usize| {
            ne.insert((a.min(b), a.max(b)));
        };
        for a in atoms {
            let (ci, cj) = (class_of[tindex[&a.lhs]], class_of[tindex[&a.rhs]]);
            match a.op {
                CmpOp::Eq => {}
                CmpOp::Ne => add_ne(&mut ne, ci, cj),
                CmpOp::Lt => {
                    lt[ci][cj] = true;
                    le[ci][cj] = true;
                }
                CmpOp::Le => le[ci][cj] = true,
                CmpOp::Gt => {
                    lt[cj][ci] = true;
                    le[cj][ci] = true;
                }
                CmpOp::Ge => le[cj][ci] = true,
            }
        }
        // Relations between distinct constants.
        for i in 0..m {
            for j in (i + 1)..m {
                if let (Some(a), Some(b)) = (&class_const[i], &class_const[j]) {
                    match const_cmp(a, b) {
                        Some(Ordering::Less) => {
                            lt[i][j] = true;
                            le[i][j] = true;
                        }
                        Some(Ordering::Greater) => {
                            lt[j][i] = true;
                            le[j][i] = true;
                        }
                        Some(Ordering::Equal) => unreachable!("equal constants were unioned"),
                        None => {}
                    }
                    add_ne(&mut ne, i, j); // distinct constants are unequal
                }
            }
        }

        // 5. Fixpoint: transitive closure + the ≤∧≠⇒< strengthening.
        loop {
            let mut changed = false;
            for k in 0..m {
                for i in 0..m {
                    if !le[i][k] {
                        continue;
                    }
                    for j in 0..m {
                        if le[k][j] {
                            if !le[i][j] {
                                le[i][j] = true;
                                changed = true;
                            }
                            if (lt[i][k] || lt[k][j]) && !lt[i][j] {
                                lt[i][j] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            for &(a, b) in ne.iter() {
                if le[a][b] && !lt[a][b] {
                    lt[a][b] = true;
                    changed = true;
                }
                if le[b][a] && !lt[b][a] {
                    lt[b][a] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 6. Unsatisfiability and derived equalities.
        let mut new_eqs: Vec<Atom> = Vec::new();
        for i in 0..m {
            if lt[i][i] {
                unsat = true;
            }
            for j in (i + 1)..m {
                if le[i][j] && le[j][i] {
                    if ne.contains(&(i, j)) {
                        unsat = true;
                    } else {
                        // Merge on the next build iteration.
                        new_eqs.push(Atom::new(
                            terms[reps[i]].clone(),
                            CmpOp::Eq,
                            terms[reps[j]].clone(),
                        ));
                    }
                }
            }
        }
        if ne.iter().any(|&(a, b)| a == b) {
            unsat = true;
        }

        let closure = PredClosure {
            terms,
            tindex,
            class_of,
            n_classes: m,
            le,
            lt,
            ne,
            class_const,
            unsat,
        };
        (closure, if unsat { Vec::new() } else { new_eqs })
    }

    /// Is the conjunction satisfiable?
    pub fn satisfiable(&self) -> bool {
        !self.unsat
    }

    /// The term universe.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    fn class(&self, t: &Term) -> Option<usize> {
        self.tindex.get(t).map(|&i| self.class_of[i])
    }

    /// Does the conjunction entail `atom`?
    ///
    /// An unsatisfiable conjunction entails everything. Atoms whose column
    /// terms are outside the universe are reported as not entailed
    /// (conservative); constant-constant atoms are decided directly.
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        if self.unsat {
            return true;
        }
        // Constant-constant atoms are decidable without the universe.
        if let (Term::Const(a), Term::Const(b)) = (&atom.lhs, &atom.rhs) {
            if let Some(v) = eval_const_atom(a, atom.op, b) {
                return v;
            }
        }
        let (Some(ci), Some(cj)) = (self.class(&atom.lhs), self.class(&atom.rhs)) else {
            return false;
        };
        match atom.op {
            CmpOp::Eq => ci == cj || (self.le[ci][cj] && self.le[cj][ci]),
            CmpOp::Ne => {
                self.ne.contains(&(ci.min(cj), ci.max(cj))) || self.lt[ci][cj] || self.lt[cj][ci]
            }
            CmpOp::Lt => self.lt[ci][cj],
            CmpOp::Le => ci == cj || self.le[ci][cj],
            CmpOp::Gt => self.lt[cj][ci],
            CmpOp::Ge => ci == cj || self.le[cj][ci],
        }
    }

    /// Does the conjunction entail every one of `atoms`?
    pub fn implies_all<'i>(&self, atoms: impl IntoIterator<Item = &'i Atom>) -> bool {
        atoms.into_iter().all(|a| self.implies_atom(a))
    }

    /// Are two columns entailed equal?
    pub fn cols_equal(&self, a: ColId, b: ColId) -> bool {
        a == b || self.implies_atom(&Atom::col_eq(a, b))
    }

    /// Universe terms entailed equal to `t` (including `t` itself).
    pub fn equal_terms(&self, t: &Term) -> Vec<Term> {
        let Some(c) = self.class(t) else {
            return vec![t.clone()];
        };
        let mut out: Vec<Term> = self
            .terms
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                let ci = self.class_of[i];
                ci == c || (self.le[ci][c] && self.le[c][ci])
            })
            .map(|(_, t)| t.clone())
            .collect();
        if out.is_empty() {
            out.push(t.clone());
        }
        out
    }

    /// The constant a column is bound to, if any.
    pub fn const_of(&self, col: ColId) -> Option<Literal> {
        let c = self.class(&Term::Col(col))?;
        self.class_const[c].clone()
    }

    /// All entailed atoms between terms accepted by `allowed`, in a
    /// non-redundant spanning form:
    /// * per class: a chain of equalities over the allowed members plus a
    ///   binding to the class constant,
    /// * between classes: the strongest entailed relation, stated between
    ///   one allowed representative of each class (constant-constant
    ///   tautologies are skipped).
    pub fn residual_atoms(&self, allowed: impl Fn(&Term) -> bool) -> Vec<Atom> {
        let mut out = Vec::new();
        // Allowed members per class (columns first so anchors are columns).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, t) in self.terms.iter().enumerate() {
            if allowed(t) {
                members[self.class_of[i]].push(i);
            }
        }
        for m in &mut members {
            m.sort_by_key(|&i| match self.terms[i] {
                Term::Col(c) => (0, c),
                Term::Const(_) => (1, i),
            });
        }

        // Intra-class equalities.
        for mem in &members {
            if mem.len() < 2 {
                continue;
            }
            let anchor = &self.terms[mem[0]];
            for &other in &mem[1..] {
                let t = &self.terms[other];
                if matches!(anchor, Term::Const(_)) && matches!(t, Term::Const(_)) {
                    continue;
                }
                out.push(Atom::new(anchor.clone(), CmpOp::Eq, t.clone()).normalized());
            }
        }

        // Inter-class relations between anchors.
        let anchors: Vec<Option<usize>> = members.iter().map(|m| m.first().copied()).collect();
        for ci in 0..self.n_classes {
            let Some(ai) = anchors[ci] else { continue };
            for (cj, anchor_j) in anchors.iter().enumerate().skip(ci + 1) {
                let Some(aj) = *anchor_j else { continue };
                let (ti, tj) = (&self.terms[ai], &self.terms[aj]);
                if matches!(ti, Term::Const(_)) && matches!(tj, Term::Const(_)) {
                    continue;
                }
                let atom = if self.lt[ci][cj] {
                    Some(Atom::new(ti.clone(), CmpOp::Lt, tj.clone()))
                } else if self.lt[cj][ci] {
                    Some(Atom::new(ti.clone(), CmpOp::Gt, tj.clone()))
                } else if self.le[ci][cj] {
                    Some(Atom::new(ti.clone(), CmpOp::Le, tj.clone()))
                } else if self.le[cj][ci] {
                    Some(Atom::new(ti.clone(), CmpOp::Ge, tj.clone()))
                } else if self.ne.contains(&(ci.min(cj), ci.max(cj))) {
                    Some(Atom::new(ti.clone(), CmpOp::Ne, tj.clone()))
                } else {
                    None
                };
                if let Some(a) = atom {
                    out.push(a.normalized());
                }
            }
        }
        out
    }
}

fn eval_const_atom(a: &Literal, op: CmpOp, b: &Literal) -> Option<bool> {
    let ord = const_cmp(a, b);
    Some(match op {
        CmpOp::Eq => ord? == Ordering::Equal,
        // Different, incomparable types are simply unequal.
        CmpOp::Ne => ord.map(|o| o != Ordering::Equal).unwrap_or(true),
        CmpOp::Lt => ord? == Ordering::Less,
        CmpOp::Le => ord? != Ordering::Greater,
        CmpOp::Gt => ord? == Ordering::Greater,
        CmpOp::Ge => ord? != Ordering::Less,
    })
}

/// Cumulative hit/miss counters of a [`ClosureCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClosureCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run [`PredClosure::build`].
    pub misses: u64,
}

impl ClosureCacheStats {
    /// Hits as a fraction of all lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memo table for [`PredClosure::build`], keyed by the full
/// `(atoms, universe)` pair.
///
/// Lookups hash the pair once (with [`DefaultHasher`], whose seed is fixed,
/// so keys are stable within a process) and confirm candidates by full
/// structural equality — a 64-bit collision can therefore never return the
/// wrong closure. Eviction is deliberately *not* an LRU: when the map
/// reaches its cap it is cleared wholesale. Closures are cheap to rebuild
/// relative to maintaining recency chains on every lookup, the working set
/// of a single rewrite search is far below the cap, and the cap exists only
/// to bound memory in long-lived sessions, not to maximize the hit rate.
pub struct ClosureCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

/// The full structural cache key: the (conds, universe) pair.
type CacheKey = (Vec<Atom>, Vec<Term>);

struct CacheInner {
    map: HashMap<u64, Vec<(CacheKey, Arc<PredClosure>)>>,
    len: usize,
    stats: ClosureCacheStats,
}

impl Default for ClosureCache {
    fn default() -> Self {
        // 512 distinct predicate structures comfortably covers the deepest
        // multi-view searches the benchmarks produce (tens of states).
        ClosureCache::with_capacity(512)
    }
}

impl ClosureCache {
    /// A cache that holds at most `capacity` closures.
    pub fn with_capacity(capacity: usize) -> Self {
        ClosureCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                len: 0,
                stats: ClosureCacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    fn key_hash(atoms: &[Atom], universe: &[Term]) -> u64 {
        let mut h = DefaultHasher::new();
        atoms.hash(&mut h);
        universe.hash(&mut h);
        h.finish()
    }

    /// The closure of `atoms` over `universe`, built on first request and
    /// shared thereafter.
    pub fn get_or_build(&self, atoms: &[Atom], universe: &[Term]) -> Arc<PredClosure> {
        let h = Self::key_hash(atoms, universe);
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(bucket) = inner.map.get(&h) {
                if let Some((_, closure)) = bucket
                    .iter()
                    .find(|((a, u), _)| a == atoms && u == universe)
                {
                    let closure = Arc::clone(closure);
                    inner.stats.hits += 1;
                    return closure;
                }
            }
            inner.stats.misses += 1;
        }
        // Build outside the lock so concurrent misses don't serialize; a
        // racing duplicate build is harmless (last insert wins).
        let closure = Arc::new(PredClosure::build(atoms, universe));
        let mut inner = self.inner.lock().unwrap();
        if inner.len >= self.capacity {
            inner.map.clear();
            inner.len = 0;
        }
        inner
            .map
            .entry(h)
            .or_default()
            .push(((atoms.to_vec(), universe.to_vec()), Arc::clone(&closure)));
        inner.len += 1;
        closure
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> ClosureCacheStats {
        self.inner.lock().unwrap().stats
    }
}

/// Are two conjunctions (over a shared implicit universe) equivalent?
pub fn equivalent(a: &[Atom], b: &[Atom]) -> bool {
    let mut universe: Vec<Term> = Vec::new();
    for atom in a.iter().chain(b.iter()) {
        universe.push(atom.lhs.clone());
        universe.push(atom.rhs.clone());
    }
    let ca = PredClosure::build(a, &universe);
    let cb = PredClosure::build(b, &universe);
    ca.implies_all(b.iter()) && cb.implies_all(a.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(c: ColId) -> Term {
        Term::Col(c)
    }
    fn k(v: i64) -> Term {
        Term::Const(Literal::Int(v))
    }
    fn atom(l: Term, op: CmpOp, r: Term) -> Atom {
        Atom::new(l, op, r)
    }

    #[test]
    fn equality_is_transitive() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Eq, col(2)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(2))));
        assert!(c.implies_atom(&atom(col(2), CmpOp::Eq, col(0))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Ne, col(2))));
    }

    #[test]
    fn order_is_transitive_with_strictness() {
        let atoms = vec![
            atom(col(0), CmpOp::Le, col(1)),
            atom(col(1), CmpOp::Lt, col(2)),
            atom(col(2), CmpOp::Le, col(3)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(3))));
        assert!(c.implies_atom(&atom(col(0), CmpOp::Le, col(3))));
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(3))));
        assert!(c.implies_atom(&atom(col(3), CmpOp::Gt, col(0))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
    }

    #[test]
    fn equality_substitutes_into_order() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Lt, col(2)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(2))));
    }

    #[test]
    fn antisymmetry_derives_equality() {
        let atoms = vec![
            atom(col(0), CmpOp::Le, col(1)),
            atom(col(1), CmpOp::Le, col(0)),
            atom(col(1), CmpOp::Ne, col(2)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(1))));
        // The derived equality must substitute: 0 = 1 ∧ 1 ≠ 2 ⟹ 0 ≠ 2.
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(2))));
    }

    #[test]
    fn le_and_ne_strengthen_to_lt() {
        let atoms = vec![
            atom(col(0), CmpOp::Le, col(1)),
            atom(col(0), CmpOp::Ne, col(1)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
    }

    #[test]
    fn constants_are_ordered() {
        let atoms = vec![atom(col(0), CmpOp::Le, k(3)), atom(col(1), CmpOp::Ge, k(5))];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(1))));
    }

    #[test]
    fn int_and_double_constants_identify() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, k(3)),
            atom(col(1), CmpOp::Eq, Term::Const(Literal::Double(3.0))),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(1))));
    }

    #[test]
    fn contradiction_detected_via_cycle() {
        let atoms = vec![
            atom(col(0), CmpOp::Lt, col(1)),
            atom(col(1), CmpOp::Lt, col(0)),
        ];
        assert!(!PredClosure::build(&atoms, &[]).satisfiable());
    }

    #[test]
    fn contradiction_detected_via_constants() {
        let atoms = vec![atom(col(0), CmpOp::Eq, k(3)), atom(col(0), CmpOp::Eq, k(4))];
        assert!(!PredClosure::build(&atoms, &[]).satisfiable());
        let atoms = vec![atom(col(0), CmpOp::Gt, k(5)), atom(col(0), CmpOp::Lt, k(2))];
        assert!(!PredClosure::build(&atoms, &[]).satisfiable());
    }

    #[test]
    fn contradiction_detected_via_ne_eq() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(0), CmpOp::Ne, col(1)),
        ];
        assert!(!PredClosure::build(&atoms, &[]).satisfiable());
    }

    #[test]
    fn unsat_implies_everything() {
        let atoms = vec![atom(k(1), CmpOp::Eq, k(2))];
        let c = PredClosure::build(&atoms, &[col(0), col(1)]);
        assert!(!c.satisfiable());
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(1))));
    }

    #[test]
    fn const_const_atoms_decided_directly() {
        let c = PredClosure::build(&[], &[]);
        assert!(c.implies_atom(&atom(k(1), CmpOp::Lt, k(2))));
        assert!(!c.implies_atom(&atom(k(2), CmpOp::Lt, k(1))));
        assert!(c.implies_atom(&atom(
            Term::Const(Literal::Str("a".into())),
            CmpOp::Ne,
            k(1)
        )));
    }

    #[test]
    fn unknown_columns_are_not_entailed() {
        let c = PredClosure::build(&[], &[]);
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Eq, col(1))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Eq, col(0))));
    }

    #[test]
    fn reflexive_entailments_hold_for_known_columns() {
        let c = PredClosure::build(&[], &[col(0)]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(0))));
        assert!(c.implies_atom(&atom(col(0), CmpOp::Le, col(0))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Lt, col(0))));
    }

    #[test]
    fn equal_terms_lists_class() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Eq, k(7)),
            atom(col(2), CmpOp::Le, col(0)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        let mut eq = c.equal_terms(&col(0));
        eq.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(eq.len(), 3);
        assert_eq!(c.const_of(0), Some(Literal::Int(7)));
        assert_eq!(c.const_of(2), None);
    }

    #[test]
    fn residual_restricted_to_allowed_terms() {
        // Conds: 0 = 1 ∧ 1 = 2 ∧ 3 < 4. Allowed: {0, 2, 3, 4} (and consts).
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Eq, col(2)),
            atom(col(3), CmpOp::Lt, col(4)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        let allowed = |t: &Term| match t {
            Term::Col(i) => [0usize, 2, 3, 4].contains(i),
            Term::Const(_) => true,
        };
        let res = c.residual_atoms(allowed);
        assert!(res.contains(&Atom::col_eq(0, 2)));
        assert!(res.contains(&atom(col(3), CmpOp::Lt, col(4))));
        // Column 1 must never appear.
        for a in &res {
            for t in [&a.lhs, &a.rhs] {
                assert_ne!(t, &col(1), "column 1 leaked into residual: {res:?}");
            }
        }
    }

    #[test]
    fn residual_reconstructs_original() {
        // Example 3.1 shape: A=C ∧ B=6 ∧ D=6 with view enforcing A=C ∧ B=D.
        // Allowed residual terms: {C, D} (the view's SELECT columns) and
        // constants. Expected residual: D = 6 (or an equivalent).
        let q_atoms = vec![
            atom(col(0), CmpOp::Eq, col(2)),
            atom(col(1), CmpOp::Eq, k(6)),
            atom(col(3), CmpOp::Eq, k(6)),
        ];
        let v_atoms = vec![
            atom(col(0), CmpOp::Eq, col(2)),
            atom(col(1), CmpOp::Eq, col(3)),
        ];
        let cq = PredClosure::build(&q_atoms, &[]);
        assert!(cq.implies_all(v_atoms.iter()));
        let allowed = |t: &Term| match t {
            Term::Col(i) => [2usize, 3].contains(i),
            Term::Const(_) => true,
        };
        let residual = cq.residual_atoms(allowed);
        // v_atoms ∧ residual must imply q_atoms (and vice versa holds by
        // construction).
        let mut combined = v_atoms.clone();
        combined.extend(residual.clone());
        let cc = PredClosure::build(&combined, &[]);
        assert!(
            cc.implies_all(q_atoms.iter()),
            "residual {residual:?} too weak"
        );
    }

    #[test]
    fn equivalent_conjunctions() {
        let a = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Lt, k(5)),
        ];
        let b = vec![
            atom(col(1), CmpOp::Eq, col(0)),
            atom(col(0), CmpOp::Lt, k(5)),
        ];
        assert!(equivalent(&a, &b));
        let c = vec![atom(col(0), CmpOp::Eq, col(1))];
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn string_constants_order() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, Term::Const(Literal::Str("apple".into()))),
            atom(col(1), CmpOp::Eq, Term::Const(Literal::Str("pear".into()))),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(1))));
    }

    #[test]
    fn incomparable_constants_are_ne_but_unordered() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, Term::Const(Literal::Str("x".into()))),
            atom(col(1), CmpOp::Eq, k(5)),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(1))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
        assert!(!c.implies_atom(&atom(col(0), CmpOp::Gt, col(1))));
    }

    #[test]
    fn boolean_constants() {
        let t = Term::Const(Literal::Bool(true));
        let f = Term::Const(Literal::Bool(false));
        let atoms = vec![
            atom(col(0), CmpOp::Eq, t.clone()),
            atom(col(1), CmpOp::Eq, f.clone()),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.satisfiable());
        assert!(c.implies_atom(&atom(col(0), CmpOp::Ne, col(1))));
        // false < true under the boolean order.
        assert!(c.implies_atom(&atom(col(1), CmpOp::Lt, col(0))));
        // Contradiction: both booleans on one column.
        let bad = vec![atom(col(0), CmpOp::Eq, t), atom(col(0), CmpOp::Eq, f)];
        assert!(!PredClosure::build(&bad, &[]).satisfiable());
    }

    #[test]
    fn double_constant_ordering() {
        let atoms = vec![
            atom(col(0), CmpOp::Le, Term::Const(Literal::Double(2.5))),
            atom(col(1), CmpOp::Ge, Term::Const(Literal::Double(2.75))),
        ];
        let c = PredClosure::build(&atoms, &[]);
        assert!(c.implies_atom(&atom(col(0), CmpOp::Lt, col(1))));
        // Mixed int/double bound: 2 < 2.5.
        assert!(c.implies_atom(&atom(
            Term::Const(Literal::Int(2)),
            CmpOp::Lt,
            Term::Const(Literal::Double(2.5))
        )));
    }

    #[test]
    fn string_and_number_never_ordered() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, Term::Const(Literal::Str("x".into()))),
            atom(col(0), CmpOp::Lt, Term::Const(Literal::Int(5))),
        ];
        // `x < 5` over a string-bound column is not refutable by the
        // order reasoner (types are the engine's concern), but the
        // incomparable constants stay unordered.
        let c = PredClosure::build(&atoms, &[]);
        assert!(!c.implies_atom(&atom(
            Term::Const(Literal::Str("x".into())),
            CmpOp::Lt,
            Term::Const(Literal::Int(99))
        )));
    }

    #[test]
    fn cache_hits_on_identical_key_and_caps_size() {
        let atoms = vec![atom(col(0), CmpOp::Eq, col(1))];
        let universe = vec![col(0), col(1), col(2)];
        let cache = ClosureCache::with_capacity(4);
        let a = cache.get_or_build(&atoms, &universe);
        let b = cache.get_or_build(&atoms, &universe);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), ClosureCacheStats { hits: 1, misses: 1 });
        // Different universe → different entry.
        let c = cache.get_or_build(&atoms, &[col(0), col(1)]);
        assert!(!Arc::ptr_eq(&a, &c));
        // Overflowing the cap evicts (wholesale) but stays correct.
        for i in 0..10 {
            let extra = vec![atom(col(i), CmpOp::Le, k(i as i64))];
            let cl = cache.get_or_build(&extra, &[]);
            assert!(cl.implies_atom(&atom(col(i), CmpOp::Le, k(i as i64))));
        }
        let refreshed = cache.get_or_build(&atoms, &universe);
        assert!(refreshed.implies_atom(&atom(col(0), CmpOp::Eq, col(1))));
    }

    #[test]
    fn cached_closure_equals_direct_build() {
        let atoms = vec![
            atom(col(0), CmpOp::Eq, col(1)),
            atom(col(1), CmpOp::Lt, k(5)),
        ];
        let universe = vec![col(0), col(1), col(2)];
        let cache = ClosureCache::default();
        let cached = cache.get_or_build(&atoms, &universe);
        let direct = PredClosure::build(&atoms, &universe);
        for a in [
            atom(col(0), CmpOp::Lt, k(5)),
            atom(col(0), CmpOp::Eq, col(2)),
            atom(col(2), CmpOp::Ge, col(0)),
        ] {
            assert_eq!(cached.implies_atom(&a), direct.implies_atom(&a));
        }
    }

    #[test]
    fn chain_of_constants_cycle_unsat() {
        // 0 ≤ 1, 1 ≤ 2, 2 ≤ 0, 0 = 1 is fine; adding 1 ≠ 2 is not: the
        // cycle forces 0 = 1 = 2.
        let base = vec![
            atom(col(0), CmpOp::Le, col(1)),
            atom(col(1), CmpOp::Le, col(2)),
            atom(col(2), CmpOp::Le, col(0)),
        ];
        let c = PredClosure::build(&base, &[]);
        assert!(c.satisfiable());
        assert!(c.implies_atom(&atom(col(0), CmpOp::Eq, col(2))));
        let mut bad = base.clone();
        bad.push(atom(col(1), CmpOp::Ne, col(2)));
        assert!(!PredClosure::build(&bad, &[]).satisfiable());
    }
}
