//! View selection — the paper's stated future work ("developing
//! strategies for determining which views to cache", Section 7).
//!
//! Given a query, the advisor synthesizes candidate *summary views* over
//! subsets of the query's `FROM` occurrences: each candidate groups by the
//! columns the rest of the query needs (grouping columns, join columns,
//! selected columns), carries the query's aggregates over its own columns,
//! and always includes a `COUNT` column so multiplicities stay
//! recoverable. Every candidate is validated by running the rewriter
//! itself — a suggestion is only emitted if the query provably rewrites to
//! use it — and ranked by estimated benefit under the cost model.
//!
//! This is exactly the \[CS94\]/\[YL94\] group-by pushdown space seen through
//! the paper's lens (Section 6: "their transformations … are special cases
//! of our conditions of view usability").

use crate::canon::{AggExpr, AggSpec, Canonical, ColId, SelItem, Term};
use crate::cost::{estimate_cost, TableStats};
use crate::rewrite::{RewriteOptions, Rewriter, Rewriting, ViewDef};
use aggview_catalog::Catalog;
use aggview_sql::ast::Query;
use std::collections::BTreeSet;

/// A validated view suggestion.
#[derive(Debug, Clone)]
pub struct ViewSuggestion {
    /// The suggested view definition.
    pub view: ViewDef,
    /// The rewriting of the input query that uses it.
    pub rewriting: Rewriting,
    /// Estimated cost of the original query.
    pub original_cost: f64,
    /// Estimated cost of the rewriting (with the view's estimated size).
    pub rewritten_cost: f64,
}

impl ViewSuggestion {
    /// Estimated benefit (positive = the view pays off).
    pub fn benefit(&self) -> f64 {
        self.original_cost - self.rewritten_cost
    }
}

/// Grouping-output shrink factor assumed when estimating a summary view's
/// cardinality (each grouping column reduces the base cardinality by this
/// factor, floored at 1 row).
const GROUP_SHRINK: f64 = 0.1;

/// Suggest materialized views for `query`. Suggestions are validated
/// through [`Rewriter::rewrite`] and sorted by descending benefit.
///
/// ```
/// use aggview_catalog::{Catalog, TableSchema};
/// use aggview_core::{advisor::suggest_views, TableStats};
/// use aggview_sql::parse_query;
///
/// let mut catalog = Catalog::new();
/// catalog.add_table(TableSchema::new("Facts", ["Dim", "M"])).unwrap();
/// let mut stats = TableStats::new();
/// stats.set("Facts", 1_000_000);
///
/// let q = parse_query("SELECT Dim, SUM(M) FROM Facts GROUP BY Dim").unwrap();
/// let suggestions = suggest_views(&q, &catalog, &stats).unwrap();
/// assert!(suggestions[0].benefit() > 0.0);
/// assert!(suggestions[0].view.query.to_string().contains("GROUP BY"));
/// ```
pub fn suggest_views(
    query: &Query,
    catalog: &Catalog,
    stats: &TableStats,
) -> Result<Vec<ViewSuggestion>, crate::rewrite::RewriteError> {
    let canonical =
        Canonical::from_query(query, catalog).map_err(crate::rewrite::RewriteError::Query)?;
    if !canonical.is_plain() {
        return Ok(Vec::new());
    }

    let n = canonical.tables.len();
    // Bounded subset enumeration (the FROM lists of single-block queries
    // are small; 2^8 = 256 candidates at most).
    if n > 8 {
        return Ok(Vec::new());
    }
    let mut suggestions: Vec<ViewSuggestion> = Vec::new();
    let mut seen_defs: BTreeSet<String> = BTreeSet::new();

    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let Some(candidate) = synthesize(&canonical, &subset) else {
            continue;
        };
        let view_sql = candidate.to_query();
        let key = view_sql.to_string();
        if !seen_defs.insert(key) {
            continue;
        }
        let name = format!("Suggested{}", suggestions.len() + 1);
        let view = ViewDef::new(name.clone(), view_sql);

        // Validate through the rewriter (single-view, single-step).
        let rewriter = Rewriter::with_options(
            catalog,
            RewriteOptions {
                multi_view: false,
                max_rewritings: 4,
                ..RewriteOptions::default()
            },
        );
        let rewritings = rewriter.rewrite(query, std::slice::from_ref(&view))?;
        let Some(rewriting) = rewritings.into_iter().next() else {
            continue;
        };

        // Benefit estimate: size the view by its base tables shrunk per
        // grouping column.
        let mut with_view = stats.clone();
        let base_product: f64 = subset
            .iter()
            .map(|&occ| stats.get(&canonical.tables[occ].base) as f64)
            .product();
        let est_view_rows =
            (base_product * GROUP_SHRINK.powi(candidate.groups.len().min(6) as i32)).max(1.0);
        with_view.set(name, est_view_rows as usize);
        let original_cost = estimate_cost(query, stats);
        let rewritten_cost = rewriting.cost(&with_view);
        suggestions.push(ViewSuggestion {
            view,
            rewriting,
            original_cost,
            rewritten_cost,
        });
    }

    suggestions.sort_by(|a, b| b.benefit().partial_cmp(&a.benefit()).expect("finite costs"));
    Ok(suggestions)
}

/// Build the candidate summary view over the chosen occurrences, in
/// canonical form; `None` when the subset cannot support a useful summary.
fn synthesize(query: &Canonical, subset: &[usize]) -> Option<Canonical> {
    let in_subset = |c: ColId| subset.contains(&query.columns[c].occ);

    // Columns of the subset that the rest of the query interacts with.
    let mut exposed: Vec<ColId> = Vec::new();
    let push = |c: ColId, exposed: &mut Vec<ColId>| {
        if in_subset(c) && !exposed.contains(&c) {
            exposed.push(c);
        }
    };
    for &g in &query.groups {
        push(g, &mut exposed);
    }
    for c in query.col_sel() {
        push(c, &mut exposed);
    }
    // Conditions crossing the subset boundary (or whose other side is a
    // constant the view should *not* absorb — absorbing filters narrows
    // reusability; here we absorb subset-local conditions and expose the
    // columns of crossing ones).
    let mut local_atoms = Vec::new();
    for atom in &query.conds {
        let cols: Vec<ColId> = [&atom.lhs, &atom.rhs]
            .iter()
            .filter_map(|t| match t {
                Term::Col(c) => Some(*c),
                Term::Const(_) => None,
            })
            .collect();
        let all_in = cols.iter().all(|&c| in_subset(c));
        let any_in = cols.iter().any(|&c| in_subset(c));
        if all_in && !cols.is_empty() {
            local_atoms.push(atom.clone());
        } else if any_in {
            for &c in &cols {
                push(c, &mut exposed);
            }
        }
    }

    // Aggregates: those over subset columns move into the view; any other
    // SUM/COUNT/AVG in the query needs the COUNT column (always added).
    let mut view_aggs: Vec<AggSpec> = Vec::new();
    for agg in query.agg_exprs() {
        let AggExpr::Plain(spec) = agg else {
            return None;
        };
        match spec.arg {
            Some(a) if in_subset(a) => {
                // AVG decomposes into SUM + COUNT; COUNT is added anyway.
                let func = match spec.func {
                    aggview_sql::AggFunc::Avg => aggview_sql::AggFunc::Sum,
                    aggview_sql::AggFunc::Count => continue,
                    f => f,
                };
                let candidate = AggSpec { func, arg: Some(a) };
                if !view_aggs.contains(&candidate) {
                    view_aggs.push(candidate);
                }
            }
            _ => {}
        }
    }

    // A summary needs something to group by; and grouping by *every*
    // column of the subset would make the view as large as the data.
    if exposed.is_empty() {
        return None;
    }
    let subset_cols: usize = subset.iter().map(|&o| query.tables[o].arity).sum();
    if exposed.len() >= subset_cols {
        return None;
    }

    let mut view = Canonical::empty();
    // Rebuild the subset occurrences with fresh ids.
    let mut col_map: Vec<Option<ColId>> = vec![None; query.n_cols()];
    for &occ in subset {
        let t = &query.tables[occ];
        let names: Vec<String> = t.cols().map(|c| query.columns[c].name.clone()).collect();
        let new_occ = view.add_table(t.base.clone(), names);
        for (pos, c) in t.cols().enumerate() {
            col_map[c] = Some(view.col_of(new_occ, pos));
        }
    }
    let m = |c: ColId| col_map[c].expect("subset column");

    view.select = exposed.iter().map(|&c| SelItem::Col(m(c))).collect();
    view.groups = exposed.iter().map(|&c| m(c)).collect();
    for spec in &view_aggs {
        view.select.push(SelItem::Agg(AggExpr::Plain(AggSpec {
            func: spec.func,
            arg: spec.arg.map(m),
        })));
    }
    // The multiplicity column.
    view.select.push(SelItem::Agg(AggExpr::Plain(AggSpec {
        func: aggview_sql::AggFunc::Count,
        arg: Some(view.col_of(0, 0)),
    })));
    view.conds = local_atoms
        .iter()
        .map(|a| {
            let mt = |t: &Term| match t {
                Term::Col(c) => Term::Col(m(*c)),
                Term::Const(l) => Term::Const(l.clone()),
            };
            crate::canon::Atom::new(mt(&a.lhs), a.op, mt(&a.rhs))
        })
        .collect();
    Some(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::TableSchema;
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("Facts", ["K", "Dim", "M"]))
            .unwrap();
        cat.add_table(TableSchema::new("Dims", ["D", "Name"]))
            .unwrap();
        cat
    }

    fn stats() -> TableStats {
        let mut s = TableStats::new();
        s.set("Facts", 1_000_000).set("Dims", 100);
        s
    }

    #[test]
    fn suggests_pushdown_summary_for_join_aggregate() {
        let q = parse_query("SELECT Name, SUM(M) FROM Facts, Dims WHERE Dim = D GROUP BY Name")
            .unwrap();
        let suggestions = suggest_views(&q, &catalog(), &stats()).unwrap();
        assert!(!suggestions.is_empty());
        let best = &suggestions[0];
        assert!(
            best.benefit() > 0.0,
            "summary must pay off on a huge fact table"
        );
        // The winning suggestion summarizes Facts by the join column.
        let sql = best.view.query.to_string();
        assert!(sql.contains("FROM Facts"), "got {sql}");
        assert!(sql.contains("GROUP BY"), "got {sql}");
        assert!(sql.contains("SUM"), "got {sql}");
        // And the rewriting actually uses it.
        assert_eq!(best.rewriting.views_used, vec![best.view.name.clone()]);
    }

    #[test]
    fn no_suggestion_for_plain_scan() {
        // SELECT * style query: grouping by everything would not shrink.
        let q = parse_query("SELECT K, Dim, M FROM Facts").unwrap();
        let suggestions = suggest_views(&q, &catalog(), &stats()).unwrap();
        assert!(suggestions.is_empty());
    }

    #[test]
    fn single_table_rollup_suggested() {
        let q = parse_query("SELECT Dim, SUM(M), COUNT(M) FROM Facts GROUP BY Dim").unwrap();
        let suggestions = suggest_views(&q, &catalog(), &stats()).unwrap();
        assert!(!suggestions.is_empty());
        let best = &suggestions[0];
        assert!(best.view.query.to_string().contains("GROUP BY Facts.Dim"));
    }

    #[test]
    fn local_filters_are_absorbed() {
        let q = parse_query("SELECT Dim, SUM(M) FROM Facts WHERE K > 100 GROUP BY Dim").unwrap();
        let suggestions = suggest_views(&q, &catalog(), &stats()).unwrap();
        // Some suggestion must absorb the filter... or expose K. Either
        // way, the rewriter validated it — just check one exists.
        assert!(!suggestions.is_empty());
    }

    #[test]
    fn suggestions_are_validated_rewritings() {
        let q = parse_query(
            "SELECT Name, SUM(M), COUNT(M) FROM Facts, Dims WHERE Dim = D GROUP BY Name",
        )
        .unwrap();
        for s in suggest_views(&q, &catalog(), &stats()).unwrap() {
            assert!(!s.rewriting.views_used.is_empty());
            assert!(s.original_cost.is_finite() && s.rewritten_cost.is_finite());
        }
    }
}
