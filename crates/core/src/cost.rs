//! A simple cardinality-based cost model for ranking rewritings.
//!
//! The paper motivates view usage by cardinality ("the materialized view is
//! likely to be orders of magnitude smaller than the `Calls` table"); this
//! model captures exactly that signal. It is deliberately simple — the
//! paper's future work points at integration with a cost-based optimizer
//! \[CKPS95\]; here we only need a sensible ranking for the API and the
//! benchmark harness.

use aggview_sql::ast::Query;
use std::collections::HashMap;

/// Per-relation row counts used for cost estimation.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    rows: HashMap<String, usize>,
}

impl TableStats {
    /// Empty stats (every table gets [`TableStats::DEFAULT_ROWS`]).
    pub fn new() -> Self {
        TableStats::default()
    }

    /// Assumed cardinality for tables without statistics.
    pub const DEFAULT_ROWS: usize = 1000;

    /// Record a row count.
    pub fn set(&mut self, table: impl Into<String>, rows: usize) -> &mut Self {
        self.rows.insert(table.into(), rows);
        self
    }

    /// The recorded (or default) row count.
    pub fn get(&self, table: &str) -> usize {
        self.rows.get(table).copied().unwrap_or(Self::DEFAULT_ROWS)
    }

    /// Does the table have recorded statistics?
    pub fn has(&self, table: &str) -> bool {
        self.rows.contains_key(table)
    }
}

/// Estimate the evaluation cost of a single-block query: the scan cost of
/// its `FROM` relations plus an estimated join-output cardinality, where
/// each equality conjunct contributes a selectivity factor of `0.1`.
pub fn estimate_cost(query: &Query, stats: &TableStats) -> f64 {
    let scan: f64 = query.from.iter().map(|t| stats.get(&t.table) as f64).sum();
    let product: f64 = query
        .from
        .iter()
        .map(|t| stats.get(&t.table) as f64)
        .product();
    let n_preds = query
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().len())
        .unwrap_or(0);
    let selectivity = 0.1f64.powi(n_preds.min(8) as i32);
    scan + product * selectivity
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_query;

    #[test]
    fn stats_lookup_with_default() {
        let mut s = TableStats::new();
        s.set("Calls", 1_000_000);
        assert_eq!(s.get("Calls"), 1_000_000);
        assert_eq!(s.get("Unknown"), TableStats::DEFAULT_ROWS);
        assert!(s.has("Calls"));
        assert!(!s.has("Unknown"));
    }

    #[test]
    fn smaller_view_wins() {
        let mut s = TableStats::new();
        s.set("Calls", 1_000_000)
            .set("Calling_Plans", 10)
            .set("V1", 240);
        let original = parse_query(
            "SELECT Plan_Id, SUM(Charge) FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 GROUP BY Plan_Id",
        )
        .unwrap();
        let rewritten = parse_query(
            "SELECT Plan_Id, SUM(Monthly_Earnings) FROM V1 WHERE Year = 1995 GROUP BY Plan_Id",
        )
        .unwrap();
        assert!(estimate_cost(&rewritten, &s) < estimate_cost(&original, &s));
    }

    #[test]
    fn predicates_reduce_estimated_output() {
        let s = TableStats::new();
        let loose = parse_query("SELECT a FROM t, u").unwrap();
        let tight = parse_query("SELECT a FROM t, u WHERE a = b").unwrap();
        assert!(estimate_cost(&tight, &s) < estimate_cost(&loose, &s));
    }
}
