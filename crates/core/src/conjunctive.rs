//! Aggregation queries and conjunctive views — Section 3 of the paper.
//!
//! Given a query `Q` (with or without grouping/aggregation), a *conjunctive*
//! view `V` (no grouping, aggregation, or HAVING), and a 1-1 column mapping
//! φ (condition C1), this module checks conditions **C2–C4** and applies the
//! rewriting steps **S1–S4**:
//!
//! * **C2** — every column of `ColSel(Q) ∪ Groups(Q)` in φ's image has an
//!   equal column (`B_A`) in `Sel(V)` (equality entailed by `Conds(Q)`).
//! * **C3** — `Conds(Q) ≡ φ(Conds(V)) ∧ Conds'`, where `Conds'` mentions
//!   only columns outside φ's image and columns of `φ(Sel(V))`.
//! * **C4** — every `AGG(A)` with `A` in the image has an equal `B_A` in
//!   `Sel(V)` (for MIN/MAX/SUM), or — for COUNT — any view column (the view
//!   preserves multiplicities, so any column counts rows).
//!
//! Section 3.3 extensions (HAVING) are handled upstream by
//! [`crate::having::normalize_having`] plus the C4 treatment of aggregation
//! columns that occur only in `GConds(Q)` (this module processes them
//! uniformly with `Sel(Q)` aggregates).
//!
//! Theorem 3.1: the conditions are sufficient, and — for equality-only
//! predicates — necessary.

use crate::canon::{AggExpr, AggSpec, Atom, Canonical, ColId, GAtom, GTerm, SelItem, Term};
use crate::closure::PredClosure;
use crate::explain::WhyNot;
use crate::frame::Frame;
use crate::mapping::Mapping;
use aggview_sql::ast::AggFunc;
use std::collections::HashMap;

/// Is `view` a conjunctive query (no grouping/aggregation/HAVING/DISTINCT)?
pub fn is_conjunctive(view: &Canonical) -> bool {
    !view.distinct && !view.is_aggregation_query()
}

/// Conjunctive up to duplicate elimination: no grouping/aggregation/HAVING,
/// but `SELECT DISTINCT` allowed. The Section 5 set-semantics machinery
/// accepts this shape (a DISTINCT result is a set by definition).
pub fn is_conjunctive_core(q: &Canonical) -> bool {
    !q.is_aggregation_query()
}

/// Check C2–C4 for the given mapping and, if they hold, apply S1–S4.
///
/// `q_closure` must be the closure of `Conds(Q)` over a universe containing
/// every query column and every constant of `Conds(Q)` and `Conds(V)`.
/// Returns the rewritten query in canonical form (its view occurrence uses
/// `view_name` with output columns `view_out_names`).
pub fn rewrite_conjunctive(
    query: &Canonical,
    view: &Canonical,
    view_name: &str,
    view_out_names: &[String],
    mapping: &Mapping,
    q_closure: &PredClosure,
) -> Result<Canonical, WhyNot> {
    debug_assert!(is_conjunctive_core(view));
    debug_assert_eq!(view_out_names.len(), view.select.len());

    let image = mapping.image_cols(query);

    // φ(Sel(V)): which query columns are *syntactically* exposed, and by
    // which SELECT position. (C3 restricts Conds' to these; the looser
    // equality-based exposure is only valid for the S2/S4 substitutions.)
    let mut syntactic_expose: HashMap<ColId, usize> = HashMap::new();
    for (i, item) in view.select.iter().enumerate() {
        let SelItem::Col(b) = item else {
            unreachable!("conjunctive views select only columns");
        };
        let qcol = mapping.map_col(view, query, *b);
        syntactic_expose.entry(qcol).or_insert(i);
    }

    // Equality-based exposure for steps S2/S4: the first SELECT position
    // whose mapped column is entailed equal to `qcol` by Conds(Q).
    let expose = |qcol: ColId| -> Option<usize> {
        if let Some(&i) = syntactic_expose.get(&qcol) {
            return Some(i);
        }
        view.select.iter().enumerate().find_map(|(i, item)| {
            let SelItem::Col(b) = item else { return None };
            let mapped = mapping.map_col(view, query, *b);
            q_closure.cols_equal(qcol, mapped).then_some(i)
        })
    };

    // --- Condition C2 ---------------------------------------------------
    let mut needed_cols: Vec<ColId> = query.col_sel();
    needed_cols.extend(query.groups.iter().copied());
    for &a in &needed_cols {
        if image[a] && expose(a).is_none() {
            return Err(WhyNot::SelectColumnNotExposed {
                column: query.columns[a].name.clone(),
            });
        }
    }

    // --- Condition C3 ---------------------------------------------------
    let mapped_vconds: Vec<Atom> = view
        .conds
        .iter()
        .map(|a| mapping.map_atom(view, query, a))
        .collect();
    // Fault-injection hook for the differential harness (`crates/qcheck`):
    // skipping the first half of C3 silently accepts views whose own
    // conditions discard tuples the query needs — a classic soundness bug
    // the harness must catch. Never set outside harness self-tests.
    if !unsound_skip_c3() {
        for atom in &mapped_vconds {
            if !q_closure.implies_atom(atom) {
                return Err(WhyNot::ViewCondsNotImplied {
                    atom: format!("{atom:?}"),
                });
            }
        }
    }
    let allowed = |t: &Term| match t {
        Term::Col(c) => !image[*c] || syntactic_expose.contains_key(c),
        Term::Const(_) => true,
    };
    let residual = derive_residual(q_closure, &query.conds, &mapped_vconds, allowed)
        .ok_or(WhyNot::NoResidual)?;

    // --- Condition C4 ---------------------------------------------------
    // Aggregates from Sel(Q) and GConds(Q) (Section 3.3) alike. Determine,
    // per aggregate, how each image column it references translates.
    for agg in query.agg_exprs() {
        check_c4(agg, &image, &expose, query, view)?;
    }

    // --- Steps S1–S4 ----------------------------------------------------
    let mut frame = Frame::build(query, &mapping.image_occs(), view_name, view_out_names);

    // Column translation for SELECT/GROUP BY/aggregates (S2) — image
    // columns go to their equality-exposed view output.
    let trans = |c: ColId, frame: &Frame| -> Option<ColId> {
        if image[c] {
            expose(c).map(|i| frame.view_col(i))
        } else {
            frame.trans_keep[c]
        }
    };
    // Residual translation (S3) — image columns go to their *syntactic*
    // exposure.
    let trans_residual = |c: ColId, frame: &Frame| -> Option<ColId> {
        if image[c] {
            syntactic_expose.get(&c).map(|&i| frame.view_col(i))
        } else {
            frame.trans_keep[c]
        }
    };

    let trans_agg = |agg: &AggExpr, frame: &Frame| -> AggExpr {
        translate_agg(agg, &image, &expose, frame, &trans)
    };

    frame.new_q.select = query
        .select
        .iter()
        .map(|item| match item {
            SelItem::Col(c) => SelItem::Col(trans(*c, &frame).expect("C2 checked")),
            SelItem::Agg(a) => SelItem::Agg(trans_agg(a, &frame)),
        })
        .collect();
    frame.new_q.groups = query
        .groups
        .iter()
        .map(|&c| trans(c, &frame).expect("C2 checked"))
        .collect();
    frame.new_q.conds = residual
        .iter()
        .map(|a| {
            translate_atom(a, &frame, &trans_residual).expect("residual uses allowed terms only")
        })
        .collect();
    frame.new_q.gconds = query
        .gconds
        .iter()
        .map(|g| GAtom {
            lhs: translate_gterm(&g.lhs, &frame, &trans, &trans_agg),
            op: g.op,
            rhs: translate_gterm(&g.rhs, &frame, &trans, &trans_agg),
        })
        .collect();

    Ok(frame.new_q)
}

/// Is the hidden `AGGVIEW_UNSOUND_SKIP_C3` fault-injection flag set? Read
/// once per process (the parallel search consults this per mapping). Both
/// implementations of the first half of C3 consult it: the check here and
/// the entailment prune inside the search's mapping enumeration (which
/// would otherwise cut the same unsound candidates for efficiency).
pub(crate) fn unsound_skip_c3() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("AGGVIEW_UNSOUND_SKIP_C3").is_some())
}

/// C4 feasibility for one aggregate expression.
fn check_c4(
    agg: &AggExpr,
    image: &[bool],
    expose: &dyn Fn(ColId) -> Option<usize>,
    query: &Canonical,
    _view: &Canonical,
) -> Result<(), WhyNot> {
    let fail = |col: ColId| WhyNot::AggregateNotComputable {
        agg: format!("{agg:?}"),
        missing: format!(
            "column `{}` is aggregated in the query but projected out of the view",
            query.columns[col].name
        ),
    };
    match agg {
        AggExpr::Plain(AggSpec { func, arg }) => match (func, arg) {
            // COUNT's argument only determines multiplicity, which a
            // conjunctive view preserves; S4 substitutes any view column.
            (AggFunc::Count, _) => Ok(()),
            (_, None) => Ok(()),
            (_, Some(a)) => {
                if image[*a] && expose(*a).is_none() {
                    Err(fail(*a))
                } else {
                    Ok(())
                }
            }
        },
        // Extended forms (produced by an earlier aggregation-view step):
        // every referenced column must be translatable.
        other => {
            for c in other.columns() {
                if image[c] && expose(c).is_none() {
                    return Err(fail(c));
                }
            }
            Ok(())
        }
    }
}

/// Translate an aggregate expression under S2/S4.
fn translate_agg(
    agg: &AggExpr,
    image: &[bool],
    expose: &dyn Fn(ColId) -> Option<usize>,
    frame: &Frame,
    trans: &dyn Fn(ColId, &Frame) -> Option<ColId>,
) -> AggExpr {
    let t = |c: ColId| trans(c, frame).expect("C4 checked");
    match agg {
        AggExpr::Plain(AggSpec { func, arg }) => {
            let new_arg = match arg {
                None => None,
                Some(a) => {
                    if image[*a] && expose(*a).is_none() {
                        // S4: COUNT of a projected-out column — count any
                        // view column instead (multiplicity is what counts).
                        debug_assert_eq!(*func, AggFunc::Count);
                        Some(frame.view_col(0))
                    } else {
                        Some(t(*a))
                    }
                }
            };
            AggExpr::Plain(AggSpec {
                func: *func,
                arg: new_arg,
            })
        }
        AggExpr::Scaled { factor, spec } => AggExpr::Scaled {
            factor: t(*factor),
            spec: AggSpec {
                func: spec.func,
                arg: spec.arg.map(t),
            },
        },
        AggExpr::WeightedSum { weight, arg } => AggExpr::WeightedSum {
            weight: t(*weight),
            arg: t(*arg),
        },
        AggExpr::RatioOfSums { num, den } => AggExpr::RatioOfSums {
            num: t(*num),
            den: t(*den),
        },
        AggExpr::WeightedAvg { weight, arg } => AggExpr::WeightedAvg {
            weight: t(*weight),
            arg: t(*arg),
        },
    }
}

fn translate_atom(
    a: &Atom,
    frame: &Frame,
    trans: &dyn Fn(ColId, &Frame) -> Option<ColId>,
) -> Option<Atom> {
    let tt = |t: &Term| -> Option<Term> {
        match t {
            Term::Col(c) => Some(Term::Col(trans(*c, frame)?)),
            Term::Const(l) => Some(Term::Const(l.clone())),
        }
    };
    Some(Atom::new(tt(&a.lhs)?, a.op, tt(&a.rhs)?))
}

fn translate_gterm(
    t: &GTerm,
    frame: &Frame,
    trans: &dyn Fn(ColId, &Frame) -> Option<ColId>,
    trans_agg: &dyn Fn(&AggExpr, &Frame) -> AggExpr,
) -> GTerm {
    match t {
        GTerm::Col(c) => GTerm::Col(trans(*c, frame).expect("grouping column translated")),
        GTerm::Const(l) => GTerm::Const(l.clone()),
        GTerm::Agg(a) => GTerm::Agg(trans_agg(a, frame)),
    }
}

/// Derive and minimize a residual `Conds'` (the second half of C3): a set
/// of entailed atoms over allowed terms such that
/// `mapped_vconds ∧ residual ≡ Conds(Q)`. `None` if no such residual exists.
pub(crate) fn derive_residual(
    q_closure: &PredClosure,
    q_conds: &[Atom],
    mapped_vconds: &[Atom],
    allowed: impl Fn(&Term) -> bool,
) -> Option<Vec<Atom>> {
    // An unsatisfiable Conds(Q) means the query is empty on every
    // database; `FALSE ∧ anything` is a correct residual (constants are
    // always allowed terms), making any structurally-mapped view usable.
    if !q_closure.satisfiable() {
        use aggview_sql::ast::{CmpOp, Literal};
        return Some(vec![Atom::new(
            Term::Const(Literal::Int(0)),
            CmpOp::Eq,
            Term::Const(Literal::Int(1)),
        )]);
    }
    let candidate = q_closure.residual_atoms(allowed);
    // Universe: everything in sight.
    let mut universe: Vec<Term> = q_closure.terms().to_vec();
    for a in mapped_vconds.iter().chain(candidate.iter()) {
        universe.push(a.lhs.clone());
        universe.push(a.rhs.clone());
    }

    let entails = |residual: &[Atom]| -> bool {
        let mut combined: Vec<Atom> = mapped_vconds.to_vec();
        combined.extend_from_slice(residual);
        let c = PredClosure::build(&combined, &universe);
        c.implies_all(q_conds.iter())
    };

    if !entails(&candidate) {
        return None;
    }
    // Greedy minimization: drop atoms that are not needed.
    let mut residual = candidate;
    let mut i = 0;
    while i < residual.len() {
        let removed = residual.remove(i);
        if !entails(&residual) {
            residual.insert(i, removed);
            i += 1;
        }
    }
    Some(residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::enumerate_mappings;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    fn closure_of(q: &Canonical, v: &Canonical) -> PredClosure {
        // Universe: the query's columns plus every constant either side
        // mentions (the Rewriter does the same via collect_const_terms).
        let mut universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        for a in q.conds.iter().chain(v.conds.iter()) {
            for t in [&a.lhs, &a.rhs] {
                if matches!(t, Term::Const(_)) {
                    universe.push(t.clone());
                }
            }
        }
        PredClosure::build(&q.conds, &universe)
    }

    /// Try every 1-1 mapping; return the successful rewritings.
    fn rewrite_all(q: &Canonical, v: &Canonical, name: &str, outs: &[&str]) -> Vec<Canonical> {
        let out_names: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        let cl = closure_of(q, v);
        enumerate_mappings(v, q, true, Some(&cl))
            .into_iter()
            .filter_map(|m| rewrite_conjunctive(q, v, name, &out_names, &m, &cl).ok())
            .collect()
    }

    #[test]
    fn example_3_1_rewrites() {
        // Paper Example 3.1.
        let q = canon("SELECT A, SUM(B) FROM R1, R2 WHERE A = C AND B = 6 AND D = 6 GROUP BY A");
        let v = canon("SELECT C, D FROM R1, R2 WHERE A = C AND B = D");
        let rewritings = rewrite_all(&q, &v, "V1", &["C", "D"]);
        assert_eq!(rewritings.len(), 1);
        let rw = &rewritings[0];
        // Q': SELECT C, SUM(D) FROM V1 WHERE D = 6 GROUP BY C.
        assert_eq!(rw.tables.len(), 1);
        assert_eq!(rw.tables[0].base, "V1");
        let sql = rw.to_query().to_string();
        assert_eq!(
            sql,
            "SELECT V1.C, SUM(V1.D) FROM V1 WHERE V1.D = 6 GROUP BY V1.C"
        );
    }

    #[test]
    fn rejects_view_that_discards_needed_tuples() {
        // View enforces B = 5; query does not — C3 first half fails.
        let q = canon("SELECT A, SUM(B) FROM R1 GROUP BY A");
        let v = canon("SELECT A, B FROM R1 WHERE B = 5");
        assert!(rewrite_all(&q, &v, "V", &["A", "B"]).is_empty());
    }

    #[test]
    fn rejects_view_that_projects_out_needed_column() {
        // Query needs SUM(B); view projects B out.
        let q = canon("SELECT A, SUM(B) FROM R1 GROUP BY A");
        let v = canon("SELECT A FROM R1");
        assert!(rewrite_all(&q, &v, "V", &["A"]).is_empty());
    }

    #[test]
    fn count_tolerates_projected_out_column() {
        // COUNT(B) only needs multiplicities — usable even though B is
        // projected out (condition C4 case 2, step S4).
        let q = canon("SELECT A, COUNT(B) FROM R1 GROUP BY A");
        let v = canon("SELECT A FROM R1");
        let rewritings = rewrite_all(&q, &v, "V", &["A"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.A, COUNT(V.A) FROM V GROUP BY V.A"
        );
    }

    #[test]
    fn residual_condition_not_expressible_fails() {
        // Conds(Q) constrains B (via A = B) but the view exposes neither
        // the equality nor B — no residual can reconstruct it.
        let q = canon("SELECT A FROM R1 WHERE A = B");
        let v = canon("SELECT A FROM R1");
        assert!(rewrite_all(&q, &v, "V", &["A"]).is_empty());
    }

    #[test]
    fn view_exposing_both_columns_carries_equality() {
        let q = canon("SELECT A FROM R1 WHERE A = B");
        let v = canon("SELECT A, B FROM R1");
        let rewritings = rewrite_all(&q, &v, "V", &["A", "B"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.A FROM V WHERE V.A = V.B"
        );
    }

    #[test]
    fn partial_replacement_keeps_other_tables() {
        let q = canon("SELECT A, D FROM R1, R2 WHERE A = C AND B = 1");
        let v = canon("SELECT A FROM R1 WHERE B = 1");
        let rewritings = rewrite_all(&q, &v, "V", &["A"]);
        assert_eq!(rewritings.len(), 1);
        let sql = rewritings[0].to_query().to_string();
        assert_eq!(sql, "SELECT V.A, R2.D FROM R2, V WHERE V.A = R2.C");
    }

    #[test]
    fn equality_exposure_substitutes_select_column() {
        // Query selects A; view exposes only C, but Conds(Q) forces A = C
        // — condition C2's B_A via implied equality (the Example 1.1
        // pattern that [GHQ95]-style syntactic matching misses).
        let q = canon("SELECT A FROM R1, R2 WHERE A = C AND D = 2");
        let v = canon("SELECT C, D FROM R1, R2 WHERE A = C");
        let rewritings = rewrite_all(&q, &v, "V", &["C", "D"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.C FROM V WHERE V.D = 2"
        );
    }

    #[test]
    fn having_aggregate_uses_c4() {
        let q = canon("SELECT A FROM R1 GROUP BY A HAVING SUM(B) > 3");
        let v_bad = canon("SELECT A FROM R1");
        assert!(rewrite_all(&q, &v_bad, "V", &["A"]).is_empty());
        let v_ok = canon("SELECT A, B FROM R1");
        let rewritings = rewrite_all(&q, &v_ok, "V", &["A", "B"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.A FROM V GROUP BY V.A HAVING SUM(V.B) > 3"
        );
    }

    #[test]
    fn self_join_view_both_mappings_usable() {
        let q = canon("SELECT x.A, y.B FROM R1 x, R1 y");
        let v = canon("SELECT u.A, u.B, w.A, w.B FROM R1 u, R1 w");
        let rewritings = rewrite_all(&q, &v, "V", &["A1", "B1", "A2", "B2"]);
        // Both assignments of (u,w) to (x,y) work and give distinct
        // (but equivalent) rewritings.
        assert_eq!(rewritings.len(), 2);
        for rw in &rewritings {
            assert_eq!(rw.tables.len(), 1);
            assert_eq!(rw.tables[0].base, "V");
        }
    }

    #[test]
    fn inequality_conditions_supported() {
        let q = canon("SELECT A FROM R1 WHERE A < B AND B <= 10");
        let v = canon("SELECT A, B FROM R1 WHERE A < B");
        let rewritings = rewrite_all(&q, &v, "V", &["A", "B"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.A FROM V WHERE V.B <= 10"
        );
    }

    #[test]
    fn distinct_view_is_not_conjunctive() {
        let v = canon("SELECT DISTINCT A FROM R1");
        assert!(!is_conjunctive(&v));
        let v2 = canon("SELECT A, COUNT(B) FROM R1 GROUP BY A");
        assert!(!is_conjunctive(&v2));
        let v3 = canon("SELECT A FROM R1");
        assert!(is_conjunctive(&v3));
    }

    #[test]
    fn view_with_stronger_inequality_rejected() {
        // View keeps B < 5; query wants B < 10 — the view discards tuples
        // with 5 <= B < 10 that the query needs.
        let q = canon("SELECT A, B FROM R1 WHERE B < 10");
        let v = canon("SELECT A, B FROM R1 WHERE B < 5");
        assert!(rewrite_all(&q, &v, "V", &["A", "B"]).is_empty());
    }

    #[test]
    fn query_with_stronger_inequality_accepted() {
        // View keeps B < 10; query wants B < 5 — residual B < 5 works.
        let q = canon("SELECT A, B FROM R1 WHERE B < 5");
        let v = canon("SELECT A, B FROM R1 WHERE B < 10");
        let rewritings = rewrite_all(&q, &v, "V", &["A", "B"]);
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].to_query().to_string(),
            "SELECT V.A, V.B FROM V WHERE V.B < 5"
        );
    }
}
