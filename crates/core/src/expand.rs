//! The "expand" extension — footnote 3 of the paper (Section 4.5).
//!
//! Section 4.5 proves that an aggregation view can never answer a
//! conjunctive query under multiset semantics: grouping loses tuple
//! multiplicities. Footnote 3 observes the escape hatch: *"if we assume the
//! existence of an interpreted table `Nat(N)` which contains one copy of
//! each of the natural numbers, then it is possible to write the desired
//! SQL query"* — join the view with `Nat` on `Nat.k <= V.count` to
//! replicate each view row `count` times (\[GHQ95\] calls this the *expand*
//! operator).
//!
//! The implementation rests on an identity: the expansion of an
//! aggregation view `V` (by its COUNT column) is multiset-identical to the
//! conjunctive query `SELECT ColSel(V) FROM Tables(V) WHERE Conds(V)`.
//! We therefore synthesize that conjunctive *pseudo-view*, run the
//! Section 3 machinery (conditions C2–C4, steps S1–S4) against it, and
//! then structurally transform the result: the pseudo-view occurrence
//! becomes the real view joined with `Nat` on `k <= count`.
//!
//! The resulting rewriting requires the `Nat` relation to be present in
//! the database, sized at least to the view's maximum COUNT value
//! (`aggview::run::ensure_nat` provides it).

use crate::canon::{AggExpr, AggSpec, Atom, Canonical, ColId, SelItem, Term};
use crate::closure::PredClosure;
use crate::conjunctive::rewrite_conjunctive;
use crate::explain::WhyNot;
use crate::mapping::Mapping;
use aggview_sql::ast::{AggFunc, CmpOp};

/// Name of the interpreted natural-numbers table.
pub const NAT_TABLE: &str = "Nat";
/// Name of its single column.
pub const NAT_COLUMN: &str = "k";

/// Rewrite a *conjunctive* query using an *aggregation* view via the
/// footnote-3 expansion. Returns the rewritten query, which references
/// both the view and the [`NAT_TABLE`] relation.
pub fn rewrite_expand(
    query: &Canonical,
    view: &Canonical,
    view_name: &str,
    view_out_names: &[String],
    mapping: &Mapping,
    q_closure: &PredClosure,
) -> Result<Canonical, WhyNot> {
    if query.is_aggregation_query() {
        return Err(WhyNot::Unsupported {
            reason: "expand applies to conjunctive queries only".into(),
        });
    }
    if !view.gconds.is_empty() || view.distinct {
        return Err(WhyNot::Unsupported {
            reason: "expand over views with HAVING or DISTINCT".into(),
        });
    }

    // Locate the COUNT column and the non-aggregation outputs.
    let mut count_idx: Option<usize> = None;
    let mut colsel: Vec<(usize, ColId)> = Vec::new(); // (view sel idx, view col)
    for (i, item) in view.select.iter().enumerate() {
        match item {
            SelItem::Col(b) => colsel.push((i, *b)),
            SelItem::Agg(AggExpr::Plain(AggSpec {
                func: AggFunc::Count,
                ..
            })) => {
                if count_idx.is_none() {
                    count_idx = Some(i);
                }
            }
            SelItem::Agg(_) => {}
        }
    }
    let count_idx = count_idx.ok_or(WhyNot::AggregateNotComputable {
        agg: "expand".into(),
        missing: "the view exposes no COUNT column to drive the expansion".into(),
    })?;

    // The conjunctive pseudo-view: SELECT ColSel(V) FROM Tables(V) WHERE
    // Conds(V) — multiset-identical to expand(V).
    let pseudo = Canonical {
        distinct: false,
        tables: view.tables.clone(),
        columns: view.columns.clone(),
        select: colsel.iter().map(|&(_, b)| SelItem::Col(b)).collect(),
        conds: view.conds.clone(),
        groups: Vec::new(),
        gconds: Vec::new(),
    };
    let pseudo_out: Vec<String> = colsel
        .iter()
        .map(|&(i, _)| view_out_names[i].clone())
        .collect();

    let rewritten =
        rewrite_conjunctive(query, &pseudo, view_name, &pseudo_out, mapping, q_closure)?;

    // Structural transform: widen the pseudo-view occurrence (last table)
    // back to the full view schema and append the Nat occurrence with the
    // `k <= count` join.
    let pseudo_occ = rewritten.tables.len() - 1;
    let pseudo_first = rewritten.tables[pseudo_occ].first_col;

    let mut out = Canonical::empty();
    out.distinct = rewritten.distinct;
    for t in &rewritten.tables[..pseudo_occ] {
        let names: Vec<String> = t
            .cols()
            .map(|c| rewritten.columns[c].name.clone())
            .collect();
        out.add_table(t.base.clone(), names);
    }
    let view_occ = out.add_table(view_name, view_out_names.to_vec());
    let nat_occ = out.add_table(NAT_TABLE, [NAT_COLUMN.to_string()]);

    // Pseudo column j maps to the full view's SELECT position. Captured
    // positions are computed up front so `out` stays mutable.
    let view_first = out.tables[view_occ].first_col;
    let nat_col = out.col_of(nat_occ, 0);
    let count_col = out.col_of(view_occ, count_idx);
    let remap = move |c: ColId| -> ColId {
        if c < pseudo_first {
            c
        } else {
            let j = c - pseudo_first;
            view_first + colsel[j].0
        }
    };
    let remap_term = |t: &Term| match t {
        Term::Col(c) => Term::Col(remap(*c)),
        Term::Const(l) => Term::Const(l.clone()),
    };

    out.select = rewritten
        .select
        .iter()
        .map(|s| match s {
            SelItem::Col(c) => SelItem::Col(remap(*c)),
            SelItem::Agg(_) => unreachable!("conjunctive query"),
        })
        .collect();
    out.conds = rewritten
        .conds
        .iter()
        .map(|a| Atom::new(remap_term(&a.lhs), a.op, remap_term(&a.rhs)))
        .collect();
    // The expansion join: Nat.k <= V.count.
    out.conds.push(Atom::new(
        Term::Col(nat_col),
        CmpOp::Le,
        Term::Col(count_col),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::enumerate_mappings;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
            .unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    fn try_expand(q: &Canonical, v: &Canonical, outs: &[&str]) -> Result<Canonical, WhyNot> {
        let out_names: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        let universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        let cl = PredClosure::build(&q.conds, &universe);
        let mappings = enumerate_mappings(v, q, true, Some(&cl));
        assert_eq!(mappings.len(), 1);
        rewrite_expand(q, v, "V1", &out_names, &mappings[0], &cl)
    }

    #[test]
    fn example_4_5_with_nat_table() {
        // The exact Example 4.5 pair, now rewritable via footnote 3.
        let q = canon("SELECT A, B FROM R1");
        let v = canon("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B");
        let rw = try_expand(&q, &v, &["A", "B", "N"]).unwrap();
        assert_eq!(
            rw.to_query().to_string(),
            "SELECT V1.A, V1.B FROM V1, Nat WHERE Nat.k <= V1.N"
        );
    }

    #[test]
    fn residual_conditions_survive_expansion() {
        let q = canon("SELECT A FROM R1 WHERE B = 2");
        let v = canon("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B");
        let rw = try_expand(&q, &v, &["A", "B", "N"]).unwrap();
        assert_eq!(
            rw.to_query().to_string(),
            "SELECT V1.A FROM V1, Nat WHERE V1.B = 2 AND Nat.k <= V1.N"
        );
    }

    #[test]
    fn needs_a_count_column() {
        let q = canon("SELECT A FROM R1");
        let v = canon("SELECT A, SUM(C) AS S FROM R1 GROUP BY A");
        let err = try_expand(&q, &v, &["A", "S"]).unwrap_err();
        assert!(matches!(err, WhyNot::AggregateNotComputable { .. }));
    }

    #[test]
    fn projected_out_needed_column_still_fails() {
        // Expansion does not resurrect projected-out columns: the query
        // needs C but the view only groups by A, B.
        let q = canon("SELECT A, C FROM R1");
        let v = canon("SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B");
        assert!(try_expand(&q, &v, &["A", "B", "N"]).is_err());
    }
}
