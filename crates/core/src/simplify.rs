//! Condition simplification — a small consumer of the closure reasoner.
//!
//! The paper's footnote 2 machinery (the predicate closure) supports more
//! than the usability checks: it detects *unsatisfiable* queries and
//! *redundant* conjuncts. This module exposes both as a standalone
//! preprocessing utility: `WHERE A = B AND B = C AND A = C` loses its
//! third atom; `WHERE A < B AND B < A` becomes the canonical `FALSE`
//! predicate (`0 = 1`), letting an executor skip evaluation entirely.

use crate::canon::{Atom, Canonical, Term};
use crate::closure::PredClosure;
use aggview_sql::ast::{CmpOp, Literal};

/// What [`simplify_conditions`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Simplification {
    /// The conditions were satisfiable; this many redundant atoms were
    /// dropped.
    Simplified {
        /// Number of removed conjuncts.
        removed: usize,
    },
    /// The conditions are unsatisfiable; the `WHERE` clause was replaced by
    /// the canonical `FALSE` atom (`0 = 1`).
    Unsatisfiable,
}

/// Remove redundant `WHERE` conjuncts (atoms entailed by the remaining
/// ones) and collapse unsatisfiable conjunctions to `FALSE`.
///
/// Sound under multiset semantics: dropping an entailed conjunct keeps the
/// satisfying rows identical; an unsatisfiable conjunction selects no rows
/// at all.
pub fn simplify_conditions(q: &mut Canonical) -> Simplification {
    // The universe carries every constant of the original conjunction, so
    // closures rebuilt after removals can still order candidate atoms'
    // constants against the surviving ones (`A < 5` must keep entailing
    // `A <= 9` after `A <= 9` is dropped).
    let mut universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
    for a in &q.conds {
        for t in [&a.lhs, &a.rhs] {
            if matches!(t, Term::Const(_)) && !universe.contains(t) {
                universe.push(t.clone());
            }
        }
    }
    let closure = PredClosure::build(&q.conds, &universe);
    if !closure.satisfiable() {
        q.conds = vec![Atom::new(
            Term::Const(Literal::Int(0)),
            CmpOp::Eq,
            Term::Const(Literal::Int(1)),
        )];
        return Simplification::Unsatisfiable;
    }

    // Greedy removal: drop an atom if the others still entail it.
    let mut kept = q.conds.clone();
    let mut removed = 0;
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept.remove(i);
        let rest = PredClosure::build(&kept, &universe);
        if rest.implies_atom(&candidate) {
            removed += 1;
        } else {
            kept.insert(i, candidate);
            i += 1;
        }
    }
    q.conds = kept;
    Simplification::Simplified { removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn canon(sql: &str) -> Canonical {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R", ["A", "B", "C"]))
            .unwrap();
        Canonical::from_query(&parse_query(sql).unwrap(), &cat).unwrap()
    }

    #[test]
    fn drops_transitive_equality() {
        let mut q = canon("SELECT A FROM R WHERE A = B AND B = C AND A = C");
        let s = simplify_conditions(&mut q);
        assert_eq!(s, Simplification::Simplified { removed: 1 });
        assert_eq!(q.conds.len(), 2);
    }

    #[test]
    fn drops_implied_inequality() {
        let mut q = canon("SELECT A FROM R WHERE A < B AND B < C AND A < C");
        let s = simplify_conditions(&mut q);
        assert_eq!(s, Simplification::Simplified { removed: 1 });
    }

    #[test]
    fn keeps_independent_atoms() {
        let mut q = canon("SELECT A FROM R WHERE A = 1 AND B = 2");
        let s = simplify_conditions(&mut q);
        assert_eq!(s, Simplification::Simplified { removed: 0 });
        assert_eq!(q.conds.len(), 2);
    }

    #[test]
    fn collapses_unsatisfiable() {
        let mut q = canon("SELECT A FROM R WHERE A < B AND B < A");
        assert_eq!(simplify_conditions(&mut q), Simplification::Unsatisfiable);
        assert_eq!(q.conds.len(), 1);
        // The canonical FALSE atom renders and executes as expected.
        assert!(q.to_query().to_string().contains("0 = 1"));
    }

    #[test]
    fn weaker_bound_is_dropped() {
        let mut q = canon("SELECT A FROM R WHERE A < 5 AND A <= 9");
        let s = simplify_conditions(&mut q);
        assert_eq!(s, Simplification::Simplified { removed: 1 });
        assert_eq!(q.conds.len(), 1);
        assert!(q.to_query().to_string().contains("< 5"));
    }

    #[test]
    fn empty_where_is_noop() {
        let mut q = canon("SELECT A FROM R");
        assert_eq!(
            simplify_conditions(&mut q),
            Simplification::Simplified { removed: 0 }
        );
    }
}
