//! Canonical query form — Section 2 of the paper.
//!
//! The paper renames columns so that every column of every `FROM`
//! occurrence has a globally unique name (`R(A1, B1), R(A2, B2)` for two
//! range variables over `R`). We implement the same idea with dense integer
//! column identities ([`ColId`]): occurrence `i` of arity `k` owns the
//! contiguous range `first_col .. first_col + k`.
//!
//! A [`Canonical`] carries exactly the paper's components: `Tables(Q)`,
//! `Sel(Q)` (split into `ColSel(Q)` and aggregation columns), `Conds(Q)`,
//! `Groups(Q)` and `GConds(Q)`. Conditions are *conjunctions of comparison
//! atoms* whose sides are columns or constants — precisely the fragment the
//! paper's theorems cover; anything else is rejected with a precise
//! [`CanonError`].
//!
//! The rewriter's *outputs* extend `Sel`/`GConds` with scaled and weighted
//! aggregate forms ([`AggExpr`]); the canonicalizer never produces those
//! from input SQL, and [`Canonical::is_plain`] distinguishes the two.

use aggview_catalog::SchemaSource;
use aggview_sql::ast::{
    AggCall, AggFunc, ArithOp, BoolExpr, CmpOp, ColumnRef, Expr, Literal, Query, SelectItem,
    TableRef,
};
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Identity of a column in a canonical query (dense index).
pub type ColId = usize;

/// Process-stable 64-bit hash (`DefaultHasher` with its fixed default
/// keys). Used for conjunct ordering and query fingerprints; never for
/// equality decisions.
fn stable_hash<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// One `FROM` occurrence (range variable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableOcc {
    /// Base table or view name.
    pub base: String,
    /// First column id owned by this occurrence.
    pub first_col: ColId,
    /// Number of columns.
    pub arity: usize,
}

impl TableOcc {
    /// The column ids owned by this occurrence.
    pub fn cols(&self) -> std::ops::Range<ColId> {
        self.first_col..self.first_col + self.arity
    }
}

/// Metadata of one canonical column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColInfo {
    /// Owning occurrence index.
    pub occ: usize,
    /// Position within the occurrence.
    pub pos: usize,
    /// Column name within the base table.
    pub name: String,
}

/// A side of a comparison atom: a column or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Column.
    Col(ColId),
    /// Constant.
    Const(Literal),
}

/// A comparison atom `lhs op rhs` in a `WHERE` conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl Atom {
    /// Build an atom.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Atom { lhs, op, rhs }
    }

    /// Column-column equality shorthand.
    pub fn col_eq(a: ColId, b: ColId) -> Self {
        Atom::new(Term::Col(a), CmpOp::Eq, Term::Col(b))
    }

    /// Canonical orientation: constants on the right; symmetric operators
    /// (`=`, `<>`) order columns by id. Used for deduplication.
    pub fn normalized(&self) -> Atom {
        let flip = |a: &Atom| Atom::new(a.rhs.clone(), a.op.flip(), a.lhs.clone());
        match (&self.lhs, &self.rhs) {
            (Term::Const(_), Term::Col(_)) => flip(self),
            (Term::Col(a), Term::Col(b)) if matches!(self.op, CmpOp::Eq | CmpOp::Ne) && a > b => {
                flip(self)
            }
            (Term::Col(a), Term::Col(b)) if matches!(self.op, CmpOp::Gt | CmpOp::Ge) && a != b => {
                flip(self)
            }
            _ => self.clone(),
        }
    }
}

/// An aggregate specification: the function and its column argument
/// (`None` = `COUNT(*)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column, or `None` for `COUNT(*)`.
    pub arg: Option<ColId>,
}

impl AggSpec {
    /// `AGG(col)`.
    pub fn on(func: AggFunc, col: ColId) -> Self {
        AggSpec {
            func,
            arg: Some(col),
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::Count,
            arg: None,
        }
    }
}

/// An aggregate expression in `Sel(Q)` or `GConds(Q)`.
///
/// `Plain` is the only form the canonicalizer produces from input SQL; the
/// other forms are rewriter outputs (Section 4 steps S4'/S5' and the
/// weighted-aggregate Strategy B documented in `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggExpr {
    /// `AGG(col)` / `COUNT(*)`.
    Plain(AggSpec),
    /// `factor * AGG(arg)` — the paper's S5' output (`Cnt_V^a * AGG(A)`);
    /// `factor` must be a grouping column.
    Scaled {
        /// Scaling column (grouping column).
        factor: ColId,
        /// The scaled aggregate.
        spec: AggSpec,
    },
    /// `SUM(weight * arg)` — weighted sum (Strategy B; recovers lost
    /// multiplicities through the view's COUNT column).
    WeightedSum {
        /// The multiplicity column.
        weight: ColId,
        /// The summed column.
        arg: ColId,
    },
    /// `SUM(num) / SUM(den)` — AVG from a view's SUM and COUNT columns.
    RatioOfSums {
        /// Numerator column (per-group SUM from the view).
        num: ColId,
        /// Denominator column (per-group COUNT from the view).
        den: ColId,
    },
    /// `SUM(weight * arg) / SUM(weight)` — AVG from a raw (or AVG) column
    /// plus a COUNT column.
    WeightedAvg {
        /// The multiplicity column.
        weight: ColId,
        /// The averaged column.
        arg: ColId,
    },
}

impl AggExpr {
    /// Is this the plain input form?
    pub fn is_plain(&self) -> bool {
        matches!(self, AggExpr::Plain(_))
    }

    /// All columns referenced by the aggregate expression.
    pub fn columns(&self) -> Vec<ColId> {
        match self {
            AggExpr::Plain(s) => s.arg.into_iter().collect(),
            AggExpr::Scaled { factor, spec } => {
                let mut v = vec![*factor];
                v.extend(spec.arg);
                v
            }
            AggExpr::WeightedSum { weight, arg } | AggExpr::WeightedAvg { weight, arg } => {
                vec![*weight, *arg]
            }
            AggExpr::RatioOfSums { num, den } => vec![*num, *den],
        }
    }
}

/// One item of `Sel(Q)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelItem {
    /// A non-aggregation column (member of `ColSel(Q)`).
    Col(ColId),
    /// An aggregation column.
    Agg(AggExpr),
}

/// A side of a `HAVING` atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GTerm {
    /// A grouping column.
    Col(ColId),
    /// A constant.
    Const(Literal),
    /// An aggregate expression.
    Agg(AggExpr),
}

/// A comparison atom in the `HAVING` conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GAtom {
    /// Left term.
    pub lhs: GTerm,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: GTerm,
}

/// Errors raised while canonicalizing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// A `FROM` table whose schema is unknown.
    UnknownTable(String),
    /// An unresolvable column reference.
    UnknownColumn(String),
    /// An ambiguous unqualified column reference.
    AmbiguousColumn(String),
    /// Two `FROM` occurrences share a binding name.
    DuplicateBinding(String),
    /// An expression outside the paper's fragment (arithmetic in input,
    /// aggregate of an expression, ...).
    Unsupported(String),
    /// A selected / `HAVING` column that is not a grouping column.
    NonGroupedColumn(String),
    /// An aggregate call in the `WHERE` clause.
    AggregateInWhere,
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            CanonError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            CanonError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            CanonError::DuplicateBinding(b) => {
                write!(f, "duplicate FROM binding `{b}` (add an alias)")
            }
            CanonError::Unsupported(m) => write!(f, "outside the supported fragment: {m}"),
            CanonError::NonGroupedColumn(c) => {
                write!(
                    f,
                    "column `{c}` must appear in GROUP BY or inside an aggregate"
                )
            }
            CanonError::AggregateInWhere => write!(f, "aggregate call in WHERE clause"),
        }
    }
}

impl std::error::Error for CanonError {}

/// A query in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Canonical {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// `Tables(Q)`.
    pub tables: Vec<TableOcc>,
    /// Per-column metadata, indexed by [`ColId`].
    pub columns: Vec<ColInfo>,
    /// `Sel(Q)`.
    pub select: Vec<SelItem>,
    /// `Conds(Q)` — a conjunction of atoms.
    pub conds: Vec<Atom>,
    /// `Groups(Q)`.
    pub groups: Vec<ColId>,
    /// `GConds(Q)` — a conjunction of `HAVING` atoms.
    pub gconds: Vec<GAtom>,
}

impl Canonical {
    /// An empty canonical query (builder entry point for the rewriter).
    pub fn empty() -> Self {
        Canonical {
            distinct: false,
            tables: Vec::new(),
            columns: Vec::new(),
            select: Vec::new(),
            conds: Vec::new(),
            groups: Vec::new(),
            gconds: Vec::new(),
        }
    }

    /// Append a `FROM` occurrence; returns its index.
    pub fn add_table<I, S>(&mut self, base: impl Into<String>, col_names: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let first_col = self.columns.len();
        let occ = self.tables.len();
        let mut arity = 0;
        for (pos, name) in col_names.into_iter().enumerate() {
            self.columns.push(ColInfo {
                occ,
                pos,
                name: name.into(),
            });
            arity += 1;
        }
        self.tables.push(TableOcc {
            base: base.into(),
            first_col,
            arity,
        });
        occ
    }

    /// The column id at `(occurrence, position)`.
    pub fn col_of(&self, occ: usize, pos: usize) -> ColId {
        debug_assert!(pos < self.tables[occ].arity);
        self.tables[occ].first_col + pos
    }

    /// `Cols(Q)` — total number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `ColSel(Q)` — the non-aggregation columns of the `SELECT` list.
    pub fn col_sel(&self) -> Vec<ColId> {
        self.select
            .iter()
            .filter_map(|s| match s {
                SelItem::Col(c) => Some(*c),
                SelItem::Agg(_) => None,
            })
            .collect()
    }

    /// Every aggregate expression in `Sel(Q)` and `GConds(Q)`.
    pub fn agg_exprs(&self) -> Vec<&AggExpr> {
        let mut out = Vec::new();
        for s in &self.select {
            if let SelItem::Agg(a) = s {
                out.push(a);
            }
        }
        for g in &self.gconds {
            for t in [&g.lhs, &g.rhs] {
                if let GTerm::Agg(a) = t {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Is this an aggregation query (per the paper: non-empty `Groups`,
    /// aggregation columns, or `GConds`)?
    pub fn is_aggregation_query(&self) -> bool {
        !self.groups.is_empty() || !self.gconds.is_empty() || !self.agg_exprs().is_empty()
    }

    /// Does the query use only the plain forms the canonicalizer can
    /// produce (i.e., can it be fed back through the rewriter)?
    pub fn is_plain(&self) -> bool {
        self.agg_exprs().iter().all(|a| a.is_plain())
    }

    /// Cache-normalized copy: every `WHERE` conjunct in canonical
    /// orientation ([`Atom::normalized`]) and the commutative conjunctions
    /// (`WHERE`, `HAVING`) sorted into a stable order. Queries that differ
    /// only in conjunct order, comparison orientation, or binding aliases
    /// (aliases never reach the canonical form) normalize identically —
    /// the serving layer keys its plan cache on this form.
    pub fn normalized(&self) -> Canonical {
        let mut c = self.clone();
        for a in &mut c.conds {
            *a = a.normalized();
        }
        // No `Ord` on literals: sort by stable hash. Equal hashes keep
        // their relative order (stable sort), so the result is
        // deterministic; a cross-query hash collision costs at worst a
        // cache miss, never a wrong hit (keys compare the full form).
        c.conds.sort_by_key(stable_hash);
        c.gconds.sort_by_key(stable_hash);
        c
    }

    /// Stable 64-bit fingerprint of the [`Canonical::normalized`] form.
    /// Canonically identical queries share a fingerprint; it is used for
    /// display and statistics only — cache lookups compare the full
    /// normalized form, so a fingerprint collision cannot alias entries.
    pub fn fingerprint(&self) -> u64 {
        stable_hash(&self.normalized())
    }

    /// Canonicalize an AST query against a schema source.
    pub fn from_query(q: &Query, schemas: &dyn SchemaSource) -> Result<Self, CanonError> {
        Canonicalizer::new(q, schemas)?.run()
    }

    /// Render back to an AST query. Occurrence `i` binds as its base name
    /// when that is unambiguous, else as `{base}_o{i}`.
    pub fn to_query(&self) -> Query {
        let bindings = self.bindings();
        let col_ref = |c: ColId| -> ColumnRef {
            let info = &self.columns[c];
            ColumnRef::qualified(bindings[info.occ].clone(), info.name.clone())
        };
        let col_expr = |c: ColId| Expr::Column(col_ref(c));
        let agg_expr = |a: &AggExpr| -> Expr {
            let plain = |spec: &AggSpec| {
                Expr::Agg(AggCall {
                    func: spec.func,
                    arg: spec.arg.map(|c| Box::new(col_expr(c))),
                })
            };
            match a {
                AggExpr::Plain(spec) => plain(spec),
                AggExpr::Scaled { factor, spec } => Expr::Binary {
                    lhs: Box::new(col_expr(*factor)),
                    op: ArithOp::Mul,
                    rhs: Box::new(plain(spec)),
                },
                AggExpr::WeightedSum { weight, arg } => Expr::Agg(AggCall {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(Expr::Binary {
                        lhs: Box::new(col_expr(*weight)),
                        op: ArithOp::Mul,
                        rhs: Box::new(col_expr(*arg)),
                    })),
                }),
                AggExpr::RatioOfSums { num, den } => Expr::Binary {
                    lhs: Box::new(Expr::Agg(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(col_expr(*num))),
                    })),
                    op: ArithOp::Div,
                    rhs: Box::new(Expr::Agg(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(col_expr(*den))),
                    })),
                },
                AggExpr::WeightedAvg { weight, arg } => Expr::Binary {
                    lhs: Box::new(Expr::Agg(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(Expr::Binary {
                            lhs: Box::new(col_expr(*weight)),
                            op: ArithOp::Mul,
                            rhs: Box::new(col_expr(*arg)),
                        })),
                    })),
                    op: ArithOp::Div,
                    rhs: Box::new(Expr::Agg(AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(col_expr(*weight))),
                    })),
                },
            }
        };
        let term_expr = |t: &Term| match t {
            Term::Col(c) => col_expr(*c),
            Term::Const(l) => Expr::Literal(l.clone()),
        };
        let gterm_expr = |t: &GTerm| match t {
            GTerm::Col(c) => col_expr(*c),
            GTerm::Const(l) => Expr::Literal(l.clone()),
            GTerm::Agg(a) => agg_expr(a),
        };

        let select = self
            .select
            .iter()
            .map(|s| match s {
                SelItem::Col(c) => SelectItem::expr(col_expr(*c)),
                SelItem::Agg(a) => SelectItem::expr(agg_expr(a)),
            })
            .collect();
        let from = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if bindings[i] == t.base {
                    TableRef::new(t.base.clone())
                } else {
                    TableRef::aliased(t.base.clone(), bindings[i].clone())
                }
            })
            .collect();
        let where_clause = BoolExpr::conjoin(
            self.conds
                .iter()
                .map(|a| BoolExpr::cmp(term_expr(&a.lhs), a.op, term_expr(&a.rhs)))
                .collect(),
        );
        let group_by = self.groups.iter().map(|&c| col_ref(c)).collect();
        let having = BoolExpr::conjoin(
            self.gconds
                .iter()
                .map(|a| BoolExpr::cmp(gterm_expr(&a.lhs), a.op, gterm_expr(&a.rhs)))
                .collect(),
        );
        Query {
            distinct: self.distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
        }
    }

    /// Binding names per occurrence for rendering: the base name when it
    /// occurs exactly once, `{base}_o{i}` otherwise.
    fn bindings(&self) -> Vec<String> {
        (0..self.tables.len())
            .map(|i| {
                let base = &self.tables[i].base;
                let dup = self
                    .tables
                    .iter()
                    .enumerate()
                    .any(|(j, t)| j != i && &t.base == base);
                if dup {
                    format!("{base}_o{i}")
                } else {
                    base.clone()
                }
            })
            .collect()
    }
}

struct Canonicalizer<'a> {
    query: &'a Query,
    canonical: Canonical,
    binding_names: Vec<String>,
}

impl<'a> Canonicalizer<'a> {
    fn new(query: &'a Query, schemas: &dyn SchemaSource) -> Result<Self, CanonError> {
        let mut canonical = Canonical::empty();
        canonical.distinct = query.distinct;
        let mut binding_names = Vec::with_capacity(query.from.len());
        for tref in &query.from {
            let binding = tref.binding_name().to_string();
            if binding_names.contains(&binding) {
                return Err(CanonError::DuplicateBinding(binding));
            }
            let cols = schemas
                .table_columns(&tref.table)
                .ok_or_else(|| CanonError::UnknownTable(tref.table.clone()))?;
            canonical.add_table(tref.table.clone(), cols);
            binding_names.push(binding);
        }
        Ok(Canonicalizer {
            query,
            canonical,
            binding_names,
        })
    }

    fn resolve(&self, c: &ColumnRef) -> Result<ColId, CanonError> {
        match &c.table {
            Some(binding) => {
                let occ = self
                    .binding_names
                    .iter()
                    .position(|b| b == binding)
                    .ok_or_else(|| CanonError::UnknownColumn(c.to_string()))?;
                let t = &self.canonical.tables[occ];
                let pos = (0..t.arity)
                    .find(|&p| self.canonical.columns[t.first_col + p].name == c.column)
                    .ok_or_else(|| CanonError::UnknownColumn(c.to_string()))?;
                Ok(t.first_col + pos)
            }
            None => {
                let mut found = None;
                for (id, info) in self.canonical.columns.iter().enumerate() {
                    if info.name == c.column {
                        if found.is_some() {
                            return Err(CanonError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(id);
                    }
                }
                found.ok_or_else(|| CanonError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Fold `-literal` into a literal; otherwise return the expression.
    fn fold_neg(e: &Expr) -> Expr {
        if let Expr::Neg(inner) = e {
            match inner.as_ref() {
                Expr::Literal(Literal::Int(v)) => return Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Double(v)) => {
                    return Expr::Literal(Literal::Double(-v));
                }
                _ => {}
            }
        }
        e.clone()
    }

    fn term(&self, e: &Expr) -> Result<Term, CanonError> {
        match Self::fold_neg(e) {
            Expr::Column(c) => Ok(Term::Col(self.resolve(&c)?)),
            Expr::Literal(l) => Ok(Term::Const(l)),
            Expr::Agg(_) => Err(CanonError::AggregateInWhere),
            other => Err(CanonError::Unsupported(format!(
                "WHERE operand `{other}` (only columns and constants are supported)"
            ))),
        }
    }

    fn agg_spec(&self, call: &AggCall) -> Result<AggSpec, CanonError> {
        let arg = match &call.arg {
            None => None,
            Some(e) => match e.as_ref() {
                Expr::Column(c) => Some(self.resolve(c)?),
                other => {
                    return Err(CanonError::Unsupported(format!(
                        "aggregate argument `{other}` (only plain columns are supported)"
                    )))
                }
            },
        };
        Ok(AggSpec {
            func: call.func,
            arg,
        })
    }

    fn gterm(&self, e: &Expr, groups: &[ColId]) -> Result<GTerm, CanonError> {
        match Self::fold_neg(e) {
            Expr::Column(c) => {
                let id = self.resolve(&c)?;
                if !groups.contains(&id) {
                    return Err(CanonError::NonGroupedColumn(c.to_string()));
                }
                Ok(GTerm::Col(id))
            }
            Expr::Literal(l) => Ok(GTerm::Const(l)),
            Expr::Agg(call) => Ok(GTerm::Agg(AggExpr::Plain(self.agg_spec(&call)?))),
            other => Err(CanonError::Unsupported(format!(
                "HAVING operand `{other}` (only grouping columns, constants and aggregates)"
            ))),
        }
    }

    fn run(mut self) -> Result<Canonical, CanonError> {
        // GROUP BY first: SELECT validation needs it.
        let mut groups = Vec::new();
        for c in &self.query.group_by {
            groups.push(self.resolve(c)?);
        }

        // SELECT.
        let mut select = Vec::new();
        let mut any_agg = false;
        for item in &self.query.select {
            match Self::fold_neg(&item.expr) {
                Expr::Column(c) => {
                    let id = self.resolve(&c)?;
                    select.push(SelItem::Col(id));
                }
                Expr::Agg(call) => {
                    any_agg = true;
                    select.push(SelItem::Agg(AggExpr::Plain(self.agg_spec(&call)?)));
                }
                other => {
                    return Err(CanonError::Unsupported(format!(
                        "SELECT item `{other}` (only columns and AGG(column))"
                    )))
                }
            }
        }

        // SQL rule: with grouping (explicit or induced by aggregation), the
        // non-aggregation SELECT columns must be grouping columns.
        let grouped = !groups.is_empty() || any_agg || self.query.having.is_some();
        if grouped {
            for item in &select {
                if let SelItem::Col(c) = item {
                    if !groups.contains(c) {
                        return Err(CanonError::NonGroupedColumn(
                            self.canonical.columns[*c].name.clone(),
                        ));
                    }
                }
            }
        }

        // WHERE.
        let mut conds = Vec::new();
        if let Some(w) = &self.query.where_clause {
            for atom in w.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                conds.push(Atom::new(self.term(lhs)?, *op, self.term(rhs)?));
            }
        }

        // HAVING.
        let mut gconds = Vec::new();
        if let Some(h) = &self.query.having {
            for atom in h.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                gconds.push(GAtom {
                    lhs: self.gterm(lhs, &groups)?,
                    op: *op,
                    rhs: self.gterm(rhs, &groups)?,
                });
            }
        }

        self.canonical.select = select;
        self.canonical.conds = conds;
        self.canonical.groups = groups;
        self.canonical.gconds = gconds;
        Ok(self.canonical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
            .unwrap();
        cat.add_table(TableSchema::new("R2", ["E", "F"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn normalized_form_ignores_surface_variation() {
        // Same query under alias renaming, conjunct reordering, and
        // comparison flipping: one normalized form, one fingerprint.
        let a = canon("SELECT A, SUM(B) FROM R1, R2 WHERE C = F AND 3 < D GROUP BY A");
        let b =
            canon("SELECT x.A, SUM(x.B) FROM R1 x, R2 y WHERE x.D > 3 AND y.F = x.C GROUP BY x.A");
        assert_ne!(a, b, "surface forms differ before normalization");
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_queries() {
        let fps: Vec<u64> = [
            "SELECT A, SUM(B) FROM R1 GROUP BY A",
            "SELECT A, SUM(C) FROM R1 GROUP BY A",
            "SELECT A, SUM(B) FROM R1 WHERE D > 3 GROUP BY A",
            "SELECT A, COUNT(B) FROM R1 GROUP BY A",
            "SELECT DISTINCT A FROM R1",
        ]
        .iter()
        .map(|sql| canon(sql).fingerprint())
        .collect();
        let mut uniq = fps.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), fps.len(), "fingerprints collide: {fps:?}");
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let sql = "SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F GROUP BY A, E";
        assert_eq!(canon(sql).fingerprint(), canon(sql).fingerprint());
    }

    #[test]
    fn canonicalizes_example_4_1_query() {
        let c = canon("SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E");
        assert_eq!(c.tables.len(), 2);
        assert_eq!(c.n_cols(), 6);
        // A=0,B=1,C=2,D=3 in R1; E=4,F=5 in R2.
        assert_eq!(c.groups, vec![0, 4]);
        assert_eq!(c.col_sel(), vec![0, 4]);
        assert_eq!(
            c.conds,
            vec![
                Atom::new(Term::Col(2), CmpOp::Eq, Term::Col(5)),
                Atom::new(Term::Col(1), CmpOp::Eq, Term::Col(3)),
            ]
        );
        assert_eq!(
            c.select[2],
            SelItem::Agg(AggExpr::Plain(AggSpec::on(AggFunc::Count, 1)))
        );
        assert!(c.is_aggregation_query());
        assert!(c.is_plain());
    }

    #[test]
    fn self_join_gets_distinct_col_ids() {
        let c = canon("SELECT x.A FROM R1 x, R1 y WHERE x.B = y.B");
        assert_eq!(c.n_cols(), 8);
        assert_eq!(
            c.conds,
            vec![Atom::new(Term::Col(1), CmpOp::Eq, Term::Col(5))]
        );
    }

    #[test]
    fn negative_literal_is_folded() {
        let c = canon("SELECT A FROM R1 WHERE B > -5");
        assert_eq!(
            c.conds,
            vec![Atom::new(
                Term::Col(1),
                CmpOp::Gt,
                Term::Const(Literal::Int(-5))
            )]
        );
    }

    #[test]
    fn having_terms_resolve() {
        let c = canon("SELECT A, SUM(B) FROM R1 GROUP BY A HAVING SUM(B) < 100 AND A > 2");
        assert_eq!(c.gconds.len(), 2);
        assert_eq!(
            c.gconds[0].lhs,
            GTerm::Agg(AggExpr::Plain(AggSpec::on(AggFunc::Sum, 1)))
        );
        assert_eq!(c.gconds[1].lhs, GTerm::Col(0));
    }

    #[test]
    fn rejects_non_grouped_select_column() {
        let err = Canonical::from_query(
            &parse_query("SELECT B, SUM(A) FROM R1 GROUP BY A").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert_eq!(err, CanonError::NonGroupedColumn("B".into()));
    }

    #[test]
    fn rejects_non_grouped_having_column() {
        let err = Canonical::from_query(
            &parse_query("SELECT A FROM R1 GROUP BY A HAVING B > 2").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, CanonError::NonGroupedColumn(_)));
    }

    #[test]
    fn rejects_arithmetic_in_where() {
        let err = Canonical::from_query(
            &parse_query("SELECT A FROM R1 WHERE A + B = 3").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, CanonError::Unsupported(_)));
    }

    #[test]
    fn rejects_aggregate_in_where() {
        let err = Canonical::from_query(
            &parse_query("SELECT A FROM R1 WHERE SUM(B) = 3").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert_eq!(err, CanonError::AggregateInWhere);
    }

    #[test]
    fn rejects_unknown_table_and_column() {
        assert_eq!(
            Canonical::from_query(&parse_query("SELECT A FROM Zz").unwrap(), &catalog())
                .unwrap_err(),
            CanonError::UnknownTable("Zz".into())
        );
        assert_eq!(
            Canonical::from_query(&parse_query("SELECT Zz FROM R1").unwrap(), &catalog())
                .unwrap_err(),
            CanonError::UnknownColumn("Zz".into())
        );
    }

    #[test]
    fn rejects_ambiguity_and_duplicate_bindings() {
        // A exists only in R1, but add two R1 occurrences without aliases.
        assert_eq!(
            Canonical::from_query(
                &parse_query("SELECT x.A FROM R1 x, R1 x").unwrap(),
                &catalog()
            )
            .unwrap_err(),
            CanonError::DuplicateBinding("x".into())
        );
        assert_eq!(
            Canonical::from_query(
                &parse_query("SELECT A FROM R1 x, R1 y").unwrap(),
                &catalog()
            )
            .unwrap_err(),
            CanonError::AmbiguousColumn("A".into())
        );
    }

    #[test]
    fn round_trips_through_ast() {
        let c = canon(
            "SELECT A, E, SUM(B) FROM R1, R2 WHERE C = F AND B = 6 GROUP BY A, E \
             HAVING SUM(B) < 100",
        );
        let q2 = c.to_query();
        let c2 = Canonical::from_query(&q2, &catalog()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn round_trips_self_join() {
        let c = canon("SELECT x.A FROM R1 x, R1 y WHERE x.B = y.C");
        let q2 = c.to_query();
        // Bindings become R1_o0 / R1_o1.
        assert_eq!(q2.from.len(), 2);
        assert_ne!(q2.from[0].binding_name(), q2.from[1].binding_name());
        let c2 = Canonical::from_query(&q2, &catalog()).unwrap();
        assert_eq!(c.conds, c2.conds);
    }

    #[test]
    fn renders_extended_agg_forms() {
        let mut c = canon("SELECT A, COUNT(B) FROM R1 GROUP BY A");
        // Replace COUNT(B) with SUM(C * B) (WeightedSum) and render.
        c.select[1] = SelItem::Agg(AggExpr::WeightedSum { weight: 2, arg: 1 });
        let q = c.to_query();
        assert_eq!(q.select[1].expr.to_string(), "SUM(R1.C * R1.B)");
        c.select[1] = SelItem::Agg(AggExpr::RatioOfSums { num: 1, den: 2 });
        assert_eq!(
            c.to_query().select[1].expr.to_string(),
            "SUM(R1.B) / SUM(R1.C)"
        );
        c.select[1] = SelItem::Agg(AggExpr::Scaled {
            factor: 0,
            spec: AggSpec::on(AggFunc::Max, 1),
        });
        assert_eq!(c.to_query().select[1].expr.to_string(), "R1.A * MAX(R1.B)");
        c.select[1] = SelItem::Agg(AggExpr::WeightedAvg { weight: 2, arg: 1 });
        assert_eq!(
            c.to_query().select[1].expr.to_string(),
            "SUM(R1.C * R1.B) / SUM(R1.C)"
        );
        assert!(!c.is_plain());
    }

    #[test]
    fn atom_normalization() {
        let a = Atom::new(Term::Const(Literal::Int(5)), CmpOp::Lt, Term::Col(2));
        assert_eq!(
            a.normalized(),
            Atom::new(Term::Col(2), CmpOp::Gt, Term::Const(Literal::Int(5)))
        );
        let b = Atom::new(Term::Col(7), CmpOp::Eq, Term::Col(3));
        assert_eq!(b.normalized(), Atom::col_eq(3, 7));
        let c = Atom::new(Term::Col(7), CmpOp::Ge, Term::Col(3));
        assert_eq!(
            c.normalized(),
            Atom::new(Term::Col(3), CmpOp::Le, Term::Col(7))
        );
    }

    #[test]
    fn count_star_canonicalizes() {
        let c = canon("SELECT A, COUNT(*) FROM R1 GROUP BY A");
        assert_eq!(
            c.select[1],
            SelItem::Agg(AggExpr::Plain(AggSpec::count_star()))
        );
        let q2 = c.to_query();
        let c2 = Canonical::from_query(&q2, &catalog()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn distinct_is_preserved() {
        let c = canon("SELECT DISTINCT A FROM R1");
        assert!(c.distinct);
        assert!(c.to_query().distinct);
    }
}
