//! Set semantics and keys — Section 5 of the paper.
//!
//! When both the query's and the view's results are provably *sets* (via
//! keys/FDs per Propositions 5.1–5.2, or `SELECT DISTINCT`), condition C1
//! relaxes: the column mapping may be **many-to-1**. Collapsing two view
//! occurrences onto one query occurrence is then compensated by equating a
//! *key* of the collapsed table across the two view images — given the key
//! equality, the two range variables necessarily denote the same tuple
//! (Example 5.1).

use crate::canon::{Atom, Canonical, SelItem, Term};
use crate::closure::PredClosure;
use crate::conjunctive::{is_conjunctive_core, rewrite_conjunctive};
use crate::explain::WhyNot;
use crate::mapping::Mapping;
use aggview_catalog::{Catalog, CoreDesc};
use std::collections::HashMap;

/// Is the result of this (canonical) query provably a set?
///
/// * `SELECT DISTINCT` — yes by definition.
/// * Conjunctive — Proposition 5.1: the core table is a set (every `FROM`
///   table has a key or is declared a set — Proposition 5.2) and the
///   `SELECT` list retains a key of the core table.
/// * Grouped — one row per group; a set whenever the retained grouping
///   columns functionally determine all grouping columns.
///
/// Conservative: `FROM` tables not in the catalog (e.g. views) make the
/// answer `false`.
pub fn result_is_set(q: &Canonical, catalog: &Catalog) -> bool {
    if q.distinct {
        return true;
    }
    let Some(core) = core_desc(q, catalog) else {
        return false;
    };
    if q.is_aggregation_query() {
        if q.groups.is_empty() {
            // A single output row at most.
            return true;
        }
        return core.grouped_result_is_set(&q.col_sel(), &q.groups);
    }
    core.conjunctive_result_is_set(&q.col_sel())
}

/// Build the Section 5 core-table description of a canonical query.
fn core_desc(q: &Canonical, catalog: &Catalog) -> Option<CoreDesc> {
    let mut core = CoreDesc::new();
    for t in &q.tables {
        let schema = catalog.table(&t.base)?;
        if schema.arity() != t.arity {
            return None;
        }
        let offset = core.push_occurrence(schema.arity(), &schema.all_fds(), schema.is_set());
        // Canonical column ids coincide with core offsets by construction.
        debug_assert_eq!(offset, t.first_col);
    }
    for a in &q.conds {
        if a.op != aggview_sql::CmpOp::Eq {
            continue;
        }
        match (&a.lhs, &a.rhs) {
            (Term::Col(x), Term::Col(y)) => core.add_equality(*x, *y),
            (Term::Col(x), Term::Const(_)) | (Term::Const(_), Term::Col(x)) => {
                core.add_constant(*x)
            }
            (Term::Const(_), Term::Const(_)) => {}
        }
    }
    Some(core)
}

/// Section 5 rewriting: conjunctive query, conjunctive view, both results
/// proven sets, many-to-1 mapping allowed.
///
/// Checks C2/C3 (via the multiset machinery) and the key-coincidence
/// condition for collapsed occurrences, then appends the key equalities to
/// the rewritten `WHERE` clause. The result is *set*-equivalent to the
/// query (and both are sets, so multiset-equivalent too).
pub fn rewrite_set_mode(
    query: &Canonical,
    view: &Canonical,
    view_name: &str,
    view_out_names: &[String],
    mapping: &Mapping,
    q_closure: &PredClosure,
    catalog: &Catalog,
) -> Result<Canonical, WhyNot> {
    if !is_conjunctive_core(query) || !is_conjunctive_core(view) {
        return Err(WhyNot::Unsupported {
            reason: "set-semantics rewriting applies to conjunctive queries and views".into(),
        });
    }
    if !result_is_set(query, catalog) || !result_is_set(view, catalog) {
        return Err(WhyNot::SetSemanticsRequired);
    }

    // Which view SELECT position exposes each view column?
    let sel_pos_of: HashMap<usize, usize> = view
        .select
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            SelItem::Col(c) => Some((*c, i)),
            SelItem::Agg(_) => None,
        })
        .collect();

    // For every pair of view occurrences collapsed onto one query
    // occurrence, find a key of the base table exposed on both sides.
    let mut key_equalities: Vec<(usize, usize)> = Vec::new(); // (sel idx, sel idx)
    let n = view.tables.len();
    for o1 in 0..n {
        for o2 in (o1 + 1)..n {
            if mapping.occ_map[o1] != mapping.occ_map[o2] {
                continue;
            }
            let base = &view.tables[o1].base;
            let schema = catalog.table(base).ok_or(WhyNot::SetSemanticsRequired)?;
            let mut found = false;
            'key: for key in &schema.keys {
                let mut pairs = Vec::with_capacity(key.len());
                for &pos in key {
                    let c1 = view.col_of(o1, pos);
                    let c2 = view.col_of(o2, pos);
                    match (sel_pos_of.get(&c1), sel_pos_of.get(&c2)) {
                        (Some(&i1), Some(&i2)) => pairs.push((i1, i2)),
                        _ => continue 'key,
                    }
                }
                key_equalities.extend(pairs);
                found = true;
                break;
            }
            if !found {
                return Err(WhyNot::Unsupported {
                    reason: format!(
                        "collapsed occurrences of `{base}` expose no common key in Sel(V)"
                    ),
                });
            }
        }
    }

    // C2/C3 and steps S1–S3 via the shared conjunctive machinery (it
    // handles many-to-1 images transparently).
    let mut rewritten =
        rewrite_conjunctive(query, view, view_name, view_out_names, mapping, q_closure)?;

    // The view occurrence is the last table of the rewritten query.
    let view_occ = rewritten.tables.len() - 1;
    for (i1, i2) in key_equalities {
        let c1 = rewritten.col_of(view_occ, i1);
        let c2 = rewritten.col_of(view_occ, i2);
        if c1 != c2 {
            rewritten.conds.push(Atom::col_eq(c1, c2));
        }
    }
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::enumerate_mappings;
    use aggview_catalog::TableSchema;
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
            .unwrap();
        cat.add_table(TableSchema::new("Bag", ["X", "Y"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn keyed_projection_is_set() {
        let cat = catalog();
        assert!(result_is_set(&canon("SELECT A, B FROM R1"), &cat));
        // Projecting away the key loses set-ness.
        assert!(!result_is_set(&canon("SELECT B FROM R1"), &cat));
        // DISTINCT restores it.
        assert!(result_is_set(&canon("SELECT DISTINCT B FROM R1"), &cat));
        // A keyless table is a multiset.
        assert!(!result_is_set(&canon("SELECT X FROM Bag"), &cat));
    }

    #[test]
    fn constant_binding_helps_setness() {
        let cat = catalog();
        // B = 5 does not make B a key...
        assert!(!result_is_set(&canon("SELECT B FROM R1 WHERE B = 5"), &cat));
        // ...but binding the key by a constant makes any projection a set
        // (at most one tuple survives).
        assert!(result_is_set(&canon("SELECT B FROM R1 WHERE A = 5"), &cat));
    }

    #[test]
    fn grouped_setness() {
        let cat = catalog();
        assert!(result_is_set(
            &canon("SELECT A, COUNT(B) FROM R1 GROUP BY A"),
            &cat
        ));
        // ColSel {B} does not determine grouping column A.
        assert!(!result_is_set(
            &canon("SELECT B, COUNT(C) FROM R1 GROUP BY B, A"),
            &cat
        ));
        // ColSel {A} determines B (A is a key).
        assert!(result_is_set(
            &canon("SELECT A, COUNT(C) FROM R1 GROUP BY A, B"),
            &cat
        ));
    }

    #[test]
    fn example_5_1() {
        // Paper Example 5.1: many-to-1 mapping justified by key A.
        let cat = catalog();
        let q = canon("SELECT A FROM R1 WHERE B = C");
        let v = canon("SELECT u.A, w.A FROM R1 u, R1 w WHERE u.B = w.C");
        let universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        let cl = PredClosure::build(&q.conds, &universe);
        // No 1-1 mapping can work (the view has two occurrences, the query
        // one); many-to-1 enumeration finds the collapse.
        let mappings = enumerate_mappings(&v, &q, false, Some(&cl));
        assert_eq!(mappings.len(), 1);
        let out_names = vec!["A1".to_string(), "A2".to_string()];
        let rw = rewrite_set_mode(&q, &v, "V1", &out_names, &mappings[0], &cl, &cat).unwrap();
        assert_eq!(
            rw.to_query().to_string(),
            "SELECT V1.A1 FROM V1 WHERE V1.A1 = V1.A2"
        );
    }

    #[test]
    fn set_mode_requires_set_results() {
        // Same shapes over the keyless table: rejected.
        let cat = catalog();
        let q = canon("SELECT X FROM Bag WHERE X = Y");
        let v = canon("SELECT u.X, w.X FROM Bag u, Bag w WHERE u.X = w.Y");
        let universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        let cl = PredClosure::build(&q.conds, &universe);
        let mappings = enumerate_mappings(&v, &q, false, Some(&cl));
        assert!(!mappings.is_empty());
        let out_names = vec!["X1".to_string(), "X2".to_string()];
        assert_eq!(
            rewrite_set_mode(&q, &v, "V", &out_names, &mappings[0], &cl, &cat).unwrap_err(),
            WhyNot::SetSemanticsRequired
        );
    }

    #[test]
    fn collapsed_occurrences_need_exposed_key() {
        // The view collapses two R1 occurrences but exposes no *common*
        // key: it exposes key A of the first occurrence and key B of the
        // second (R1 here has two keys so the view is still a set).
        let mut cat = Catalog::new();
        cat.add_table(
            TableSchema::new("R1", ["A", "B", "C"])
                .with_key(["A"])
                .with_key(["B"]),
        )
        .unwrap();
        let q = Canonical::from_query(&parse_query("SELECT A FROM R1 WHERE B = C").unwrap(), &cat)
            .unwrap();
        let v = Canonical::from_query(
            &parse_query("SELECT u.A, w.B FROM R1 u, R1 w WHERE u.B = w.C").unwrap(),
            &cat,
        )
        .unwrap();
        let universe: Vec<Term> = (0..q.n_cols()).map(Term::Col).collect();
        let cl = PredClosure::build(&q.conds, &universe);
        let mappings = enumerate_mappings(&v, &q, false, Some(&cl));
        assert_eq!(mappings.len(), 1);
        let out_names = vec!["A1".to_string(), "B2".to_string()];
        let err = rewrite_set_mode(&q, &v, "V", &out_names, &mappings[0], &cl, &cat).unwrap_err();
        assert!(matches!(err, WhyNot::Unsupported { .. }), "got {err:?}");
    }
}
