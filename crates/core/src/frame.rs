//! Shared machinery for building rewritten queries: the "frame" replaces
//! the mapped occurrences φ(Tables(V)) by a single occurrence of the view
//! (step S1/S1') and tracks how the surviving query columns renumber.

use crate::canon::{Canonical, ColId};
use std::collections::HashSet;

/// The skeleton of a rewritten query: kept occurrences followed by the view
/// occurrence, with a translation table for kept columns.
pub(crate) struct Frame {
    /// The rewritten query under construction (tables populated; select,
    /// conds, groups, gconds still empty).
    pub new_q: Canonical,
    /// For each original query column: its id in the new query, if the
    /// column survives (i.e. its occurrence was not replaced by the view).
    pub trans_keep: Vec<Option<ColId>>,
    /// Index of the view occurrence in the new query.
    pub view_occ: usize,
}

impl Frame {
    /// Build the skeleton: copy every query occurrence not in `image_occs`,
    /// then append one occurrence of the view with output columns
    /// `view_out_names`.
    pub fn build(
        query: &Canonical,
        image_occs: &HashSet<usize>,
        view_name: &str,
        view_out_names: &[String],
    ) -> Frame {
        let mut new_q = Canonical::empty();
        new_q.distinct = query.distinct;
        let mut trans_keep: Vec<Option<ColId>> = vec![None; query.n_cols()];
        for (qi, t) in query.tables.iter().enumerate() {
            if image_occs.contains(&qi) {
                continue;
            }
            let names: Vec<String> = t.cols().map(|c| query.columns[c].name.clone()).collect();
            let new_occ = new_q.add_table(t.base.clone(), names);
            for (pos, c) in t.cols().enumerate() {
                trans_keep[c] = Some(new_q.col_of(new_occ, pos));
            }
        }
        let view_occ = new_q.add_table(view_name.to_string(), view_out_names.to_vec());
        Frame {
            new_q,
            trans_keep,
            view_occ,
        }
    }

    /// The new-query column id of the view's `sel_idx`-th output column.
    pub fn view_col(&self, sel_idx: usize) -> ColId {
        self.new_q.col_of(self.view_occ, sel_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    #[test]
    fn frame_keeps_unmapped_occurrences_and_appends_view() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C"])).unwrap();
        let q = Canonical::from_query(&parse_query("SELECT A FROM R1, R2").unwrap(), &cat).unwrap();
        let image: HashSet<usize> = [0].into_iter().collect();
        let f = Frame::build(&q, &image, "V", &["x".into(), "y".into()]);
        // R2 kept as occ 0; V appended as occ 1.
        assert_eq!(f.new_q.tables.len(), 2);
        assert_eq!(f.new_q.tables[0].base, "R2");
        assert_eq!(f.new_q.tables[1].base, "V");
        assert_eq!(f.trans_keep, vec![None, None, Some(0)]);
        assert_eq!(f.view_col(0), 1);
        assert_eq!(f.view_col(1), 2);
    }
}
