//! Diagnostics: why a view is, or is not, usable for a query.
//!
//! Every failed usability check maps to a [`WhyNot`] naming the violated
//! paper condition, so callers (and the `repro` harness) can report *which*
//! condition failed — mirroring how the paper walks through C1–C4 in its
//! worked examples.

use std::fmt;

/// The reason a particular candidate (view, mapping) is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhyNot {
    /// Section 4.5: the view has grouping/aggregation but the query is
    /// conjunctive — tuple multiplicities are unrecoverable.
    AggregationViewForConjunctiveQuery,
    /// Condition C1: no (1-1) column mapping exists.
    NoColumnMapping,
    /// Condition C3 (first half): a mapped view condition is not entailed
    /// by `Conds(Q)`.
    ViewCondsNotImplied {
        /// Rendering of the offending mapped atom.
        atom: String,
    },
    /// Condition C3 (second half): no residual `Conds'` over the available
    /// columns reconstructs `Conds(Q)`.
    NoResidual,
    /// Condition C2/C2': a needed `SELECT`/`GROUP BY` column is projected
    /// out of the view.
    SelectColumnNotExposed {
        /// The query column (by name) with no equal view output column.
        column: String,
    },
    /// Condition C4/C4': an aggregate required by the query cannot be
    /// computed from the view's outputs.
    AggregateNotComputable {
        /// Rendering of the aggregate.
        agg: String,
        /// What was missing (e.g. "no COUNT column to recover multiplicities").
        missing: String,
    },
    /// Section 4.3: the view's HAVING clause eliminates groups the query
    /// may need to coalesce.
    ViewHavingWithCoalescing,
    /// Section 4.3: the view's (normalized) HAVING conditions are not
    /// entailed by the query's, or no residual exists.
    HavingMismatch {
        /// Details.
        reason: String,
    },
    /// The view's `SELECT DISTINCT` (or the query's) changes multiplicities
    /// and keys were not provided to justify set semantics.
    SetSemanticsRequired,
    /// The candidate falls outside the implemented fragment (documented
    /// restrictions).
    Unsupported {
        /// Details.
        reason: String,
    },
}

impl fmt::Display for WhyNot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhyNot::AggregationViewForConjunctiveQuery => write!(
                f,
                "section 4.5: an aggregation view cannot answer a conjunctive query \
                 under multiset semantics (multiplicities are lost)"
            ),
            WhyNot::NoColumnMapping => write!(f, "condition C1: no 1-1 column mapping"),
            WhyNot::ViewCondsNotImplied { atom } => write!(
                f,
                "condition C3: mapped view condition `{atom}` is not implied by Conds(Q)"
            ),
            WhyNot::NoResidual => write!(
                f,
                "condition C3: Conds(Q) is not equivalent to the mapped view conditions \
                 conjoined with any residual over the available columns"
            ),
            WhyNot::SelectColumnNotExposed { column } => write!(
                f,
                "condition C2: needed column `{column}` is projected out of the view"
            ),
            WhyNot::AggregateNotComputable { agg, missing } => {
                write!(
                    f,
                    "condition C4: cannot compute `{agg}` from the view ({missing})"
                )
            }
            WhyNot::ViewHavingWithCoalescing => write!(
                f,
                "section 4.3: the view's HAVING clause may eliminate groups that the \
                 query needs to coalesce"
            ),
            WhyNot::HavingMismatch { reason } => {
                write!(f, "section 4.3: HAVING clauses do not match ({reason})")
            }
            WhyNot::SetSemanticsRequired => write!(
                f,
                "section 5: this rewriting needs set semantics (keys or SELECT DISTINCT)"
            ),
            WhyNot::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

/// Which rewriting machinery a candidate went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateMode {
    /// Sections 3/4 multiset rewriting.
    Multiset,
    /// Section 5 set semantics (many-to-1 mapping or DISTINCT).
    SetSemantics,
    /// Footnote-3 expansion via the `Nat` table.
    Expand,
}

impl fmt::Display for CandidateMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CandidateMode::Multiset => "multiset",
            CandidateMode::SetSemantics => "set semantics",
            CandidateMode::Expand => "expand",
        })
    }
}

/// A per-candidate report from [`crate::Rewriter::explain`].
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The view considered.
    pub view: String,
    /// The occurrence assignment tried (view occ → query occ), if any
    /// mapping existed at all.
    pub mapping: Option<Vec<usize>>,
    /// The machinery this candidate went through.
    pub mode: CandidateMode,
    /// Either the rendered rewriting or the failure reason.
    pub outcome: Result<String, WhyNot>,
}

impl fmt::Display for CandidateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view `{}`", self.view)?;
        if let Some(m) = &self.mapping {
            write!(f, " with mapping {m:?}")?;
        }
        if self.mode != CandidateMode::Multiset {
            write!(f, " ({})", self.mode)?;
        }
        match &self.outcome {
            Ok(sql) => write!(f, ": usable -> {sql}"),
            Err(why) => write!(f, ": not usable -> {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_conditions() {
        assert!(WhyNot::NoColumnMapping.to_string().contains("C1"));
        assert!(WhyNot::NoResidual.to_string().contains("C3"));
        assert!(WhyNot::SelectColumnNotExposed { column: "A".into() }
            .to_string()
            .contains("C2"));
        assert!(WhyNot::AggregateNotComputable {
            agg: "SUM(B)".into(),
            missing: "no COUNT column".into()
        }
        .to_string()
        .contains("C4"));
        assert!(WhyNot::AggregationViewForConjunctiveQuery
            .to_string()
            .contains("4.5"));
    }

    #[test]
    fn report_renders_both_outcomes() {
        let ok = CandidateReport {
            view: "V1".into(),
            mapping: Some(vec![0, 1]),
            mode: CandidateMode::Multiset,
            outcome: Ok("SELECT ...".into()),
        };
        assert!(ok.to_string().contains("usable"));
        let bad = CandidateReport {
            view: "V2".into(),
            mapping: None,
            mode: CandidateMode::SetSemantics,
            outcome: Err(WhyNot::NoColumnMapping),
        };
        assert!(bad.to_string().contains("not usable"));
        assert!(bad.to_string().contains("set semantics"));
    }
}
