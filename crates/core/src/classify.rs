//! A cheap satisfiability/triviality classifier for canonical queries.
//!
//! Random workload generators (the `qcheck` differential harness, the
//! facade's `gen` module) want to bias generation toward queries with
//! *non-empty, non-degenerate* answers: an unsatisfiable `WHERE` makes
//! every execution path trivially agree on zero rows, and a query with no
//! conditions at all exercises little of the rewrite machinery. This
//! module classifies a [`Canonical`] query without touching any data,
//! reusing the footnote-2 [`PredClosure`] satisfiability test the rewriter
//! itself runs on.

use crate::canon::{Canonical, GTerm, Term};
use crate::closure::{const_cmp, PredClosure};
use aggview_sql::ast::CmpOp;
use std::cmp::Ordering;

/// Data-independent shape of a query's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// `Conds(Q)` (or a constant `HAVING` comparison) is unsatisfiable:
    /// the answer is empty on every database.
    Unsatisfiable,
    /// No `WHERE` conditions and no `HAVING`: the query never filters, so
    /// it exercises only the projection/grouping surface.
    Trivial,
    /// Everything else.
    General,
}

/// Classify a canonical query. Sound but deliberately incomplete: a
/// `General` verdict does *not* guarantee a non-empty answer (that depends
/// on the data), but an `Unsatisfiable` verdict guarantees an empty one.
pub fn classify(canon: &Canonical) -> QueryClass {
    // Universe: every query column plus every constant in sight (the same
    // construction the rewriter uses before checking implication).
    let mut universe: Vec<Term> = (0..canon.n_cols()).map(Term::Col).collect();
    for a in &canon.conds {
        for t in [&a.lhs, &a.rhs] {
            if matches!(t, Term::Const(_)) {
                universe.push(t.clone());
            }
        }
    }
    let closure = PredClosure::build(&canon.conds, &universe);
    if !closure.satisfiable() {
        return QueryClass::Unsatisfiable;
    }
    // Constant-vs-constant HAVING comparisons decide independently of the
    // groups (e.g. a normalized `HAVING 3 < 2`); a decided-true one filters
    // nothing and does not count as a real group condition.
    let mut filtering_gconds = 0usize;
    for g in &canon.gconds {
        if let (GTerm::Const(l), GTerm::Const(r)) = (&g.lhs, &g.rhs) {
            if let Some(ord) = const_cmp(l, r) {
                let holds = match g.op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                };
                if !holds {
                    return QueryClass::Unsatisfiable;
                }
                continue;
            }
        }
        filtering_gconds += 1;
    }
    if canon.conds.is_empty() && filtering_gconds == 0 {
        return QueryClass::Trivial;
    }
    QueryClass::General
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn canon(sql: &str) -> Canonical {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R", ["A", "B"])).unwrap();
        Canonical::from_query(&parse_query(sql).unwrap(), &cat).unwrap()
    }

    #[test]
    fn contradictory_where_is_unsat() {
        assert_eq!(
            classify(&canon("SELECT A FROM R WHERE A = 1 AND A = 2")),
            QueryClass::Unsatisfiable
        );
        assert_eq!(
            classify(&canon("SELECT A FROM R WHERE A < B AND B < A")),
            QueryClass::Unsatisfiable
        );
    }

    #[test]
    fn constant_having_contradiction_is_unsat() {
        assert_eq!(
            classify(&canon("SELECT A FROM R GROUP BY A HAVING 3 < 2")),
            QueryClass::Unsatisfiable
        );
        assert_eq!(
            classify(&canon("SELECT A FROM R GROUP BY A HAVING 2 < 3")),
            QueryClass::Trivial
        );
    }

    #[test]
    fn unconstrained_queries_are_trivial() {
        assert_eq!(classify(&canon("SELECT A FROM R")), QueryClass::Trivial);
        assert_eq!(
            classify(&canon("SELECT A, SUM(B) FROM R GROUP BY A")),
            QueryClass::Trivial
        );
    }

    #[test]
    fn filtered_queries_are_general() {
        assert_eq!(
            classify(&canon("SELECT A FROM R WHERE A = 1")),
            QueryClass::General
        );
        assert_eq!(
            classify(&canon("SELECT A FROM R GROUP BY A HAVING SUM(B) > 2")),
            QueryClass::General
        );
    }
}
