//! Typed abstract syntax tree for the dialect.
//!
//! The tree mirrors the grammar of the paper's queries (Section 2):
//! a [`Query`] is a single block with a `SELECT` list, a `FROM` list of base
//! table references (optionally aliased — these are the paper's *range
//! variables*), an optional conjunctive `WHERE` clause, a `GROUP BY` column
//! list and an optional conjunctive `HAVING` clause.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A literal constant.
#[derive(Debug, Clone)]
pub enum Literal {
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float (compared bitwise for AST equality).
    Double(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Literal::Int(a), Literal::Int(b)) => a == b,
            (Literal::Double(a), Literal::Double(b)) => a.to_bits() == b.to_bits(),
            (Literal::Str(a), Literal::Str(b)) => a == b,
            (Literal::Bool(a), Literal::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Literal {}

impl Hash for Literal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Literal::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Literal::Double(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Literal::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Literal::Bool(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

/// A (possibly qualified) reference to a column: `table.column` or `column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Qualifier — a table name or alias from the `FROM` clause.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// The five aggregate functions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
}

impl AggFunc {
    /// Canonical (uppercase) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An aggregate function application, e.g. `SUM(Charge)` or `COUNT(*)`.
///
/// `arg = None` encodes `COUNT(*)` (only valid for [`AggFunc::Count`]).
/// The argument may be an arbitrary arithmetic expression; the rewriting
/// engine's *outputs* use that generality (e.g. `SUM(cnt * x)`), while its
/// *inputs* are restricted to plain columns per the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    /// Which aggregate.
    pub func: AggFunc,
    /// The aggregated expression; `None` means `*`.
    pub arg: Option<Box<Expr>>,
}

impl AggCall {
    /// `AGG(column)` over a bare column name.
    pub fn on_column(func: AggFunc, col: ColumnRef) -> Self {
        AggCall {
            func,
            arg: Some(Box::new(Expr::Column(col))),
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggCall {
            func: AggFunc::Count,
            arg: None,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal constant.
    Literal(Literal),
    /// Binary arithmetic.
    Binary {
        /// Left operand.
        lhs: Box<Expr>,
        /// Operator.
        op: ArithOp,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation, `-e`.
    Neg(Box<Expr>),
    /// An aggregate call (valid in `SELECT` and `HAVING` only).
    Agg(AggCall),
}

impl Expr {
    /// Shorthand for a bare column expression.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Shorthand for a qualified column expression.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Neg(e) => e.contains_aggregate(),
            Expr::Agg(_) => true,
        }
    }

    /// Collect every column referenced by this expression (including inside
    /// aggregate arguments) into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Neg(e) => e.collect_columns(out),
            Expr::Agg(agg) => {
                if let Some(arg) = &agg.arg {
                    arg.collect_columns(out);
                }
            }
        }
    }
}

/// Comparison operators of the paper: `{=, ≠, <, ≤, >, ≥}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped: `a op b` ⟺ `b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation: `¬(a op b)` ⟺ `a op.negate() b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A boolean expression: a conjunction of comparison predicates.
///
/// The paper restricts `WHERE`/`HAVING` conditions to conjunctions of
/// built-in comparison predicates, so `AND` is the only connective.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// A single comparison `lhs op rhs`.
    Cmp {
        /// Left operand.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Expr,
    },
    /// Conjunction of two boolean expressions.
    And(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Build a comparison predicate.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp { lhs, op, rhs }
    }

    /// Conjoin a list of predicates into one `BoolExpr`, or `None` if empty.
    pub fn conjoin(mut parts: Vec<BoolExpr>) -> Option<BoolExpr> {
        let first = if parts.is_empty() {
            return None;
        } else {
            parts.remove(0)
        };
        Some(
            parts
                .into_iter()
                .fold(first, |acc, p| BoolExpr::And(Box::new(acc), Box::new(p))),
        )
    }

    /// Flatten the conjunction into its comparison atoms, in textual order.
    pub fn conjuncts(&self) -> Vec<&BoolExpr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a BoolExpr>) {
        match self {
            BoolExpr::Cmp { .. } => out.push(self),
            BoolExpr::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
        }
    }
}

/// One item in the `SELECT` list: an expression with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectItem {
    /// The selected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl SelectItem {
    /// A select item without an alias.
    pub fn expr(expr: Expr) -> Self {
        SelectItem { expr, alias: None }
    }

    /// A select item with an alias.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// A reference to a table (or materialized view) in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// The table name.
    pub table: String,
    /// Optional alias (range variable).
    pub alias: Option<String>,
}

impl TableRef {
    /// A table reference with no alias.
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    /// A table reference with an alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name by which columns of this occurrence are qualified.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A single-block SQL query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The `SELECT` list (non-empty).
    pub select: Vec<SelectItem>,
    /// The `FROM` list (non-empty).
    pub from: Vec<TableRef>,
    /// The `WHERE` clause, if any.
    pub where_clause: Option<BoolExpr>,
    /// The `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// The `HAVING` clause, if any.
    pub having: Option<BoolExpr>,
}

impl Query {
    /// Names of the output columns, in `SELECT`-list order.
    ///
    /// An item's name is its alias when present; otherwise, for a plain
    /// column reference, the column name; otherwise a synthesized name
    /// (`sum_charge`, `count_star`, `expr_3`, ...). Duplicate names get a
    /// numeric suffix (`_2`, `_3`, ...) so the output schema is always
    /// unambiguous — materialized views rely on this.
    pub fn output_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::with_capacity(self.select.len());
        for (i, item) in self.select.iter().enumerate() {
            let base = match &item.alias {
                Some(a) => a.clone(),
                None => synthesize_name(&item.expr, i),
            };
            let mut name = base.clone();
            let mut n = 2;
            while names.contains(&name) {
                name = format!("{base}_{n}");
                n += 1;
            }
            names.push(name);
        }
        names
    }
}

fn synthesize_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        Expr::Agg(agg) => {
            let func = agg.func.as_str().to_ascii_lowercase();
            match &agg.arg {
                None => format!("{func}_star"),
                Some(arg) => match arg.as_ref() {
                    Expr::Column(c) => format!("{func}_{}", c.column.to_ascii_lowercase()),
                    _ => format!("{func}_{index}"),
                },
            }
        }
        _ => format!("expr_{index}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjoin_and_conjuncts_round_trip() {
        let atoms = vec![
            BoolExpr::cmp(Expr::col("a"), CmpOp::Eq, Expr::col("b")),
            BoolExpr::cmp(Expr::col("c"), CmpOp::Lt, Expr::int(5)),
            BoolExpr::cmp(Expr::col("d"), CmpOp::Ne, Expr::str("x")),
        ];
        let combined = BoolExpr::conjoin(atoms.clone()).unwrap();
        let flattened: Vec<BoolExpr> = combined.conjuncts().into_iter().cloned().collect();
        assert_eq!(flattened, atoms);
    }

    #[test]
    fn conjoin_empty_is_none() {
        assert_eq!(BoolExpr::conjoin(vec![]), None);
    }

    #[test]
    fn cmp_op_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn output_names_prefer_alias_then_column_then_synthesized() {
        let q = Query {
            distinct: false,
            select: vec![
                SelectItem::aliased(Expr::col("a"), "alpha"),
                SelectItem::expr(Expr::col("b")),
                SelectItem::expr(Expr::Agg(AggCall::on_column(
                    AggFunc::Sum,
                    ColumnRef::bare("Charge"),
                ))),
                SelectItem::expr(Expr::Agg(AggCall::count_star())),
            ],
            from: vec![TableRef::new("t")],
            where_clause: None,
            group_by: vec![],
            having: None,
        };
        assert_eq!(
            q.output_names(),
            vec!["alpha", "b", "sum_charge", "count_star"]
        );
    }

    #[test]
    fn output_names_deduplicate() {
        let q = Query {
            distinct: false,
            select: vec![
                SelectItem::expr(Expr::col("a")),
                SelectItem::expr(Expr::col("a")),
                SelectItem::expr(Expr::col("a")),
            ],
            from: vec![TableRef::new("t")],
            where_clause: None,
            group_by: vec![],
            having: None,
        };
        assert_eq!(q.output_names(), vec!["a", "a_2", "a_3"]);
    }

    #[test]
    fn contains_aggregate_walks_arithmetic() {
        let e = Expr::Binary {
            lhs: Box::new(Expr::col("n")),
            op: ArithOp::Mul,
            rhs: Box::new(Expr::Agg(AggCall::on_column(
                AggFunc::Sum,
                ColumnRef::bare("x"),
            ))),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("n").contains_aggregate());
    }

    #[test]
    fn literal_double_equality_is_bitwise() {
        assert_eq!(Literal::Double(1.5), Literal::Double(1.5));
        assert_ne!(Literal::Double(1.5), Literal::Double(2.5));
        assert_ne!(Literal::Double(0.0), Literal::Int(0));
    }

    #[test]
    fn binding_name_prefers_alias() {
        assert_eq!(TableRef::new("Calls").binding_name(), "Calls");
        assert_eq!(TableRef::aliased("Calls", "c").binding_name(), "c");
    }
}
