//! Hand-written lexer for the dialect.
//!
//! Produces a flat `Vec<Token>` terminated by [`TokenKind::Eof`]. Keywords
//! are recognized case-insensitively; identifiers may be bare
//! (`[A-Za-z_][A-Za-z0-9_]*`) or `"double-quoted"`; string literals are
//! `'single-quoted'` with `''` as the escape for a single quote.

use crate::error::{SqlError, SqlResult};
use crate::token::{Keyword, Span, Token, TokenKind};

/// Tokenize `input` into a vector of tokens ending with `Eof`.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> SqlResult<Vec<Token>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek(1) == Some(b'-') => self.skip_line_comment(),
                b',' => self.push_simple(TokenKind::Comma),
                b';' => self.push_simple(TokenKind::Semi),
                b'.' => self.push_simple(TokenKind::Dot),
                b'(' => self.push_simple(TokenKind::LParen),
                b')' => self.push_simple(TokenKind::RParen),
                b'=' => self.push_simple(TokenKind::Eq),
                b'+' => self.push_simple(TokenKind::Plus),
                b'*' => self.push_simple(TokenKind::Star),
                b'/' => self.push_simple(TokenKind::Slash),
                b'-' => self.push_simple(TokenKind::Minus),
                b'<' => {
                    self.pos += 1;
                    match self.peek(0) {
                        Some(b'=') => {
                            self.pos += 1;
                            self.push(TokenKind::Le, start);
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            self.push(TokenKind::Ne, start);
                        }
                        _ => self.push(TokenKind::Lt, start),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek(0) == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek(0) == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Ne, start);
                    } else {
                        return Err(SqlError::new(
                            "unexpected `!` (did you mean `!=`?)",
                            Span::new(start, start + 1),
                        ));
                    }
                }
                b'\'' => self.lex_string()?,
                b'"' => self.lex_quoted_ident()?,
                b'0'..=b'9' => self.lex_number()?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_word(),
                other => {
                    return Err(SqlError::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start, start + 1),
                    ));
                }
            }
        }
        let end = self.bytes.len();
        self.out.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.out.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }

    fn push_simple(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start);
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn lex_string(&mut self) -> SqlResult<()> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                None => {
                    return Err(SqlError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
                Some(b'\'') => {
                    // `''` escapes a single quote inside the literal.
                    if self.peek(1) == Some(b'\'') {
                        value.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    // Advance by one char (handle multi-byte UTF-8).
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(TokenKind::Str(value), start);
        Ok(())
    }

    fn lex_quoted_ident(&mut self) -> SqlResult<()> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let begin = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let name = self.src[begin..self.pos].to_string();
                self.pos += 1;
                if name.is_empty() {
                    return Err(SqlError::new(
                        "empty quoted identifier",
                        Span::new(start, self.pos),
                    ));
                }
                self.push(TokenKind::Ident(name), start);
                return Ok(());
            }
            self.pos += 1;
        }
        Err(SqlError::new(
            "unterminated quoted identifier",
            Span::new(start, self.pos),
        ))
    }

    fn lex_number(&mut self) -> SqlResult<()> {
        let start = self.pos;
        while matches!(self.peek(0), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            is_double = true;
            self.pos += 1;
            while matches!(self.peek(0), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let mut ahead = 1;
            if matches!(self.peek(1), Some(b'+') | Some(b'-')) {
                ahead = 2;
            }
            if matches!(self.peek(ahead), Some(b'0'..=b'9')) {
                is_double = true;
                self.pos += ahead;
                while matches!(self.peek(0), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos);
        let kind = if is_double {
            let v: f64 = text
                .parse()
                .map_err(|_| SqlError::new(format!("invalid number `{text}`"), span))?;
            TokenKind::Double(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| SqlError::new(format!("integer `{text}` out of range"), span))?;
            TokenKind::Int(v)
        };
        self.push(kind, start);
        Ok(())
    }

    fn lex_word(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let kind = match Keyword::from_word(word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word.to_string()),
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT a FROM t");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("= <> != < <= > >= + - * /");
        assert_eq!(
            ks,
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 7.25e-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Double(3.5),
                TokenKind::Double(1000.0),
                TokenKind::Double(0.0725),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_ident_is_not_a_double() {
        // `t.a`-style references must not swallow the dot after a number-less
        // identifier; also `1.` followed by an identifier would be malformed,
        // but `1 . a` style never occurs. Check `x.y` lexes as three tokens.
        assert_eq!(
            kinds("t.a"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_quoted_identifier() {
        assert_eq!(
            kinds("\"Group\""),
            vec![TokenKind::Ident("Group".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("a -- comment here\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn rejects_unexpected_character() {
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn lexes_semicolons() {
        assert_eq!(
            kinds("a ; b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Semi,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select SeLeCt SELECT"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Eof,
            ]
        );
    }
}
