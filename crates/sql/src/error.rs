//! Error type shared by the lexer and parser.

use crate::token::Span;
use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl SqlError {
    /// Create an error at the given span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias used throughout the crate.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_message() {
        let e = SqlError::new("unexpected `)`", Span::new(4, 5));
        assert_eq!(e.to_string(), "SQL error at 4..5: unexpected `)`");
    }
}
