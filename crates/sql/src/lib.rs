//! SQL substrate for the `aggview` project.
//!
//! This crate implements, from scratch, the SQL dialect used throughout
//! *"Reasoning with Aggregation Constraints in Views"* (Dar, Jagadish, Levy,
//! Srivastava, 1996): single-block queries of the form
//!
//! ```sql
//! SELECT [DISTINCT] item, ...
//! FROM   table [alias], ...
//! WHERE  conjunction of comparison predicates
//! GROUP BY column, ...
//! HAVING conjunction of comparison predicates over grouping columns and
//!        aggregate terms
//! ```
//!
//! with the aggregate functions `MIN`, `MAX`, `SUM`, `COUNT` and `AVG`, and
//! comparison operators `=`, `<>`, `<`, `<=`, `>`, `>=`. Arithmetic
//! (`+ - * /`) is supported in expressions; the rewriting theory in
//! `aggview-core` restricts its *inputs* to the paper's predicate form, but
//! its *outputs* may use arithmetic (the paper's Section 2 notes the
//! extension is natural, and the weighted-aggregate rewriting strategy needs
//! it).
//!
//! The crate provides:
//! * [`ast`] — the typed abstract syntax tree,
//! * [`lexer`] — a hand-written tokenizer with source spans,
//! * [`parser`] — a recursive-descent parser ([`parse_query`]),
//! * [`display`] — a pretty-printer such that parsing the printed form of a
//!   query yields the same AST (round-trip property, tested),
//! * [`error`] — diagnostics carrying byte spans.

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod stmt;
pub mod token;

pub use ast::{
    AggCall, AggFunc, ArithOp, BoolExpr, CmpOp, ColumnRef, Expr, Literal, Query, SelectItem,
    TableRef,
};
pub use error::{SqlError, SqlResult};
pub use parser::parse_query;
pub use stmt::{parse_script, parse_statement, CreateTable, CreateView, Delete, Insert, Statement};
