//! Recursive-descent parser for the dialect.
//!
//! Grammar (conjunction-only boolean structure, per the paper):
//!
//! ```text
//! query       := SELECT [DISTINCT] select_item (',' select_item)*
//!                FROM table_ref (',' table_ref)*
//!                [WHERE bool] [GROUP BY colref (',' colref)*] [HAVING bool]
//! select_item := expr [[AS] ident]
//! table_ref   := ident [[AS] ident]
//! bool        := bfactor (AND bfactor)*
//! bfactor     := '(' bool ')' | expr cmpop expr
//! expr        := term (('+'|'-') term)*
//! term        := factor (('*'|'/') factor)*
//! factor      := '-' factor | primary
//! primary     := literal | aggcall | colref | '(' expr ')'
//! aggcall     := (MIN|MAX|SUM|COUNT|AVG) '(' ('*' | expr) ')'
//! colref      := ident ['.' ident]
//! ```
//!
//! `OR` and `NOT` are deliberately absent: the theory of the paper covers
//! conjunctions of comparison predicates only, and accepting a wider input
//! language here would silently exceed what the rewriter can reason about.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::tokenize;
use crate::token::{Keyword, Span, Token, TokenKind};

/// Parse a single query from `input`. Trailing input is an error.
pub fn parse_query(input: &str) -> SqlResult<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// The recursive-descent parser. Query parsing lives here; statement-level
/// parsing (DDL/DML for scripts) extends it in [`crate::stmt`].
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    pub(crate) fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    pub(crate) fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_keyword(&mut self, kw: Keyword) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {}", kw.as_str())))
        }
    }

    pub(crate) fn expect(&mut self, kind: TokenKind) -> SqlResult<()> {
        if *self.peek_kind() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {kind}")))
        }
    }

    pub(crate) fn expect_eof(&mut self) -> SqlResult<()> {
        if matches!(self.peek_kind(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    pub(crate) fn unexpected(&self, what: &str) -> SqlError {
        let t = self.peek();
        SqlError::new(format!("{what}, found {}", t.kind), t.span)
    }

    pub(crate) fn ident(&mut self) -> SqlResult<String> {
        match self.peek_kind() {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => Ok(name),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    pub(crate) fn query(&mut self) -> SqlResult<Query> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);

        let mut select = vec![self.select_item()?];
        while matches!(self.peek_kind(), TokenKind::Comma) {
            self.bump();
            select.push(self.select_item()?);
        }

        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        while matches!(self.peek_kind(), TokenKind::Comma) {
            self.bump();
            from.push(self.table_ref()?);
        }

        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.bool_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.column_ref()?);
            while matches!(self.peek_kind(), TokenKind::Comma) {
                self.bump();
                group_by.push(self.column_ref()?);
            }
        }

        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.bool_expr()?)
        } else {
            None
        };

        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        let expr = self.expr()?;
        let alias =
            if self.eat_keyword(Keyword::As) || matches!(self.peek_kind(), TokenKind::Ident(_)) {
                Some(self.ident()?)
            } else {
                None
            };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let table = self.ident()?;
        let alias =
            if self.eat_keyword(Keyword::As) || matches!(self.peek_kind(), TokenKind::Ident(_)) {
                Some(self.ident()?)
            } else {
                None
            };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> SqlResult<ColumnRef> {
        let first = self.ident()?;
        if matches!(self.peek_kind(), TokenKind::Dot) {
            self.bump();
            let second = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column: second,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    pub(crate) fn bool_expr(&mut self) -> SqlResult<BoolExpr> {
        let mut acc = self.bool_factor()?;
        while self.eat_keyword(Keyword::And) {
            let rhs = self.bool_factor()?;
            acc = BoolExpr::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn bool_factor(&mut self) -> SqlResult<BoolExpr> {
        // A parenthesis could open either a nested boolean conjunction or a
        // parenthesized arithmetic expression that begins a comparison
        // (`(a + b) < c`). Try the boolean reading first and fall back.
        if matches!(self.peek_kind(), TokenKind::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.bool_expr() {
                if matches!(self.peek_kind(), TokenKind::RParen) {
                    self.bump();
                    // `(a = b) AND c = d` — the closing paren must be
                    // followed by AND / HAVING / GROUP / EOF etc., never by a
                    // comparison operator; if it is, re-parse as arithmetic.
                    if !matches!(
                        self.peek_kind(),
                        TokenKind::Eq
                            | TokenKind::Ne
                            | TokenKind::Lt
                            | TokenKind::Le
                            | TokenKind::Gt
                            | TokenKind::Ge
                    ) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = self.cmp_op()?;
        let rhs = self.expr()?;
        Ok(BoolExpr::Cmp { lhs, op, rhs })
    }

    fn cmp_op(&mut self) -> SqlResult<CmpOp> {
        let op = match self.peek_kind() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.unexpected("expected comparison operator")),
        };
        self.bump();
        Ok(op)
    }

    fn expr(&mut self) -> SqlResult<Expr> {
        let mut acc = self.term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            acc = Expr::Binary {
                lhs: Box::new(acc),
                op,
                rhs: Box::new(rhs),
            };
        }
        Ok(acc)
    }

    fn term(&mut self) -> SqlResult<Expr> {
        let mut acc = self.factor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            acc = Expr::Binary {
                lhs: Box::new(acc),
                op,
                rhs: Box::new(rhs),
            };
        }
        Ok(acc)
    }

    fn factor(&mut self) -> SqlResult<Expr> {
        if matches!(self.peek_kind(), TokenKind::Minus) {
            self.bump();
            let inner = self.factor()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Double(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Double(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(
                kw @ (Keyword::Min | Keyword::Max | Keyword::Sum | Keyword::Count | Keyword::Avg),
            ) => {
                let span = self.peek().span;
                self.bump();
                self.agg_call(kw, span)
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_) => {
                let col = self.column_ref()?;
                Ok(Expr::Column(col))
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }

    fn agg_call(&mut self, kw: Keyword, kw_span: Span) -> SqlResult<Expr> {
        let func = match kw {
            Keyword::Min => AggFunc::Min,
            Keyword::Max => AggFunc::Max,
            Keyword::Sum => AggFunc::Sum,
            Keyword::Count => AggFunc::Count,
            Keyword::Avg => AggFunc::Avg,
            _ => unreachable!("caller checked the keyword"),
        };
        self.expect(TokenKind::LParen)?;
        let arg = if matches!(self.peek_kind(), TokenKind::Star) {
            if func != AggFunc::Count {
                return Err(SqlError::new(
                    format!("`*` argument is only valid for COUNT, not {func}"),
                    kw_span,
                ));
            }
            self.bump();
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        self.expect(TokenKind::RParen)?;
        Ok(Expr::Agg(AggCall { func, arg }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse_query("SELECT a FROM t").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from, vec![TableRef::new("t")]);
        assert!(q.where_clause.is_none());
        assert!(q.group_by.is_empty());
        assert!(q.having.is_none());
        assert!(!q.distinct);
    }

    #[test]
    fn parses_motivating_example_query() {
        // Query Q of Example 1.1 in the paper.
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name \
             HAVING SUM(Charge) < 1000000",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.group_by.len(), 2);
        assert!(q.having.is_some());
        let where_atoms = q.where_clause.as_ref().unwrap().conjuncts();
        assert_eq!(where_atoms.len(), 2);
        match &q.select[2].expr {
            Expr::Agg(a) => assert_eq!(a.func, AggFunc::Sum),
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_aliases() {
        let q = parse_query("SELECT c.x AS ex, y why FROM tbl AS c, other o").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("ex"));
        assert_eq!(q.select[1].alias.as_deref(), Some("why"));
        assert_eq!(q.from[0], TableRef::aliased("tbl", "c"));
        assert_eq!(q.from[1], TableRef::aliased("other", "o"));
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            q.select[0].expr,
            Expr::Agg(AggCall {
                func: AggFunc::Count,
                arg: None
            })
        );
    }

    #[test]
    fn rejects_star_in_non_count() {
        assert!(parse_query("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let q = parse_query("SELECT a + b * c FROM t").unwrap();
        match &q.select[0].expr {
            Expr::Binary {
                op: ArithOp::Add,
                rhs,
                ..
            } => match rhs.as_ref() {
                Expr::Binary {
                    op: ArithOp::Mul, ..
                } => {}
                other => panic!("expected multiplication on the right, got {other:?}"),
            },
            other => panic!("expected addition at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_arithmetic_in_comparison() {
        let q = parse_query("SELECT a FROM t WHERE (a + b) < 10").unwrap();
        let atoms = q.where_clause.unwrap();
        match atoms {
            BoolExpr::Cmp {
                op: CmpOp::Lt, lhs, ..
            } => assert!(matches!(lhs, Expr::Binary { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_conjunction() {
        let q = parse_query("SELECT a FROM t WHERE (a = b AND c = d) AND e = f").unwrap();
        assert_eq!(q.where_clause.unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn parses_negative_numbers() {
        let q = parse_query("SELECT a FROM t WHERE a > -5").unwrap();
        match q.where_clause.unwrap() {
            BoolExpr::Cmp { rhs, .. } => assert_eq!(rhs, Expr::Neg(Box::new(Expr::int(5)))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_distinct() {
        let q = parse_query("SELECT DISTINCT a FROM t").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn parses_having_with_aggregate() {
        let q = parse_query("SELECT a, MAX(b) FROM t GROUP BY a HAVING MAX(b) > 10 AND a <> 3")
            .unwrap();
        assert_eq!(q.having.unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT a FROM t extra junk ,").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse_query("SELECT a").is_err());
    }

    #[test]
    fn rejects_empty_select() {
        assert!(parse_query("SELECT FROM t").is_err());
    }

    #[test]
    fn rejects_or_keyword() {
        // OR is not a keyword; it parses as an alias/identifier and then
        // fails — the dialect is conjunction-only by design.
        assert!(parse_query("SELECT a FROM t WHERE a = 1 OR b = 2").is_err());
    }

    #[test]
    fn group_by_requires_by() {
        assert!(parse_query("SELECT a FROM t GROUP a").is_err());
    }

    #[test]
    fn parses_qualified_group_by() {
        let q = parse_query("SELECT t.a FROM t GROUP BY t.a").unwrap();
        assert_eq!(q.group_by, vec![ColumnRef::qualified("t", "a")]);
    }

    #[test]
    fn parses_string_and_bool_literals() {
        let q = parse_query("SELECT a FROM t WHERE s = 'hi' AND b = TRUE").unwrap();
        let atoms = q.where_clause.unwrap();
        assert_eq!(atoms.conjuncts().len(), 2);
    }
}
