//! Pretty-printer for the AST.
//!
//! The printer produces text that the parser maps back to the same AST
//! (round-trip property, checked in this module's tests and by a property
//! test in the crate's test suite) for any AST the parser itself can
//! produce. Arithmetic is parenthesized according to precedence.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest representation that round-trips.
            Literal::Double(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Precedence levels for the arithmetic printer.
fn prec(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add | ArithOp::Sub => 1,
        ArithOp::Mul | ArithOp::Div => 2,
    }
}

fn fmt_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Column(c) => write!(f, "{c}"),
        Expr::Literal(l) => write!(f, "{l}"),
        Expr::Binary { lhs, op, rhs } => {
            let p = prec(*op);
            let need_parens = p < parent_prec;
            if need_parens {
                write!(f, "(")?;
            }
            fmt_expr(lhs, p, f)?;
            write!(f, " {} ", op.as_str())?;
            // Right operand of a left-associative chain needs strictly
            // higher precedence to avoid re-association on re-parse:
            // `a - (b + c)` must keep its parentheses.
            fmt_expr(rhs, p + 1, f)?;
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Neg(inner) => {
            write!(f, "-")?;
            // Negation binds tightest; parenthesize anything compound.
            match inner.as_ref() {
                Expr::Column(_) | Expr::Literal(_) => fmt_expr(inner, u8::MAX, f),
                _ => {
                    write!(f, "(")?;
                    fmt_expr(inner, 0, f)?;
                    write!(f, ")")
                }
            }
        }
        Expr::Agg(agg) => {
            write!(f, "{}(", agg.func)?;
            match &agg.arg {
                None => write!(f, "*")?,
                Some(arg) => fmt_expr(arg, 0, f)?,
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Cmp { lhs, op, rhs } => {
                write!(f, "{lhs} {} {rhs}", op.as_str())
            }
            BoolExpr::And(a, b) => write!(f, "{a} AND {b}"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table)?;
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn round_trip(sql: &str) {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse `{printed}` (from `{sql}`): {e}"));
        assert_eq!(
            q1, q2,
            "round trip changed the AST for `{sql}` -> `{printed}`"
        );
    }

    #[test]
    fn round_trips_simple() {
        round_trip("SELECT a FROM t");
        round_trip("SELECT DISTINCT a, b FROM t, s");
    }

    #[test]
    fn round_trips_example_1_1() {
        round_trip(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name \
             HAVING SUM(Charge) < 1000000",
        );
    }

    #[test]
    fn round_trips_arithmetic() {
        round_trip("SELECT a + b * c - d / e FROM t");
        round_trip("SELECT (a + b) * c FROM t");
        round_trip("SELECT a - (b + c) FROM t");
        round_trip("SELECT -a FROM t");
        round_trip("SELECT -(a + b) FROM t");
    }

    #[test]
    fn round_trips_aliases_and_aggregates() {
        round_trip("SELECT x.a AS first, SUM(b) AS total, COUNT(*) FROM t AS x GROUP BY x.a");
    }

    #[test]
    fn round_trips_strings() {
        round_trip("SELECT a FROM t WHERE s = 'it''s' AND u <> 'plain'");
    }

    #[test]
    fn round_trips_weighted_aggregate_output_form() {
        // The form the rewriter's Strategy B emits.
        round_trip("SELECT a, SUM(cnt * x) / SUM(cnt) FROM v GROUP BY a");
    }

    #[test]
    fn round_trips_doubles() {
        round_trip("SELECT a FROM t WHERE x > 2.5 AND y < 1e3");
    }
}
