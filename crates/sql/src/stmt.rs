//! Statements beyond the single query: the small DDL/DML surface that the
//! `aggview` CLI drives — `CREATE TABLE` (with `KEY` declarations),
//! `CREATE VIEW`, `INSERT INTO … VALUES`, `EXPLAIN SELECT …` and plain
//! `SELECT`. Scripts are semicolon-separated statement sequences.

use crate::ast::{BoolExpr, Literal, Query};
use crate::error::{SqlError, SqlResult};
use crate::lexer::tokenize;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};
use std::fmt;

/// `CREATE TABLE name (col, ..., KEY (col, ...), ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Declared keys (by column name).
    pub keys: Vec<Vec<String>>,
}

/// `CREATE VIEW name AS SELECT ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateView {
    /// View name.
    pub name: String,
    /// Defining query.
    pub query: Query,
}

/// `INSERT INTO table VALUES (lit, ...), (lit, ...), ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Literal rows.
    pub rows: Vec<Vec<Literal>>,
}

/// `DELETE FROM table [WHERE cond]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Row filter; `None` deletes everything.
    pub filter: Option<BoolExpr>,
}

/// A script statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Table definition.
    CreateTable(CreateTable),
    /// Materialized view definition.
    CreateView(CreateView),
    /// Row insertion.
    Insert(Insert),
    /// Row deletion.
    Delete(Delete),
    /// A query to answer (preferring materialized views).
    Select(Query),
    /// Report, per view and mapping, why it is or is not usable.
    Explain(Query),
    /// Run the query through the full serving path and report per-stage
    /// timings and search counters instead of the rows.
    ExplainAnalyze(Query),
    /// Suggest materialized views worth creating for this query.
    Suggest(Query),
}

/// Parse a single statement (no trailing input).
pub fn parse_statement(input: &str) -> SqlResult<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let stmt = p.statement()?;
    p.eat_semi();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
///
/// ```
/// use aggview_sql::{parse_script, Statement};
///
/// let script = parse_script(
///     "CREATE TABLE T (a, b, KEY (a)); \
///      INSERT INTO T VALUES (1, 2); \
///      SELECT a, SUM(b) FROM T GROUP BY a;",
/// ).unwrap();
/// assert_eq!(script.len(), 3);
/// assert!(matches!(script[2], Statement::Select(_)));
/// ```
pub fn parse_script(input: &str) -> SqlResult<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let mut out = Vec::new();
    loop {
        while p.eat_semi() {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.eat_semi() {
            return Err(p.error_here("expected `;` between statements"));
        }
    }
    Ok(out)
}

impl Parser {
    /// Parse one statement.
    pub(crate) fn statement(&mut self) -> SqlResult<Statement> {
        if self.eat_keyword(Keyword::Create) {
            if self.eat_keyword(Keyword::Table) {
                return self.create_table().map(Statement::CreateTable);
            }
            if self.eat_keyword(Keyword::View) {
                return self.create_view().map(Statement::CreateView);
            }
            return Err(self.error_here("expected TABLE or VIEW after CREATE"));
        }
        if self.eat_keyword(Keyword::Insert) {
            return self.insert().map(Statement::Insert);
        }
        if self.eat_keyword(Keyword::Delete) {
            return self.delete().map(Statement::Delete);
        }
        if self.eat_keyword(Keyword::Explain) {
            if self.eat_keyword(Keyword::Analyze) {
                return self.query().map(Statement::ExplainAnalyze);
            }
            return self.query().map(Statement::Explain);
        }
        if self.eat_keyword(Keyword::Suggest) {
            return self.query().map(Statement::Suggest);
        }
        self.query().map(Statement::Select)
    }

    fn create_table(&mut self) -> SqlResult<CreateTable> {
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut keys = Vec::new();
        loop {
            if self.eat_keyword(Keyword::Key) {
                self.expect(TokenKind::LParen)?;
                let mut key = vec![self.ident()?];
                while self.eat(TokenKind::Comma) {
                    key.push(self.ident()?);
                }
                self.expect(TokenKind::RParen)?;
                keys.push(key);
            } else {
                columns.push(self.ident()?);
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        if columns.is_empty() {
            return Err(self.error_here("a table needs at least one column"));
        }
        for key in &keys {
            for col in key {
                if !columns.contains(col) {
                    return Err(self.error_here(&format!("KEY references unknown column `{col}`")));
                }
            }
        }
        Ok(CreateTable {
            name,
            columns,
            keys,
        })
    }

    fn create_view(&mut self) -> SqlResult<CreateView> {
        let name = self.ident()?;
        self.expect_keyword(Keyword::As)?;
        let query = self.query()?;
        Ok(CreateView { name, query })
    }

    fn insert(&mut self) -> SqlResult<Insert> {
        self.expect_keyword(Keyword::Into)?;
        let table = self.ident()?;
        self.expect_keyword(Keyword::Values)?;
        let mut rows = vec![self.literal_row()?];
        while self.eat(TokenKind::Comma) {
            rows.push(self.literal_row()?);
        }
        Ok(Insert { table, rows })
    }

    fn delete(&mut self) -> SqlResult<Delete> {
        self.expect_keyword(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.bool_expr()?)
        } else {
            None
        };
        Ok(Delete { table, filter })
    }

    fn literal_row(&mut self) -> SqlResult<Vec<Literal>> {
        self.expect(TokenKind::LParen)?;
        let mut row = vec![self.literal()?];
        while self.eat(TokenKind::Comma) {
            row.push(self.literal()?);
        }
        self.expect(TokenKind::RParen)?;
        Ok(row)
    }

    fn literal(&mut self) -> SqlResult<Literal> {
        let negative = self.eat(TokenKind::Minus);
        let lit = match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Literal::Int(if negative { -v } else { v })
            }
            TokenKind::Double(v) => {
                self.bump();
                Literal::Double(if negative { -v } else { v })
            }
            TokenKind::Str(s) if !negative => {
                self.bump();
                Literal::Str(s)
            }
            TokenKind::Keyword(Keyword::True) if !negative => {
                self.bump();
                Literal::Bool(true)
            }
            TokenKind::Keyword(Keyword::False) if !negative => {
                self.bump();
                Literal::Bool(false)
            }
            _ => return Err(self.error_here("expected literal value")),
        };
        Ok(lit)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(ct) => {
                write!(f, "CREATE TABLE {} (", ct.name)?;
                for (i, c) in ct.columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                for key in &ct.keys {
                    write!(f, ", KEY ({})", key.join(", "))?;
                }
                write!(f, ")")
            }
            Statement::CreateView(cv) => write!(f, "CREATE VIEW {} AS {}", cv.name, cv.query),
            Statement::Insert(ins) => {
                write!(f, "INSERT INTO {} VALUES ", ins.table)?;
                for (i, row) in ins.rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, lit) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{lit}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Explain(q) => write!(f, "EXPLAIN {q}"),
            Statement::ExplainAnalyze(q) => write!(f, "EXPLAIN ANALYZE {q}"),
            Statement::Suggest(q) => write!(f, "SUGGEST {q}"),
        }
    }
}

/// Fallible helpers the statement parser needs from [`Parser`].
impl Parser {
    pub(crate) fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_semi(&mut self) -> bool {
        self.eat(TokenKind::Semi)
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    pub(crate) fn error_here(&self, what: &str) -> SqlError {
        self.unexpected(what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_keys() {
        let s = parse_statement(
            "CREATE TABLE Calls (Call_Id, Plan_Id, Charge, KEY (Call_Id), KEY (Plan_Id, Charge))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!("expected CREATE TABLE")
        };
        assert_eq!(ct.name, "Calls");
        assert_eq!(ct.columns, vec!["Call_Id", "Plan_Id", "Charge"]);
        assert_eq!(ct.keys, vec![vec!["Call_Id"], vec!["Plan_Id", "Charge"]]);
    }

    #[test]
    fn rejects_key_on_unknown_column() {
        assert!(parse_statement("CREATE TABLE T (a, KEY (zz))").is_err());
    }

    #[test]
    fn parses_create_view() {
        let s = parse_statement("CREATE VIEW V AS SELECT a FROM t").unwrap();
        let Statement::CreateView(cv) = s else {
            panic!("expected CREATE VIEW")
        };
        assert_eq!(cv.name, "V");
        assert_eq!(cv.query.to_string(), "SELECT a FROM t");
    }

    #[test]
    fn parses_insert_rows() {
        let s = parse_statement(
            "INSERT INTO T VALUES (1, 'x', TRUE), (-2, 'y', FALSE), (3.5, '', TRUE)",
        )
        .unwrap();
        let Statement::Insert(ins) = s else {
            panic!("expected INSERT")
        };
        assert_eq!(ins.rows.len(), 3);
        assert_eq!(ins.rows[1][0], Literal::Int(-2));
        assert_eq!(ins.rows[2][0], Literal::Double(3.5));
    }

    #[test]
    fn parses_explain() {
        let s = parse_statement("EXPLAIN SELECT a FROM t").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn parses_delete() {
        let s = parse_statement("DELETE FROM T WHERE a = 1 AND b > 2").unwrap();
        let Statement::Delete(d) = s else {
            panic!("expected DELETE")
        };
        assert_eq!(d.table, "T");
        assert_eq!(d.filter.as_ref().unwrap().conjuncts().len(), 2);
        let s = parse_statement("DELETE FROM T").unwrap();
        let Statement::Delete(d) = s else {
            panic!("expected DELETE")
        };
        assert!(d.filter.is_none());
    }

    #[test]
    fn parses_suggest() {
        let s = parse_statement("SUGGEST SELECT a, SUM(b) FROM t GROUP BY a").unwrap();
        assert!(matches!(s, Statement::Suggest(_)));
    }

    #[test]
    fn parses_script() {
        let script = parse_script(
            "CREATE TABLE T (a, b);\n\
             INSERT INTO T VALUES (1, 2);\n\
             -- a comment between statements\n\
             CREATE VIEW V AS SELECT a FROM T;\n\
             SELECT a FROM T;",
        )
        .unwrap();
        assert_eq!(script.len(), 4);
        assert!(matches!(script[0], Statement::CreateTable(_)));
        assert!(matches!(script[3], Statement::Select(_)));
    }

    #[test]
    fn script_tolerates_trailing_and_empty_statements() {
        assert_eq!(parse_script(";;\n;").unwrap().len(), 0);
        assert_eq!(parse_script("SELECT a FROM t").unwrap().len(), 1);
        assert_eq!(parse_script("SELECT a FROM t;;").unwrap().len(), 1);
    }

    #[test]
    fn script_requires_separators() {
        assert!(parse_script("SELECT a FROM t SELECT b FROM t").is_err());
    }

    #[test]
    fn statements_round_trip() {
        for sql in [
            "CREATE TABLE T (a, b, KEY (a))",
            "CREATE VIEW V AS SELECT a, SUM(b) FROM T GROUP BY a",
            "INSERT INTO T VALUES (1, -2), (3, 4)",
            "SELECT a FROM T WHERE b = 'x'",
            "EXPLAIN SELECT a FROM T",
            "SUGGEST SELECT a FROM T",
            "DELETE FROM T WHERE a = 1",
            "DELETE FROM T",
        ] {
            let s1 = parse_statement(sql).unwrap();
            let printed = s1.to_string();
            let s2 =
                parse_statement(&printed).unwrap_or_else(|e| panic!("re-parse `{printed}`: {e}"));
            assert_eq!(s1, s2, "round trip changed `{sql}` -> `{printed}`");
        }
    }
}
