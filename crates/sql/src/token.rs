//! Token definitions produced by the [`crate::lexer`].

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character of the token.
    pub start: usize,
    /// Byte offset one past the last character of the token.
    pub end: usize,
}

impl Span {
    /// Create a new span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Keywords of the dialect. Matched case-insensitively by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `SELECT`
    Select,
    /// `DISTINCT`
    Distinct,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `GROUP` (always followed by `BY`)
    Group,
    /// `BY`
    By,
    /// `HAVING`
    Having,
    /// `AND`
    And,
    /// `AS`
    As,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `CREATE`
    Create,
    /// `TABLE`
    Table,
    /// `VIEW`
    View,
    /// `KEY`
    Key,
    /// `INSERT`
    Insert,
    /// `INTO`
    Into,
    /// `VALUES`
    Values,
    /// `EXPLAIN`
    Explain,
    /// `ANALYZE` (after `EXPLAIN`)
    Analyze,
    /// `SUGGEST`
    Suggest,
    /// `DELETE`
    Delete,
}

impl Keyword {
    /// Look up a keyword from an identifier-shaped word, case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        // The dialect has few keywords; a linear scan over uppercase forms is
        // faster than allocating an uppercased string for a map lookup.
        const TABLE: &[(&str, Keyword)] = &[
            ("SELECT", Keyword::Select),
            ("DISTINCT", Keyword::Distinct),
            ("FROM", Keyword::From),
            ("WHERE", Keyword::Where),
            ("GROUP", Keyword::Group),
            ("BY", Keyword::By),
            ("HAVING", Keyword::Having),
            ("AND", Keyword::And),
            ("AS", Keyword::As),
            ("MIN", Keyword::Min),
            ("MAX", Keyword::Max),
            ("SUM", Keyword::Sum),
            ("COUNT", Keyword::Count),
            ("AVG", Keyword::Avg),
            ("TRUE", Keyword::True),
            ("FALSE", Keyword::False),
            ("CREATE", Keyword::Create),
            ("TABLE", Keyword::Table),
            ("VIEW", Keyword::View),
            ("KEY", Keyword::Key),
            ("INSERT", Keyword::Insert),
            ("INTO", Keyword::Into),
            ("VALUES", Keyword::Values),
            ("EXPLAIN", Keyword::Explain),
            ("ANALYZE", Keyword::Analyze),
            ("SUGGEST", Keyword::Suggest),
            ("DELETE", Keyword::Delete),
        ];
        TABLE
            .iter()
            .find(|(w, _)| w.eq_ignore_ascii_case(word))
            .map(|&(_, k)| k)
    }

    /// Canonical (uppercase) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Distinct => "DISTINCT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::And => "AND",
            Keyword::As => "AS",
            Keyword::Min => "MIN",
            Keyword::Max => "MAX",
            Keyword::Sum => "SUM",
            Keyword::Count => "COUNT",
            Keyword::Avg => "AVG",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Create => "CREATE",
            Keyword::Table => "TABLE",
            Keyword::View => "VIEW",
            Keyword::Key => "KEY",
            Keyword::Insert => "INSERT",
            Keyword::Into => "INTO",
            Keyword::Values => "VALUES",
            Keyword::Explain => "EXPLAIN",
            Keyword::Analyze => "ANALYZE",
            Keyword::Suggest => "SUGGEST",
            Keyword::Delete => "DELETE",
        }
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (see [`Keyword`]).
    Keyword(Keyword),
    /// An identifier (bare or `"quoted"`).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Double(f64),
    /// A `'single-quoted'` string literal.
    Str(String),
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Double(v) => write!(f, "number `{v}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("HAVING"), Some(Keyword::Having));
        assert_eq!(Keyword::from_word("notakeyword"), None);
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn keyword_round_trips_through_spelling() {
        for kw in [
            Keyword::Select,
            Keyword::Distinct,
            Keyword::From,
            Keyword::Where,
            Keyword::Group,
            Keyword::By,
            Keyword::Having,
            Keyword::And,
            Keyword::As,
            Keyword::Min,
            Keyword::Max,
            Keyword::Sum,
            Keyword::Count,
            Keyword::Avg,
            Keyword::True,
            Keyword::False,
            Keyword::Create,
            Keyword::Table,
            Keyword::View,
            Keyword::Key,
            Keyword::Insert,
            Keyword::Into,
            Keyword::Values,
            Keyword::Explain,
            Keyword::Analyze,
            Keyword::Suggest,
            Keyword::Delete,
        ] {
            assert_eq!(Keyword::from_word(kw.as_str()), Some(kw));
        }
    }
}
