//! Property tests for the SQL frontend:
//! * printing any parser-producible AST and re-parsing yields the same AST
//!   (the round-trip invariant the rewriter relies on when it renders
//!   rewritings back to SQL),
//! * the lexer/parser never panic on arbitrary input (they may error).

use aggview_sql::ast::*;
use aggview_sql::{parse_query, parse_statement, Statement};
use proptest::prelude::*;

/// Strategy for identifiers that are not keywords.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        aggview_sql::token::Keyword::from_word(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Non-negative numerics: the parser produces negative numbers as
        // Neg(literal), so parser-producible ASTs never hold them directly.
        (0i64..=i64::MAX).prop_map(Literal::Int),
        (0.0f64..1e12).prop_map(Literal::Double),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(t, c)| ColumnRef {
        table: t,
        column: c,
    })
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Sum),
        Just(AggFunc::Count),
        Just(AggFunc::Avg),
    ]
}

/// Scalar expressions (no aggregates), recursively bounded.
fn scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        column_ref().prop_map(Expr::Column),
        literal().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), arith_op(), inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                lhs: Box::new(l),
                op,
                rhs: Box::new(r),
            }),
            // Negation of compound expressions only: `-literal` re-parses
            // as a (folded) negative literal, and the parser's own output
            // never nests Neg around a bare literal the printer would
            // collapse. Negating a column is parser-producible.
            inner
                .clone()
                .prop_filter("avoid -literal ambiguity", |e| {
                    !matches!(e, Expr::Literal(_) | Expr::Neg(_))
                })
                .prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

fn select_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        scalar_expr(),
        (agg_func(), column_ref()).prop_map(|(f, c)| Expr::Agg(AggCall::on_column(f, c))),
        Just(Expr::Agg(AggCall::count_star())),
    ]
}

fn bool_expr() -> impl Strategy<Value = BoolExpr> {
    let atom = (scalar_expr(), cmp_op(), scalar_expr()).prop_map(|(l, op, r)| BoolExpr::Cmp {
        lhs: l,
        op,
        rhs: r,
    });
    proptest::collection::vec(atom, 1..4)
        .prop_map(|atoms| BoolExpr::conjoin(atoms).expect("non-empty"))
}

fn query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec((select_expr(), proptest::option::of(ident())), 1..4),
        proptest::collection::vec((ident(), proptest::option::of(ident())), 1..3),
        proptest::option::of(bool_expr()),
        proptest::collection::vec(column_ref(), 0..3),
        proptest::option::of(bool_expr()),
    )
        .prop_map(
            |(distinct, select, from, where_clause, group_by, having)| Query {
                distinct,
                select: select
                    .into_iter()
                    .map(|(expr, alias)| SelectItem { expr, alias })
                    .collect(),
                from: from
                    .into_iter()
                    .map(|(table, alias)| TableRef { table, alias })
                    .collect(),
                where_clause,
                group_by,
                having,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printer produced unparsable SQL `{printed}`: {e}"));
        prop_assert_eq!(q, reparsed, "round trip changed the AST for `{}`", printed);
    }

    #[test]
    fn parser_never_panics(input in "[ -~]{0,80}") {
        let _ = parse_query(&input);
        let _ = parse_statement(&input);
        let _ = aggview_sql::parse_script(&input);
    }

    #[test]
    fn lexer_never_panics(input in proptest::string::string_regex(".{0,60}").unwrap()) {
        let _ = aggview_sql::lexer::tokenize(&input);
    }

    #[test]
    fn statement_round_trip(q in query()) {
        for stmt in [Statement::Select(q.clone()), Statement::Explain(q.clone())] {
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("unparsable statement `{printed}`: {e}"));
            prop_assert_eq!(stmt, reparsed);
        }
    }
}
