//! Incremental view maintenance for inserts.
//!
//! The paper's Section 1 motivates materialized summary tables over
//! high-volume transaction streams ("very large transaction recording
//! systems … answered more efficiently by materializing and maintaining
//! appropriately defined aggregate views"), citing the incremental
//! maintenance literature ([BLT86, GMS93]) as the orthogonal machinery
//! that keeps those views fresh. This module provides the insert-only
//! slice of that machinery for the view shapes the rewriter cares about:
//!
//! * **Incrementally maintainable**: a single-block view over *one* base
//!   table, no `HAVING`, no `DISTINCT`, whose select list is grouping
//!   columns plus plain `SUM`/`COUNT`/`MIN`/`MAX` aggregates (under
//!   inserts, `MIN`/`MAX` only ever tighten). `WHERE` conditions are
//!   applied to the delta rows.
//! * **Deletes** are additionally maintainable when the view has no
//!   `MIN`/`MAX` output (those can loosen under deletion) and exposes a
//!   `COUNT` column (to detect emptied groups).
//! * **Everything else** (joins, `AVG`, `HAVING`, views over views, ...)
//!   falls back to recomputation.

use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::exec::execute_with;
use crate::index::GroupIndex;
use crate::relation::Relation;
use crate::value::{self, Value};
use aggview_sql::ast::{AggFunc, BoolExpr, CmpOp, ColumnRef, Expr, Literal, Query};
use std::collections::HashMap;

/// How a view can be maintained under inserts to `base_table`.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenancePlan {
    /// Apply delta rows directly to the materialized relation.
    Incremental(IncrementalPlan),
    /// Re-run the defining query.
    Recompute,
}

/// One select output of an incrementally maintainable view.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OutputKind {
    /// Grouping column at this base-table position.
    Group(usize),
    /// `AGG(base column)`; `None` argument = `COUNT(*)`.
    Agg(AggFunc, Option<usize>),
}

/// A compiled incremental-maintenance plan.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPlan {
    base_table: String,
    /// Per view output column: where its value comes from.
    outputs: Vec<OutputKind>,
    /// View output positions of the grouping columns, in GROUP BY order.
    group_outputs: Vec<usize>,
    /// WHERE atoms as (base position | constant) comparisons.
    filter: Vec<(Operand, CmpOp, Operand)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Col(usize),
    Const(Value),
}

/// Analyze a view definition: can inserts to its base table be applied
/// incrementally?
pub fn plan_for_view(view_query: &Query, db: &Database) -> MaintenancePlan {
    match try_plan(view_query, db) {
        Some(p) => MaintenancePlan::Incremental(p),
        None => MaintenancePlan::Recompute,
    }
}

fn try_plan(q: &Query, db: &Database) -> Option<IncrementalPlan> {
    if q.distinct || q.having.is_some() || q.from.len() != 1 {
        return None;
    }
    // A conjunctive view is not group-structured; only grouped views are
    // maintained here (a conjunctive single-table view could be, but the
    // rewriter's summary tables are all grouped).
    if q.group_by.is_empty() {
        return None;
    }
    let tref = &q.from[0];
    let base = db.get(&tref.table).ok()?;
    let binding = tref.binding_name();

    let resolve = |c: &ColumnRef| -> Option<usize> {
        if let Some(t) = &c.table {
            if t != binding {
                return None;
            }
        }
        base.column_index(&c.column)
    };

    // Grouping columns.
    let group_positions: Vec<usize> = q.group_by.iter().map(resolve).collect::<Option<Vec<_>>>()?;

    // Select outputs.
    let mut outputs = Vec::with_capacity(q.select.len());
    let mut group_outputs: Vec<Option<usize>> = vec![None; group_positions.len()];
    for (oi, item) in q.select.iter().enumerate() {
        match &item.expr {
            Expr::Column(c) => {
                let pos = resolve(c)?;
                let gi = group_positions.iter().position(|&g| g == pos)?;
                group_outputs[gi].get_or_insert(oi);
                outputs.push(OutputKind::Group(pos));
            }
            Expr::Agg(call) => {
                if call.func == AggFunc::Avg {
                    return None; // AVG is not self-maintainable
                }
                let arg = match &call.arg {
                    None => None,
                    Some(e) => match e.as_ref() {
                        Expr::Column(c) => Some(resolve(c)?),
                        _ => return None,
                    },
                };
                outputs.push(OutputKind::Agg(call.func, arg));
            }
            _ => return None,
        }
    }
    // Every grouping column must be exposed, or delta rows cannot be
    // routed to their group.
    let group_outputs: Vec<usize> = group_outputs.into_iter().collect::<Option<Vec<_>>>()?;

    // WHERE: conjunction of simple comparisons over base columns/constants.
    let mut filter = Vec::new();
    if let Some(w) = &q.where_clause {
        for atom in w.conjuncts() {
            let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                return None;
            };
            let operand = |e: &Expr| -> Option<Operand> {
                match e {
                    Expr::Column(c) => Some(Operand::Col(resolve(c)?)),
                    Expr::Literal(l) => Some(Operand::Const(value::lit_value(l))),
                    Expr::Neg(inner) => match inner.as_ref() {
                        Expr::Literal(Literal::Int(v)) => Some(Operand::Const(Value::Int(-v))),
                        Expr::Literal(Literal::Double(v)) => {
                            Some(Operand::Const(Value::Double(-v)))
                        }
                        _ => None,
                    },
                    _ => None,
                }
            };
            filter.push((operand(lhs)?, *op, operand(rhs)?));
        }
    }

    Some(IncrementalPlan {
        base_table: tref.table.clone(),
        outputs,
        group_outputs,
        filter,
    })
}

/// A batch of base-table changes.
#[derive(Debug, Clone, Copy)]
pub enum DeltaKind<'a> {
    /// Rows appended to the base table.
    Insert(&'a [Vec<Value>]),
    /// Rows removed from the base table.
    Delete(&'a [Vec<Value>]),
}

impl IncrementalPlan {
    /// The base table this plan maintains against.
    pub fn base_table(&self) -> &str {
        &self.base_table
    }

    /// Can deletes be applied incrementally? `MIN`/`MAX` can loosen under
    /// deletion, and an emptied group is only detectable via a `COUNT`
    /// output.
    pub fn supports_delete(&self) -> bool {
        let mut has_count = false;
        for out in &self.outputs {
            match out {
                OutputKind::Agg(AggFunc::Min, _) | OutputKind::Agg(AggFunc::Max, _) => {
                    return false
                }
                OutputKind::Agg(AggFunc::Count, _) => has_count = true,
                _ => {}
            }
        }
        has_count
    }

    /// The [`GroupIndex`] key columns an index must have to serve this
    /// plan's group lookups: the view positions of the grouping columns.
    pub fn index_key_cols(&self) -> &[usize] {
        &self.group_outputs
    }

    /// Does the delta row pass the view's WHERE filter?
    fn passes_filter(&self, row: &[Value]) -> EngineResult<bool> {
        for (l, op, r) in &self.filter {
            let a = operand_value(l, row);
            let b = operand_value(r, row);
            if !compare(a, *op, b)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The view-relation group key of a base-table delta row.
    fn delta_key(&self, row: &[Value]) -> Vec<Value> {
        self.group_outputs
            .iter()
            .map(|&o| match &self.outputs[o] {
                OutputKind::Group(pos) => row[*pos].clone(),
                OutputKind::Agg(..) => unreachable!("group output"),
            })
            .collect()
    }

    /// Apply deleted base rows to the materialized view relation. When a
    /// [`GroupIndex`] on the grouping columns is supplied, group lookups
    /// probe it instead of building a scratch map; the index is rebuilt at
    /// the end (dropping emptied groups shifts row positions).
    ///
    /// Precondition: [`IncrementalPlan::supports_delete`]; the deleted rows
    /// must actually have been in the base table (the view is otherwise
    /// declared inconsistent with an error).
    pub fn apply_delete(
        &self,
        view: &mut Relation,
        deleted_rows: &[Vec<Value>],
        index: Option<&mut GroupIndex>,
    ) -> EngineResult<()> {
        debug_assert!(self.supports_delete());
        let usable = index
            .as_ref()
            .is_some_and(|idx| idx.key_cols() == self.index_key_cols());
        let scratch: Option<HashMap<Vec<Value>, usize>> =
            (!usable).then(|| self.scratch_index(view));

        'delta: for row in deleted_rows {
            if !self.passes_filter(row)? {
                continue 'delta;
            }
            let key = self.delta_key(row);
            let ri = match &scratch {
                Some(map) => map.get(&key).copied(),
                None => index
                    .as_ref()
                    .and_then(|idx| idx.probe(&key).last().copied()),
            };
            let Some(ri) = ri else {
                return Err(EngineError::TypeError(
                    "delete delta references a group absent from the view".into(),
                ));
            };
            // Only aggregate cells change: group keys stay put, so an
            // attached index stays valid throughout the loop.
            for (oi, out) in self.outputs.iter().enumerate() {
                if let OutputKind::Agg(func, arg) = out {
                    let cell = &view.rows[ri][oi];
                    view.rows[ri][oi] = unmerge(*func, cell, *arg, row)?;
                }
            }
        }

        // Drop emptied groups (COUNT hit zero).
        let count_pos = self
            .outputs
            .iter()
            .position(|o| matches!(o, OutputKind::Agg(AggFunc::Count, _)))
            .expect("supports_delete checked");
        view.rows.retain(|r| r[count_pos] != Value::Int(0));
        if let Some(idx) = index {
            idx.rebuild(view);
        }
        Ok(())
    }

    /// Apply inserted base rows to the materialized view relation. When a
    /// [`GroupIndex`] on the grouping columns is supplied, group lookups
    /// probe it and the index is kept in sync as fresh groups are appended
    /// — the per-batch scratch map disappears from the serving write path.
    pub fn apply_insert(
        &self,
        view: &mut Relation,
        delta_rows: &[Vec<Value>],
        mut index: Option<&mut GroupIndex>,
    ) -> EngineResult<()> {
        let usable = index
            .as_ref()
            .is_some_and(|idx| idx.key_cols() == self.index_key_cols());
        let mut scratch: Option<HashMap<Vec<Value>, usize>> =
            (!usable).then(|| self.scratch_index(view));

        'delta: for row in delta_rows {
            if !self.passes_filter(row)? {
                continue 'delta;
            }
            let key = self.delta_key(row);
            let ri = match &scratch {
                Some(map) => map.get(&key).copied(),
                None => index
                    .as_ref()
                    .and_then(|idx| idx.probe(&key).last().copied()),
            };
            match ri {
                Some(ri) => {
                    for (oi, out) in self.outputs.iter().enumerate() {
                        if let OutputKind::Agg(func, arg) = out {
                            let cell = &view.rows[ri][oi];
                            view.rows[ri][oi] = merge(*func, cell, *arg, row)?;
                        }
                    }
                }
                None => {
                    let mut fresh = Vec::with_capacity(self.outputs.len());
                    for out in &self.outputs {
                        fresh.push(match out {
                            OutputKind::Group(pos) => row[*pos].clone(),
                            OutputKind::Agg(func, arg) => init(*func, *arg, row)?,
                        });
                    }
                    match (&mut scratch, &mut index) {
                        (Some(map), _) => {
                            map.insert(key, view.rows.len());
                        }
                        (None, Some(idx)) => idx.note_push(&fresh, view.rows.len()),
                        (None, None) => unreachable!("scratch built when no usable index"),
                    }
                    view.push(fresh);
                }
            }
        }
        // A supplied-but-mismatched index was bypassed; re-sync it.
        if let (Some(idx), false) = (index, usable) {
            idx.rebuild(view);
        }
        Ok(())
    }

    /// One-shot group → row map for the unindexed maintenance path.
    fn scratch_index(&self, view: &Relation) -> HashMap<Vec<Value>, usize> {
        let mut map = HashMap::with_capacity(view.len());
        for (ri, row) in view.rows.iter().enumerate() {
            let key: Vec<Value> = self.group_outputs.iter().map(|&o| row[o].clone()).collect();
            map.insert(key, ri);
        }
        map
    }
}

fn operand_value<'a>(op: &'a Operand, row: &'a [Value]) -> &'a Value {
    match op {
        Operand::Col(i) => &row[*i],
        Operand::Const(v) => v,
    }
}

fn compare(a: &Value, op: CmpOp, b: &Value) -> EngineResult<bool> {
    value::compare(a, op, b).ok_or_else(|| {
        EngineError::TypeError(format!(
            "comparison of {} and {}",
            a.type_name(),
            b.type_name()
        ))
    })
}

fn init(func: AggFunc, arg: Option<usize>, row: &[Value]) -> EngineResult<Value> {
    Ok(match (func, arg) {
        (AggFunc::Count, _) => Value::Int(1),
        (_, Some(pos)) => row[pos].clone(),
        (_, None) => unreachable!("only COUNT takes *"),
    })
}

fn merge(func: AggFunc, cell: &Value, arg: Option<usize>, row: &[Value]) -> EngineResult<Value> {
    let type_err = |what: &str| EngineError::TypeError(what.to_string());
    Ok(match func {
        AggFunc::Count => value::add(cell, &Value::Int(1)).ok_or_else(|| type_err("count"))?,
        AggFunc::Sum => {
            let v = &row[arg.expect("SUM argument")];
            value::add(cell, v).ok_or_else(|| type_err("sum over non-numeric"))?
        }
        AggFunc::Min => {
            let v = &row[arg.expect("MIN argument")];
            match v.cmp_sql(cell) {
                Some(std::cmp::Ordering::Less) => v.clone(),
                Some(_) => cell.clone(),
                None => return Err(type_err("MIN over mixed types")),
            }
        }
        AggFunc::Max => {
            let v = &row[arg.expect("MAX argument")];
            match v.cmp_sql(cell) {
                Some(std::cmp::Ordering::Greater) => v.clone(),
                Some(_) => cell.clone(),
                None => return Err(type_err("MAX over mixed types")),
            }
        }
        AggFunc::Avg => unreachable!("AVG views recompute"),
    })
}

/// Inverse of [`merge`] for the delete path (SUM/COUNT only).
fn unmerge(func: AggFunc, cell: &Value, arg: Option<usize>, row: &[Value]) -> EngineResult<Value> {
    let type_err = |what: &str| EngineError::TypeError(what.to_string());
    Ok(match func {
        AggFunc::Count => value::sub(cell, &Value::Int(1)).ok_or_else(|| type_err("count"))?,
        AggFunc::Sum => {
            let v = &row[arg.expect("SUM argument")];
            value::sub(cell, v).ok_or_else(|| type_err("sum over non-numeric"))?
        }
        AggFunc::Min | AggFunc::Max | AggFunc::Avg => {
            unreachable!("supports_delete excludes these")
        }
    })
}

/// Maintain a materialized view after `delta` changed `changed_table`:
/// incrementally when the plan allows, by recomputation otherwise. `db`
/// must already reflect the change. A supplied [`GroupIndex`] is probed and
/// kept consistent with the maintained relation on every path. Returns
/// whether the incremental path was taken.
pub fn maintain_view(
    view_query: &Query,
    view_rel: &mut Relation,
    changed_table: &str,
    delta: DeltaKind<'_>,
    db: &Database,
    index: Option<&mut GroupIndex>,
) -> EngineResult<bool> {
    maintain_view_with(view_query, view_rel, changed_table, delta, db, index, true)
}

/// [`maintain_view`] with an explicit columnar-execution switch for the
/// recomputation fallback (the incremental delta paths are row-based either
/// way). Sessions thread their `columnar` option through here so `columnar
/// = off` exercises the row interpreter end to end.
#[allow(clippy::too_many_arguments)]
pub fn maintain_view_with(
    view_query: &Query,
    view_rel: &mut Relation,
    changed_table: &str,
    delta: DeltaKind<'_>,
    db: &Database,
    index: Option<&mut GroupIndex>,
    columnar: bool,
) -> EngineResult<bool> {
    // A view not reading the changed table is untouched.
    if !view_query.from.iter().any(|t| t.table == changed_table) {
        return Ok(true);
    }
    if let MaintenancePlan::Incremental(plan) = plan_for_view(view_query, db) {
        if plan.base_table() == changed_table {
            match delta {
                DeltaKind::Insert(rows) => {
                    plan.apply_insert(view_rel, rows, index)?;
                    return Ok(true);
                }
                DeltaKind::Delete(rows) if plan.supports_delete() => {
                    plan.apply_delete(view_rel, rows, index)?;
                    return Ok(true);
                }
                DeltaKind::Delete(_) => {}
            }
        }
    }
    let names = view_rel.columns.clone();
    *view_rel = execute_with(view_query, db, columnar)?;
    view_rel.columns = names;
    if let Some(idx) = index {
        idx.rebuild(view_rel);
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::relation::{multiset_eq, rel_of_ints};
    use aggview_sql::parse_query;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn base_db(rows: &[&[i64]]) -> Database {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a", "b", "c"], rows));
        db
    }

    fn materialize(q: &Query, db: &Database) -> Relation {
        let mut rel = execute(q, db).unwrap();
        rel.columns = q.output_names();
        rel
    }

    #[test]
    fn plans_summary_views_incrementally() {
        let db = base_db(&[&[1, 2, 3]]);
        let q = parse_query(
            "SELECT a, SUM(b) AS s, COUNT(b) AS n, MIN(c) AS mn, MAX(c) AS mx \
             FROM T WHERE c > 0 GROUP BY a",
        )
        .unwrap();
        assert!(matches!(
            plan_for_view(&q, &db),
            MaintenancePlan::Incremental(_)
        ));
    }

    #[test]
    fn rejects_non_maintainable_shapes() {
        let mut db = base_db(&[&[1, 2, 3]]);
        db.insert("U", rel_of_ints(["x"], &[&[1]]));
        for sql in [
            "SELECT a, AVG(b) FROM T GROUP BY a",                   // AVG
            "SELECT a, SUM(b) FROM T GROUP BY a HAVING SUM(b) > 1", // HAVING
            "SELECT a, b FROM T",                                   // conjunctive
            "SELECT DISTINCT a, SUM(b) FROM T GROUP BY a",          // DISTINCT
            "SELECT a, SUM(x) FROM T, U GROUP BY a",                // join
            "SELECT SUM(b) FROM T GROUP BY a",                      // group col hidden
        ] {
            let q = parse_query(sql).unwrap();
            assert_eq!(
                plan_for_view(&q, &db),
                MaintenancePlan::Recompute,
                "`{sql}` should recompute"
            );
        }
    }

    #[test]
    fn incremental_matches_recompute() {
        let q = parse_query(
            "SELECT a, SUM(b) AS s, COUNT(*) AS n, MIN(c) AS mn, MAX(c) AS mx \
             FROM T WHERE c <> 0 GROUP BY a",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut rows: Vec<Vec<i64>> = Vec::new();
        let mut db = base_db(&[]);
        let mut view = materialize(&q, &db);
        let MaintenancePlan::Incremental(plan) = plan_for_view(&q, &db) else {
            panic!("expected incremental plan")
        };

        for _ in 0..25 {
            // Insert a random batch.
            let batch: Vec<Vec<Value>> = (0..rng.random_range(1..5))
                .map(|_| {
                    let r = vec![
                        rng.random_range(0..4),
                        rng.random_range(-3..10),
                        rng.random_range(-1..3),
                    ];
                    rows.push(r.clone());
                    r.into_iter().map(Value::Int).collect()
                })
                .collect();
            let all: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db = base_db(&all);
            plan.apply_insert(&mut view, &batch, None).unwrap();
            let recomputed = materialize(&q, &db);
            assert!(
                multiset_eq(&view, &recomputed),
                "incremental view diverged after insert:\n got: {view}\n want: {recomputed}"
            );
        }
    }

    #[test]
    fn maintain_view_routes_correctly() {
        let mut db = base_db(&[&[1, 5, 2]]);
        let q = parse_query("SELECT a, SUM(b) AS s FROM T GROUP BY a").unwrap();
        let mut view = materialize(&q, &db);

        // Insert into T: incremental.
        let delta = vec![vec![Value::Int(1), Value::Int(7), Value::Int(0)]];
        let mut t = db.get("T").unwrap().clone();
        t.push(delta[0].clone());
        db.insert("T", t);
        let incremental =
            maintain_view(&q, &mut view, "T", DeltaKind::Insert(&delta), &db, None).unwrap();
        assert!(incremental);
        assert!(multiset_eq(&view, &materialize(&q, &db)));

        // Unrelated table: untouched.
        let before = view.clone();
        let incremental =
            maintain_view(&q, &mut view, "Other", DeltaKind::Insert(&[]), &db, None).unwrap();
        assert!(incremental);
        assert_eq!(view.rows, before.rows);

        // AVG view over T: recompute path.
        let q_avg = parse_query("SELECT a, AVG(b) AS m FROM T GROUP BY a").unwrap();
        let mut view_avg = materialize(&q_avg, &db);
        let incremental = maintain_view(
            &q_avg,
            &mut view_avg,
            "T",
            DeltaKind::Insert(&delta),
            &db,
            None,
        )
        .unwrap();
        assert!(!incremental);
        assert!(multiset_eq(&view_avg, &materialize(&q_avg, &db)));
    }

    #[test]
    fn delete_support_detection() {
        let db = base_db(&[&[1, 2, 3]]);
        let with_minmax =
            parse_query("SELECT a, MIN(b) AS mn, COUNT(b) AS n FROM T GROUP BY a").unwrap();
        let MaintenancePlan::Incremental(p) = plan_for_view(&with_minmax, &db) else {
            panic!()
        };
        assert!(!p.supports_delete());
        let no_count = parse_query("SELECT a, SUM(b) AS s FROM T GROUP BY a").unwrap();
        let MaintenancePlan::Incremental(p) = plan_for_view(&no_count, &db) else {
            panic!()
        };
        assert!(!p.supports_delete());
        let good = parse_query("SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a").unwrap();
        let MaintenancePlan::Incremental(p) = plan_for_view(&good, &db) else {
            panic!()
        };
        assert!(p.supports_delete());
    }

    #[test]
    fn incremental_delete_matches_recompute() {
        let q = parse_query("SELECT a, SUM(b) AS s, COUNT(*) AS n FROM T WHERE c <> 0 GROUP BY a")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        // Base data.
        let mut rows: Vec<Vec<i64>> = (0..40)
            .map(|_| {
                vec![
                    rng.random_range(0..4),
                    rng.random_range(-3..10),
                    rng.random_range(-1..3),
                ]
            })
            .collect();
        let all: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = base_db(&all);
        let mut view = materialize(&q, &db);
        let MaintenancePlan::Incremental(plan) = plan_for_view(&q, &db) else {
            panic!("expected incremental plan")
        };
        assert!(plan.supports_delete());

        for _ in 0..10 {
            // Delete a random batch of existing rows.
            let k = rng.random_range(1..4).min(rows.len());
            let mut batch: Vec<Vec<Value>> = Vec::new();
            for _ in 0..k {
                let i = rng.random_range(0..rows.len());
                let r = rows.remove(i);
                batch.push(r.into_iter().map(Value::Int).collect());
            }
            let all: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db = base_db(&all);
            plan.apply_delete(&mut view, &batch, None).unwrap();
            let recomputed = materialize(&q, &db);
            assert!(
                multiset_eq(&view, &recomputed),
                "incremental delete diverged:
 got: {view}
 want: {recomputed}"
            );
            if rows.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn indexed_maintenance_matches_unindexed() {
        // The serving write path: a persistent GroupIndex rides along with
        // the view through inserts and deletes, and stays consistent.
        let q = parse_query("SELECT a, SUM(b) AS s, COUNT(*) AS n FROM T WHERE c <> 0 GROUP BY a")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut rows: Vec<Vec<i64>> = Vec::new();
        let db = base_db(&[]);
        let mut plain = materialize(&q, &db);
        let mut indexed = plain.clone();
        let MaintenancePlan::Incremental(plan) = plan_for_view(&q, &db) else {
            panic!("expected incremental plan")
        };
        let mut idx = GroupIndex::build(&indexed, plan.index_key_cols().to_vec());

        for step in 0..30 {
            let delete = step % 3 == 2 && !rows.is_empty();
            if delete {
                let k = rng.random_range(1..3).min(rows.len());
                let mut batch: Vec<Vec<Value>> = Vec::new();
                for _ in 0..k {
                    let i = rng.random_range(0..rows.len());
                    batch.push(rows.remove(i).into_iter().map(Value::Int).collect());
                }
                plan.apply_delete(&mut plain, &batch, None).unwrap();
                plan.apply_delete(&mut indexed, &batch, Some(&mut idx))
                    .unwrap();
            } else {
                let batch: Vec<Vec<Value>> = (0..rng.random_range(1..4))
                    .map(|_| {
                        let r = vec![
                            rng.random_range(0..4),
                            rng.random_range(-3..10),
                            rng.random_range(-1..3),
                        ];
                        rows.push(r.clone());
                        r.into_iter().map(Value::Int).collect()
                    })
                    .collect();
                plan.apply_insert(&mut plain, &batch, None).unwrap();
                plan.apply_insert(&mut indexed, &batch, Some(&mut idx))
                    .unwrap();
            }
            assert_eq!(plain.rows, indexed.rows, "paths diverged at step {step}");
            assert!(
                idx.is_consistent_with(&indexed),
                "index stale at step {step}"
            );
        }
    }

    #[test]
    fn mismatched_index_is_resynced() {
        let q = parse_query("SELECT a, COUNT(*) AS n FROM T GROUP BY a").unwrap();
        let db = base_db(&[]);
        let MaintenancePlan::Incremental(plan) = plan_for_view(&q, &db) else {
            panic!()
        };
        let mut view = materialize(&q, &db);
        // Index keyed on the COUNT column — unusable for group routing,
        // but must still be valid after maintenance.
        let mut idx = GroupIndex::build(&view, vec![1]);
        plan.apply_insert(
            &mut view,
            &[vec![Value::Int(1), Value::Int(5), Value::Int(0)]],
            Some(&mut idx),
        )
        .unwrap();
        assert!(idx.is_consistent_with(&view));
    }

    #[test]
    fn filter_excludes_delta_rows() {
        let q = parse_query("SELECT a, COUNT(*) AS n FROM T WHERE b > 0 GROUP BY a").unwrap();
        let db = base_db(&[]);
        let MaintenancePlan::Incremental(plan) = plan_for_view(&q, &db) else {
            panic!("expected incremental plan")
        };
        let mut view = materialize(&q, &db);
        plan.apply_insert(
            &mut view,
            &[
                vec![Value::Int(1), Value::Int(5), Value::Int(0)],
                vec![Value::Int(1), Value::Int(-5), Value::Int(0)],
            ],
            None,
        )
        .unwrap();
        assert_eq!(view.rows, vec![vec![Value::Int(1), Value::Int(1)]]);
    }
}
