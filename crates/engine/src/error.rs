//! Engine error type.

use std::fmt;

/// Errors produced while binding or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A `FROM` table that is not in the database.
    UnknownTable(String),
    /// A column reference that resolves to nothing.
    UnknownColumn(String),
    /// A column reference that resolves to more than one `FROM` column.
    AmbiguousColumn(String),
    /// Two `FROM` occurrences share a binding name.
    DuplicateBinding(String),
    /// A non-aggregated, non-grouped column in `SELECT` or `HAVING`.
    NonGroupedColumn(String),
    /// An aggregate call where none is allowed (`WHERE`, `GROUP BY`,
    /// nested inside another aggregate).
    MisplacedAggregate,
    /// Type error at runtime (e.g. `'a' + 1`, comparison of string to int).
    TypeError(String),
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            EngineError::DuplicateBinding(b) => {
                write!(f, "duplicate FROM binding `{b}` (add an alias)")
            }
            EngineError::NonGroupedColumn(c) => write!(
                f,
                "column `{c}` must appear in GROUP BY or inside an aggregate"
            ),
            EngineError::MisplacedAggregate => {
                write!(f, "aggregate call not allowed in this clause")
            }
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias.
pub type EngineResult<T> = Result<T, EngineError>;
