//! Multiset relations and multiset/set equality.

use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A relation: a named schema plus a *multiset* of rows (duplicates are
/// significant; row order is not).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// The rows. Each row has exactly `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Relation {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Build a relation from a schema and rows, validating arity.
    ///
    /// # Panics
    /// Panics if a row's arity does not match the schema.
    pub fn new<I, S>(columns: I, rows: Vec<Vec<Value>>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                columns.len(),
                "row {i} has arity {} but schema has {}",
                r.len(),
                columns.len()
            );
        }
        Relation { columns, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Rows sorted by the total value order — a canonical form for
    /// multiset comparison and display.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    /// Does the relation contain duplicate rows?
    pub fn has_duplicates(&self) -> bool {
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.rows.len());
        self.rows.iter().any(|r| !seen.insert(r.as_slice()))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.cmp_total(y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Multiset equality of two relations (schemas must have equal arity; column
/// *names* are not compared — the paper's equivalence is positional).
///
/// Doubles are compared with a small tolerance: floating-point aggregates of
/// the original and rewritten query may be summed in different orders. To
/// keep the comparison sound in the presence of that tolerance, rows are
/// first sorted by the exact total order and then matched pairwise with
/// approximate equality; if that fails, an exact comparison verdict is
/// returned (so only genuinely-close multisets pass).
pub fn multiset_eq(a: &Relation, b: &Relation) -> bool {
    if a.arity() != b.arity() || a.len() != b.len() {
        return false;
    }
    let ra = a.sorted_rows();
    let rb = b.sorted_rows();
    ra.iter()
        .zip(rb.iter())
        .all(|(x, y)| x.iter().zip(y.iter()).all(|(vx, vy)| vx.approx_eq(vy)))
}

/// Set equality: both relations, viewed as sets of rows, are equal.
/// Used for Section 5 (set semantics) checks.
pub fn set_eq(a: &Relation, b: &Relation) -> bool {
    if a.arity() != b.arity() {
        return false;
    }
    let sa: HashSet<&[Value]> = a.rows.iter().map(|r| r.as_slice()).collect();
    let sb: HashSet<&[Value]> = b.rows.iter().map(|r| r.as_slice()).collect();
    sa == sb
}

/// Convenience constructor for integer-valued test relations.
pub fn rel_of_ints<I, S>(columns: I, rows: &[&[i64]]) -> Relation
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Relation::new(
        columns,
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_eq_respects_multiplicity() {
        let a = rel_of_ints(["x"], &[&[1], &[1], &[2]]);
        let b = rel_of_ints(["x"], &[&[1], &[2], &[1]]);
        let c = rel_of_ints(["x"], &[&[1], &[2], &[2]]);
        let d = rel_of_ints(["x"], &[&[1], &[2]]);
        assert!(multiset_eq(&a, &b));
        assert!(!multiset_eq(&a, &c));
        assert!(!multiset_eq(&a, &d));
    }

    #[test]
    fn multiset_eq_ignores_column_names() {
        let a = rel_of_ints(["x"], &[&[1]]);
        let b = rel_of_ints(["y"], &[&[1]]);
        assert!(multiset_eq(&a, &b));
    }

    #[test]
    fn multiset_eq_tolerates_double_noise() {
        let a = Relation::new(["v"], vec![vec![Value::Double(0.1 + 0.2)]]);
        let b = Relation::new(["v"], vec![vec![Value::Double(0.3)]]);
        assert!(multiset_eq(&a, &b));
    }

    #[test]
    fn set_eq_ignores_multiplicity() {
        let a = rel_of_ints(["x"], &[&[1], &[1], &[2]]);
        let b = rel_of_ints(["x"], &[&[2], &[1]]);
        assert!(set_eq(&a, &b));
        assert!(!multiset_eq(&a, &b));
        let c = rel_of_ints(["x"], &[&[2], &[3]]);
        assert!(!set_eq(&a, &c));
    }

    #[test]
    fn has_duplicates() {
        assert!(rel_of_ints(["x"], &[&[1], &[1]]).has_duplicates());
        assert!(!rel_of_ints(["x"], &[&[1], &[2]]).has_duplicates());
        assert!(!Relation::empty(["x"]).has_duplicates());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn new_validates_arity() {
        let _ = Relation::new(["a", "b"], vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn sorted_rows_is_canonical() {
        let a = rel_of_ints(["x", "y"], &[&[2, 1], &[1, 2], &[1, 1]]);
        assert_eq!(
            a.sorted_rows(),
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn display_renders_rows() {
        let a = rel_of_ints(["x", "y"], &[&[1, 2]]);
        let s = a.to_string();
        assert!(s.contains("x | y"));
        assert!(s.contains("1 | 2"));
    }
}
