//! Query evaluation under multiset semantics.
//!
//! Evaluation follows the paper's two-phase conceptual model (Section 5.1):
//! the `FROM` and `WHERE` clauses produce the *core table*, then `SELECT`,
//! `GROUP BY` and `HAVING` apply to it. The core table is built with a
//! greedy hash-join plan over the equality predicates so that the benchmark
//! sweeps (millions of `Calls` rows) run in sensible time; all other
//! predicates are applied as soon as their columns are bound.
//!
//! Evaluation is split into two phases so the serving path can cache work:
//!
//! * [`PhysicalPlan::compile`] resolves columns against a schema source,
//!   compiles scalar expressions and aggregate slots, and classifies the
//!   `WHERE` conjuncts (constant / single-occurrence / equi-join /
//!   residual). It never touches row data, so a compiled plan stays valid
//!   across `INSERT`/`DELETE` as long as the schemas it was compiled
//!   against are unchanged.
//! * [`PhysicalPlan::run`] binds the named relations in a database and
//!   evaluates. Join *order* is chosen here (greedily, by live filtered
//!   cardinalities — it is data-dependent and cheap); column resolution,
//!   expression compilation and predicate classification are not redone.
//!
//! When a scanned relation carries a [`GroupIndex`](crate::index::GroupIndex)
//! and the plan's local predicates bind every key column to a constant, the
//! scan becomes an index probe.

use crate::agg::Accumulator;
use crate::columnar::{Column, ColumnarRelation};
use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::value::{self, Value};
use aggview_catalog::SchemaSource;
use aggview_sql::ast::{AggFunc, ArithOp, BoolExpr, CmpOp, ColumnRef, Expr, Query};
use std::collections::HashMap;

/// Execute `query` against `db`, returning the result relation.
///
/// ```
/// use aggview_engine::{execute, Database, Relation, Value};
/// use aggview_sql::parse_query;
///
/// let mut db = Database::new();
/// db.insert("T", Relation::new(
///     ["a", "b"],
///     vec![
///         vec![Value::Int(1), Value::Int(10)],
///         vec![Value::Int(1), Value::Int(20)],
///         vec![Value::Int(2), Value::Int(30)],
///     ],
/// ));
/// let q = parse_query("SELECT a, SUM(b) FROM T GROUP BY a").unwrap();
/// let out = execute(&q, &db).unwrap();
/// assert_eq!(out.sorted_rows(), vec![
///     vec![Value::Int(1), Value::Int(30)],
///     vec![Value::Int(2), Value::Int(30)],
/// ]);
/// ```
pub fn execute(query: &Query, db: &Database) -> EngineResult<Relation> {
    execute_with(query, db, true)
}

/// [`execute`] with explicit control over the vectorized columnar path.
/// `columnar: false` forces the row-at-a-time interpreter — the oracle
/// side of the row-vs-columnar differential axis. Both settings produce
/// byte-identical results; the flag only selects the execution strategy.
pub fn execute_with(query: &Query, db: &Database, columnar: bool) -> EngineResult<Relation> {
    let mut plan = PhysicalPlan::compile(query, db)?;
    plan.set_columnar(columnar);
    plan.run(db)
}

/// Compiled scalar expression with resolved column slots (core-table
/// indexes) and aggregate references.
#[derive(Debug, Clone)]
enum CExpr {
    /// Core-table column.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary arithmetic.
    Bin(Box<CExpr>, ArithOp, Box<CExpr>),
    /// Negation.
    Neg(Box<CExpr>),
    /// Reference to aggregate slot `i` (grouped evaluation only).
    AggRef(usize),
}

/// A compiled comparison predicate.
#[derive(Debug, Clone)]
struct CPred {
    lhs: CExpr,
    op: CmpOp,
    rhs: CExpr,
}

/// One aggregate to compute: the function and its compiled argument
/// (`None` = `COUNT(*)`).
#[derive(Debug, Clone)]
struct AggSlot {
    func: AggFunc,
    arg: Option<CExpr>,
}

/// One `FROM` occurrence of a compiled plan: the relation is bound by
/// *name* at run time.
#[derive(Debug, Clone)]
struct PlanOcc {
    table: String,
    offset: usize,
    arity: usize,
}

/// Classification of a multi-occurrence `WHERE` conjunct.
#[derive(Debug, Clone, Copy)]
enum PredKind {
    /// Pure column-column equality between two occurrences: a hash-join
    /// key candidate (core column ids).
    Equi(usize, usize),
    /// Anything else: applied as soon as all its columns are bound.
    Residual,
}

/// A multi-occurrence `WHERE` conjunct with its referenced core columns.
#[derive(Debug, Clone)]
struct PlanPred {
    pred: CPred,
    cols: Vec<usize>,
    kind: PredKind,
}

/// A compiled physical plan: resolved columns, compiled expressions and
/// classified predicates, detached from any concrete row data. Compile
/// once with [`PhysicalPlan::compile`], re-execute with
/// [`PhysicalPlan::run`] as the data changes.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    distinct: bool,
    output_names: Vec<String>,
    occs: Vec<PlanOcc>,
    n_core_cols: usize,
    grouped: bool,
    group_exprs: Vec<usize>, // core indexes of GROUP BY columns
    agg_slots: Vec<AggSlot>,
    select: Vec<CExpr>,
    having: Vec<CPred>,
    /// Multi-occurrence `WHERE` conjuncts (join keys and residuals).
    preds: Vec<PlanPred>,
    /// Single-occurrence conjuncts, pre-shifted into each occurrence's
    /// local column space (applied during the scan, or the index probe).
    local_preds: Vec<Vec<CPred>>,
    /// A constant `WHERE` conjunct evaluated to false at compile time.
    const_false: bool,
    /// Try the vectorized columnar path before the row interpreter (on by
    /// default; see [`PhysicalPlan::set_columnar`]).
    columnar: bool,
}

/// Compile-time state: per-occurrence schemas for column resolution.
struct Compiler {
    occs: Vec<PlanOcc>,
    occ_cols: Vec<Vec<String>>,
    grouped: bool,
    group_exprs: Vec<usize>,
    agg_slots: Vec<AggSlot>,
    bindings: Vec<String>,
}

impl PhysicalPlan {
    /// Compile `query` against a schema source (a [`Database`] works: it
    /// reports the schemas of its relations). Row data is not consulted.
    pub fn compile(query: &Query, schemas: &dyn SchemaSource) -> EngineResult<Self> {
        // Bind FROM occurrences against the schemas.
        let mut occs: Vec<PlanOcc> = Vec::with_capacity(query.from.len());
        let mut occ_cols: Vec<Vec<String>> = Vec::with_capacity(query.from.len());
        let mut bindings: Vec<String> = Vec::with_capacity(query.from.len());
        let mut offset = 0usize;
        for tref in &query.from {
            let binding = tref.binding_name().to_string();
            if bindings.contains(&binding) {
                return Err(EngineError::DuplicateBinding(binding));
            }
            let cols = schemas
                .table_columns(&tref.table)
                .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
            occs.push(PlanOcc {
                table: tref.table.clone(),
                offset,
                arity: cols.len(),
            });
            offset += cols.len();
            occ_cols.push(cols);
            bindings.push(binding);
        }
        let n_core_cols = offset;

        let mut c = Compiler {
            occs,
            occ_cols,
            grouped: false,
            group_exprs: Vec::new(),
            agg_slots: Vec::new(),
            bindings,
        };

        // Grouping columns.
        for col in &query.group_by {
            let idx = c.resolve(col)?;
            c.group_exprs.push(idx);
        }

        let any_select_agg = query.select.iter().any(|s| s.expr.contains_aggregate());
        c.grouped = !query.group_by.is_empty() || any_select_agg || query.having.is_some();

        // Compile and classify WHERE (no aggregates allowed).
        let n_occ = c.occs.len();
        let mut preds: Vec<PlanPred> = Vec::new();
        let mut local_preds: Vec<Vec<CPred>> = vec![Vec::new(); n_occ];
        let mut const_false = false;
        if let Some(w) = &query.where_clause {
            for atom in w.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                if lhs.contains_aggregate() || rhs.contains_aggregate() {
                    return Err(EngineError::MisplacedAggregate);
                }
                let p = CPred {
                    lhs: c.compile_scalar(lhs)?,
                    op: *op,
                    rhs: c.compile_scalar(rhs)?,
                };
                let mut cols = Vec::new();
                collect_cols(&p.lhs, &mut cols);
                collect_cols(&p.rhs, &mut cols);
                let mut pred_occs: Vec<usize> =
                    cols.iter().map(|&col| occ_of(&c.occs, col)).collect();
                pred_occs.sort_unstable();
                pred_occs.dedup();
                match pred_occs.as_slice() {
                    [] => {
                        // Constant predicate: decided here, once. A false
                        // one empties the result.
                        if !eval_pred(&p, &[], &[])? {
                            const_false = true;
                        }
                    }
                    [oi] => {
                        let off = c.occs[*oi].offset;
                        local_preds[*oi].push(shift_pred(&p, off));
                    }
                    _ => {
                        let kind = match (&p.lhs, &p.rhs) {
                            (CExpr::Col(a), CExpr::Col(b)) if p.op == CmpOp::Eq => {
                                PredKind::Equi(*a, *b)
                            }
                            _ => PredKind::Residual,
                        };
                        cols.sort_unstable();
                        cols.dedup();
                        preds.push(PlanPred {
                            pred: p,
                            cols,
                            kind,
                        });
                    }
                }
            }
        }

        // Compile SELECT.
        let mut select = Vec::with_capacity(query.select.len());
        for item in &query.select {
            let compiled = if c.grouped {
                c.compile_grouped(&item.expr)?
            } else {
                c.compile_scalar(&item.expr)?
            };
            select.push(compiled);
        }

        // Compile HAVING.
        let mut having = Vec::new();
        if let Some(h) = &query.having {
            for atom in h.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                having.push(CPred {
                    lhs: c.compile_grouped(lhs)?,
                    op: *op,
                    rhs: c.compile_grouped(rhs)?,
                });
            }
        }

        Ok(PhysicalPlan {
            distinct: query.distinct,
            output_names: query.output_names(),
            occs: c.occs,
            n_core_cols,
            grouped: c.grouped,
            group_exprs: c.group_exprs,
            agg_slots: c.agg_slots,
            select,
            having,
            preds,
            local_preds,
            const_false,
            columnar: true,
        })
    }

    /// Enable or disable the vectorized columnar path for this plan
    /// (enabled by default). Disabled plans always take the row-at-a-time
    /// interpreter — the oracle side of the row-vs-columnar differential.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// Execute the compiled plan against `db`. The relations named by the
    /// plan's `FROM` occurrences must exist with the arity they were
    /// compiled against (callers caching plans across DDL guard this with
    /// an epoch; the arity check catches misuse).
    pub fn run(&self, db: &Database) -> EngineResult<Relation> {
        let mut rels: Vec<&Relation> = Vec::with_capacity(self.occs.len());
        for o in &self.occs {
            let r = db.get(&o.table)?;
            if r.arity() != o.arity {
                return Err(EngineError::TypeError(format!(
                    "stale plan: `{}` has arity {} but the plan was compiled with {}",
                    o.table,
                    r.arity(),
                    o.arity
                )));
            }
            rels.push(r);
        }

        if let Some(out) = self.run_vectorized(db)? {
            db.record(aggview_obs::CounterId::ExecVectorized, 1);
            return Ok(out);
        }
        db.record(aggview_obs::CounterId::ExecRowFallback, 1);

        let core = self.build_core(&rels, db)?;

        if !self.grouped {
            let mut out = Relation::empty(self.output_names.clone());
            for row in &core {
                let mut cells = Vec::with_capacity(self.select.len());
                for e in &self.select {
                    cells.push(eval(e, row, &[])?);
                }
                out.push(cells);
            }
            if self.distinct {
                dedup(&mut out);
            }
            return Ok(out);
        }

        // Grouped evaluation. Key = values of GROUP BY columns (the whole
        // input is one group when GROUP BY is empty and there is at least
        // one row).
        let mut groups: HashMap<Vec<Value>, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
        let mut group_order: Vec<Vec<Value>> = Vec::new();
        for row in &core {
            let key: Vec<Value> = self.group_exprs.iter().map(|&i| row[i].clone()).collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key);
                (
                    row.clone(),
                    self.agg_slots
                        .iter()
                        .map(|s| Accumulator::new(s.func))
                        .collect(),
                )
            });
            for (slot, acc) in self.agg_slots.iter().zip(entry.1.iter_mut()) {
                match &slot.arg {
                    None => acc.update(&Value::Int(0))?, // COUNT(*): value ignored
                    Some(arg) => {
                        let v = eval(arg, row, &[])?;
                        acc.update(&v)?;
                    }
                }
            }
        }

        let mut out = Relation::empty(self.output_names.clone());
        'group: for key in &group_order {
            let (rep, accs) = &groups[key];
            let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            for pred in &self.having {
                if !eval_pred(pred, rep, &agg_values)? {
                    continue 'group;
                }
            }
            let mut cells = Vec::with_capacity(self.select.len());
            for e in &self.select {
                cells.push(eval(e, rep, &agg_values)?);
            }
            out.push(cells);
        }
        if self.distinct {
            dedup(&mut out);
        }
        Ok(out)
    }

    /// Build the core table (FROM × WHERE) with a greedy hash-join plan.
    /// Returns rows in the *core column space* (concatenation of FROM
    /// occurrences in declaration order).
    fn build_core(&self, rels: &[&Relation], db: &Database) -> EngineResult<Vec<Vec<Value>>> {
        let n_occ = self.occs.len();
        if self.const_false || n_occ == 0 {
            return Ok(Vec::new());
        }

        // Scan (or index-probe) and locally filter each occurrence.
        let mut scans: Vec<Vec<Vec<Value>>> = Vec::with_capacity(n_occ);
        for (oi, rel) in rels.iter().enumerate() {
            scans.push(self.scan(oi, rel, db)?);
        }

        // Greedy join order: start with the smallest scan, then repeatedly
        // join the smallest occurrence connected by an equi predicate
        // (falling back to the smallest unconnected — a cross product).
        let mut applied = vec![false; self.preds.len()];
        let mut remaining: Vec<usize> = (0..n_occ).collect();
        remaining.sort_by_key(|&oi| scans[oi].len());
        let first = remaining.remove(0);

        // `layout[oi] = Some(offset in intermediate row)` once joined.
        let mut layout: Vec<Option<usize>> = vec![None; n_occ];
        layout[first] = Some(0);
        let mut width = self.occs[first].arity;
        let mut inter: Vec<Vec<Value>> = scans[first].clone();

        while !remaining.is_empty() {
            // Choose the next occurrence: connected and smallest.
            let connected_pos = remaining
                .iter()
                .position(|&oi| {
                    self.preds.iter().enumerate().any(|(pi, p)| {
                        !applied[pi]
                            && match p.kind {
                                PredKind::Equi(a, b) => {
                                    let (oa, ob) = (self.occ_of(a), self.occ_of(b));
                                    (oa == oi && layout[ob].is_some())
                                        || (ob == oi && layout[oa].is_some())
                                }
                                PredKind::Residual => false,
                            }
                    })
                })
                .unwrap_or(0);
            let next = remaining.remove(connected_pos);

            // Keys: every unapplied equi predicate between `next` and the
            // current layout.
            let mut build_cols = Vec::new(); // local to `next`
            let mut probe_cols = Vec::new(); // positions in intermediate
            for (pi, p) in self.preds.iter().enumerate() {
                let PredKind::Equi(a, b) = p.kind else {
                    continue;
                };
                if applied[pi] {
                    continue;
                }
                let (oa, ob) = (self.occ_of(a), self.occ_of(b));
                let (nc, ic) = if oa == next && layout[ob].is_some() {
                    (a, b)
                } else if ob == next && layout[oa].is_some() {
                    (b, a)
                } else {
                    continue;
                };
                build_cols.push(nc - self.occs[next].offset);
                probe_cols.push(
                    layout[self.occ_of(ic)].unwrap() + (ic - self.occs[self.occ_of(ic)].offset),
                );
                applied[pi] = true;
            }

            let next_rows = &scans[next];
            let mut joined: Vec<Vec<Value>> = Vec::new();
            if build_cols.is_empty() {
                // Cross product.
                joined.reserve(inter.len().saturating_mul(next_rows.len()));
                for l in &inter {
                    for r in next_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        joined.push(row);
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(next_rows.len());
                for (ri, r) in next_rows.iter().enumerate() {
                    let key: Vec<Value> = build_cols.iter().map(|&c| r[c].clone()).collect();
                    table.entry(key).or_default().push(ri);
                }
                for l in &inter {
                    let key: Vec<Value> = probe_cols.iter().map(|&c| l[c].clone()).collect();
                    if let Some(matches) = table.get(&key) {
                        for &ri in matches {
                            let mut row = l.clone();
                            row.extend(next_rows[ri].iter().cloned());
                            joined.push(row);
                        }
                    }
                }
            }
            layout[next] = Some(width);
            width += self.occs[next].arity;
            inter = joined;

            // Apply any not-yet-applied predicates whose columns are all
            // bound now (non-equi joins, redundant equalities, ...). The
            // predicate is remapped into the intermediate layout once, not
            // per row.
            let bound_preds: Vec<usize> = (0..self.preds.len())
                .filter(|&pi| {
                    !applied[pi]
                        && self.preds[pi]
                            .cols
                            .iter()
                            .all(|&col| layout[self.occ_of(col)].is_some())
                })
                .collect();
            if !bound_preds.is_empty() {
                let remap = self.remap_for(&layout);
                let remapped: Vec<CPred> = bound_preds
                    .iter()
                    .map(|&pi| remap_pred(&self.preds[pi].pred, &remap))
                    .collect();
                let mut filtered = Vec::with_capacity(inter.len());
                'jrow: for row in inter {
                    for p in &remapped {
                        if !eval_pred(p, &row, &[])? {
                            continue 'jrow;
                        }
                    }
                    filtered.push(row);
                }
                for pi in bound_preds {
                    applied[pi] = true;
                }
                inter = filtered;
            }
        }

        // Permute intermediate rows into core-column order.
        let remap = self.remap_for(&layout);
        let identity = remap.iter().enumerate().all(|(i, &p)| i == p);
        if identity {
            return Ok(inter);
        }
        Ok(inter
            .into_iter()
            .map(|row| remap.iter().map(|&p| row[p].clone()).collect())
            .collect())
    }

    /// Produce the locally filtered rows of occurrence `oi`: an index probe
    /// when the relation carries a [`GroupIndex`](crate::index::GroupIndex)
    /// whose key columns are all bound to constants, a scan otherwise.
    /// Both paths yield identical rows in identical order.
    fn scan(&self, oi: usize, rel: &Relation, db: &Database) -> EngineResult<Vec<Vec<Value>>> {
        let locals = &self.local_preds[oi];
        if let Some(rows) = self.index_probe(oi, rel, db)? {
            db.record(aggview_obs::CounterId::IndexProbes, 1);
            db.record(aggview_obs::CounterId::IndexProbeRows, rows.len() as u64);
            return Ok(rows);
        }
        let mut rows = Vec::new();
        'row: for r in &rel.rows {
            for p in locals {
                if !eval_pred(p, r, &[])? {
                    continue 'row;
                }
            }
            rows.push(r.clone());
        }
        Ok(rows)
    }

    /// Try to answer the scan of occurrence `oi` from an attached index:
    /// applicable when the local predicates bind every key column to a
    /// constant. Probes cover the numeric cross-type equalities of
    /// [`Value::cmp_sql`] (`1 = 1.0`); near the f64 precision edge the
    /// probe declines and the caller falls back to the scan.
    fn index_probe(
        &self,
        oi: usize,
        rel: &Relation,
        db: &Database,
    ) -> EngineResult<Option<Vec<Vec<Value>>>> {
        let Some(idx) = db.index(&self.occs[oi].table) else {
            return Ok(None);
        };
        let locals = &self.local_preds[oi];
        if locals.is_empty() {
            return Ok(None);
        }
        // Constant-equality bindings in the occurrence's local column space.
        let mut bound: HashMap<usize, &Value> = HashMap::new();
        for p in locals {
            if p.op != CmpOp::Eq {
                continue;
            }
            if let (CExpr::Col(c), CExpr::Lit(v)) | (CExpr::Lit(v), CExpr::Col(c)) =
                (&p.lhs, &p.rhs)
            {
                bound.entry(*c).or_insert(v);
            }
        }
        let mut per_col: Vec<Vec<Value>> = Vec::with_capacity(idx.key_cols().len());
        for &k in idx.key_cols() {
            let Some(v) = bound.get(&k) else {
                return Ok(None);
            };
            let Some(variants) = probe_variants(v) else {
                return Ok(None);
            };
            per_col.push(variants);
        }

        // Union the probe results over the cartesian product of the
        // per-column variants; ascending positions keep row order identical
        // to the scan path.
        let mut positions: Vec<usize> = Vec::new();
        let mut choice = vec![0usize; per_col.len()];
        loop {
            let key: Vec<Value> = per_col
                .iter()
                .zip(&choice)
                .map(|(vs, &i)| vs[i].clone())
                .collect();
            positions.extend_from_slice(idx.probe(&key));
            // Odometer over the variant choices.
            let mut digit = 0;
            loop {
                if digit == choice.len() {
                    positions.sort_unstable();
                    positions.dedup();
                    let mut rows = Vec::with_capacity(positions.len());
                    'row: for &ri in &positions {
                        let r = &rel.rows[ri];
                        for p in locals {
                            if !eval_pred(p, r, &[])? {
                                continue 'row;
                            }
                        }
                        rows.push(r.clone());
                    }
                    return Ok(Some(rows));
                }
                choice[digit] += 1;
                if choice[digit] < per_col[digit].len() {
                    break;
                }
                choice[digit] = 0;
                digit += 1;
            }
        }
    }

    /// Map core index → occurrence index.
    fn occ_of(&self, core: usize) -> usize {
        occ_of(&self.occs, core)
    }

    /// Map core index → position in the intermediate layout. Columns of
    /// occurrences not yet joined map to `usize::MAX` — callers only
    /// evaluate predicates whose columns are all bound.
    fn remap_for(&self, layout: &[Option<usize>]) -> Vec<usize> {
        let mut remap = vec![usize::MAX; self.n_core_cols];
        for (oi, occ) in self.occs.iter().enumerate() {
            let Some(base) = layout[oi] else { continue };
            for k in 0..occ.arity {
                remap[occ.offset + k] = base + k;
            }
        }
        remap
    }
}

// ---------------------------------------------------------------------------
// Vectorized (columnar) execution
// ---------------------------------------------------------------------------
//
// The vectorized path replaces the tuple-at-a-time interpreter with tight
// typed loops over whole columns: predicate evaluation produces a selection
// vector, projection gathers from columns, and grouped aggregation runs
// per-column accumulators driven by a group-id assignment. It only engages
// when every operator it would use is *total* — provably unable to error —
// so result bytes, output order, and error behavior are identical to the
// row path at every point of the qcheck lattice. Everything outside that
// subset (joins, mixed-type columns, NaN under comparison, arithmetic in
// predicates or aggregate arguments, scans an attached index might serve)
// declines, and the plan falls back to the row interpreter wholesale.

impl PhysicalPlan {
    /// Attempt vectorized execution. `Ok(None)` means the plan declined and
    /// the caller must run the row path; `Err` is a genuine execution error,
    /// identical to the one the row path would produce.
    fn run_vectorized(&self, db: &Database) -> EngineResult<Option<Relation>> {
        if !self.columnar || self.const_false || self.occs.len() != 1 || !self.preds.is_empty() {
            return Ok(None);
        }
        let occ = &self.occs[0];
        let locals = &self.local_preds[0];
        // An attached index may answer this scan as a probe (with its own
        // counters and cost profile) — let the row path decide.
        if !locals.is_empty() && db.index(&occ.table).is_some() {
            return Ok(None);
        }
        let Some(crel) = db.columnar(&occ.table) else {
            return Ok(None);
        };

        // Every local predicate must compile to a total typed kernel.
        let mut kernels = Vec::with_capacity(locals.len());
        for p in locals {
            match filter_kernel(&crel, p) {
                Some(k) => kernels.push(k),
                None => return Ok(None),
            }
        }

        if self.grouped {
            self.run_vectorized_grouped(&crel, &kernels)
        } else {
            self.run_vectorized_flat(&crel, &kernels)
        }
    }

    /// Ungrouped vectorized evaluation: selection vector, then projection.
    /// `Col`/`Lit`-only projections gather straight from the columns; any
    /// arithmetic materializes each selected row and reuses the scalar
    /// evaluator, so errors surface in the row path's order.
    fn run_vectorized_flat(
        &self,
        crel: &ColumnarRelation,
        kernels: &[FilterKernel<'_>],
    ) -> EngineResult<Option<Relation>> {
        let sel = select_rows(crel.n_rows(), kernels);
        let mut out = Relation::empty(self.output_names.clone());
        let simple = self
            .select
            .iter()
            .all(|e| matches!(e, CExpr::Col(_) | CExpr::Lit(_)));
        if simple {
            for i in sel.indices() {
                let cells = self
                    .select
                    .iter()
                    .map(|e| match e {
                        CExpr::Col(c) => crel.value(i, *c),
                        CExpr::Lit(v) => v.clone(),
                        _ => unreachable!("projection checked simple"),
                    })
                    .collect();
                out.push(cells);
            }
        } else {
            for i in sel.indices() {
                let row = crel.row(i);
                let mut cells = Vec::with_capacity(self.select.len());
                for e in &self.select {
                    cells.push(eval(e, &row, &[])?);
                }
                out.push(cells);
            }
        }
        if self.distinct {
            dedup(&mut out);
        }
        Ok(Some(out))
    }

    /// Grouped vectorized evaluation: assign group ids in first-seen order
    /// (the row path's `group_order`), accumulate per column, then emit one
    /// row per group through the existing HAVING/SELECT evaluator over the
    /// group's representative (first) row.
    fn run_vectorized_grouped(
        &self,
        crel: &ColumnarRelation,
        kernels: &[FilterKernel<'_>],
    ) -> EngineResult<Option<Relation>> {
        // Every aggregate slot must be computable by a total typed loop.
        let mut vaccs = Vec::with_capacity(self.agg_slots.len());
        for slot in &self.agg_slots {
            match vacc_for(crel, slot) {
                Some(a) => vaccs.push(a),
                None => return Ok(None),
            }
        }
        let sel = select_rows(crel.n_rows(), kernels);

        let mut grouper = Grouper::new(crel, &self.group_exprs);
        let mut reps: Vec<usize> = Vec::new();
        for i in sel.indices() {
            let gid = grouper.gid(i);
            if gid == reps.len() {
                reps.push(i);
            }
            for a in &mut vaccs {
                a.update(gid, i);
            }
        }

        let mut out = Relation::empty(self.output_names.clone());
        'group: for (gid, &rep_row) in reps.iter().enumerate() {
            let rep = crel.row(rep_row);
            let agg_values: Vec<Value> = vaccs.iter().map(|a| a.finish(gid)).collect();
            for pred in &self.having {
                if !eval_pred(pred, &rep, &agg_values)? {
                    continue 'group;
                }
            }
            let mut cells = Vec::with_capacity(self.select.len());
            for e in &self.select {
                cells.push(eval(e, &rep, &agg_values)?);
            }
            out.push(cells);
        }
        if self.distinct {
            dedup(&mut out);
        }
        Ok(Some(out))
    }
}

/// A clean numeric column viewed as f64 — the representation [`value`]'s
/// cross-type comparison and `AVG` use (`as_f64`).
#[derive(Clone, Copy)]
enum NumSlice<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumSlice<'_> {
    fn get(&self, i: usize) -> f64 {
        match self {
            NumSlice::I(v) => v[i] as f64,
            NumSlice::F(v) => v[i],
        }
    }
}

/// Numeric view of a clean column (NaN permitted — callers that compare
/// must use [`num_slice_for_cmp`]).
fn num_slice(col: &Column) -> Option<NumSlice<'_>> {
    if let Some(v) = col.ints() {
        Some(NumSlice::I(v))
    } else {
        col.doubles().map(NumSlice::F)
    }
}

/// Numeric view for comparison kernels: declines Double columns holding
/// NaN (incomparable under [`Value::cmp_sql`] — the row path raises a
/// TypeError, so the vectorized path must not run at all).
fn num_slice_for_cmp(col: &Column) -> Option<NumSlice<'_>> {
    if col.has_nan() {
        None
    } else {
        num_slice(col)
    }
}

/// A total typed predicate loop: one local conjunct whose row-at-a-time
/// evaluation can never error, applied column-wise. Literal-on-the-left
/// comparisons are stored with the mirrored operator.
enum FilterKernel<'a> {
    IntLit(&'a [i64], CmpOp, i64),
    NumLit(NumSlice<'a>, CmpOp, f64),
    StrLit(&'a [String], CmpOp, String),
    BoolLit(&'a [bool], CmpOp, bool),
    IntCol(&'a [i64], CmpOp, &'a [i64]),
    NumCol(NumSlice<'a>, CmpOp, NumSlice<'a>),
    StrCol(&'a [String], CmpOp, &'a [String]),
    BoolCol(&'a [bool], CmpOp, &'a [bool]),
}

impl FilterKernel<'_> {
    fn keep(&self, i: usize) -> bool {
        match self {
            FilterKernel::IntLit(c, op, k) => ord_keep(c[i].cmp(k), *op),
            FilterKernel::NumLit(c, op, k) => num_keep(c.get(i), *op, *k),
            FilterKernel::StrLit(c, op, k) => ord_keep(c[i].as_str().cmp(k.as_str()), *op),
            FilterKernel::BoolLit(c, op, k) => ord_keep(c[i].cmp(k), *op),
            FilterKernel::IntCol(a, op, b) => ord_keep(a[i].cmp(&b[i]), *op),
            FilterKernel::NumCol(a, op, b) => num_keep(a.get(i), *op, b.get(i)),
            FilterKernel::StrCol(a, op, b) => ord_keep(a[i].cmp(&b[i]), *op),
            FilterKernel::BoolCol(a, op, b) => ord_keep(a[i].cmp(&b[i]), *op),
        }
    }
}

/// Compile one local predicate into a kernel, or `None` when its shape or
/// column data falls outside the total typed subset. Type pairs that
/// [`Value::cmp_sql`] rejects (string vs. number, ...) also land here — the
/// row path then surfaces the TypeError exactly as before.
fn filter_kernel<'a>(crel: &'a ColumnarRelation, p: &CPred) -> Option<FilterKernel<'a>> {
    // Orient as `column op rhs`, mirroring the operator when the column is
    // on the right.
    let (ci, op, rhs) = match (&p.lhs, &p.rhs) {
        (CExpr::Col(c), rhs) => (*c, p.op, rhs),
        (lhs, CExpr::Col(c)) => (*c, flip(p.op), lhs),
        _ => return None,
    };
    let col = crel.col(ci);
    match rhs {
        CExpr::Lit(v) => match v {
            Value::Int(k) => {
                if let Some(c) = col.ints() {
                    return Some(FilterKernel::IntLit(c, op, *k));
                }
                match num_slice_for_cmp(col)? {
                    c @ NumSlice::F(_) => Some(FilterKernel::NumLit(c, op, *k as f64)),
                    NumSlice::I(_) => None,
                }
            }
            Value::Double(d) if !d.is_nan() => {
                num_slice_for_cmp(col).map(|c| FilterKernel::NumLit(c, op, *d))
            }
            Value::Str(s) => col.strs().map(|c| FilterKernel::StrLit(c, op, s.clone())),
            Value::Bool(b) => col.bools().map(|c| FilterKernel::BoolLit(c, op, *b)),
            _ => None,
        },
        CExpr::Col(c2) => {
            let other = crel.col(*c2);
            if let (Some(a), Some(b)) = (col.ints(), other.ints()) {
                return Some(FilterKernel::IntCol(a, op, b));
            }
            if let (Some(a), Some(b)) = (num_slice_for_cmp(col), num_slice_for_cmp(other)) {
                return Some(FilterKernel::NumCol(a, op, b));
            }
            if let (Some(a), Some(b)) = (col.strs(), other.strs()) {
                return Some(FilterKernel::StrCol(a, op, b));
            }
            if let (Some(a), Some(b)) = (col.bools(), other.bools()) {
                return Some(FilterKernel::BoolCol(a, op, b));
            }
            None
        }
        _ => None,
    }
}

/// Mirror a comparison so `lit op col` becomes `col (flip op) lit`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq | CmpOp::Ne => op,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// The op-to-ordering mapping of [`value::compare`].
fn ord_keep(ord: std::cmp::Ordering, op: CmpOp) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn num_keep(a: f64, op: CmpOp, b: f64) -> bool {
    match a.partial_cmp(&b) {
        Some(ord) => ord_keep(ord, op),
        None => unreachable!("NaN excluded at kernel build"),
    }
}

/// The rows surviving the filter kernels. `All` avoids materializing an
/// identity index vector for unfiltered scans.
enum Sel {
    All(usize),
    Rows(Vec<usize>),
}

impl Sel {
    fn indices(&self) -> SelIter<'_> {
        match self {
            Sel::All(n) => SelIter::All(0..*n),
            Sel::Rows(v) => SelIter::Rows(v.iter()),
        }
    }
}

enum SelIter<'a> {
    All(std::ops::Range<usize>),
    Rows(std::slice::Iter<'a, usize>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(r) => r.next(),
            SelIter::Rows(it) => it.next().copied(),
        }
    }
}

/// Run every kernel over the columns, producing the selection (ascending
/// row order, same as the scan path).
fn select_rows(n: usize, kernels: &[FilterKernel<'_>]) -> Sel {
    let Some((first, rest)) = kernels.split_first() else {
        return Sel::All(n);
    };
    let mut rows: Vec<usize> = (0..n).filter(|&i| first.keep(i)).collect();
    for k in rest {
        rows.retain(|&i| k.keep(i));
    }
    Sel::Rows(rows)
}

/// Group-id assignment in first-seen order (ids are allocated densely, so
/// the output loop over ascending ids reproduces the row path's
/// `group_order` exactly).
enum Grouper<'a> {
    /// Single clean Int grouping column: i64 hash keys, no `Value` clones.
    Int {
        col: &'a [i64],
        map: HashMap<i64, usize>,
    },
    /// General case: exact `Value` keys — the same `cmp_total` equality the
    /// row path's `HashMap<Vec<Value>, _>` uses.
    Generic {
        crel: &'a ColumnarRelation,
        cols: &'a [usize],
        map: HashMap<Vec<Value>, usize>,
    },
}

impl<'a> Grouper<'a> {
    fn new(crel: &'a ColumnarRelation, group_exprs: &'a [usize]) -> Self {
        if let [c] = group_exprs {
            if let Some(col) = crel.col(*c).ints() {
                return Grouper::Int {
                    col,
                    map: HashMap::new(),
                };
            }
        }
        Grouper::Generic {
            crel,
            cols: group_exprs,
            map: HashMap::new(),
        }
    }

    /// The group id of row `i`, allocating the next id on first sight.
    fn gid(&mut self, i: usize) -> usize {
        match self {
            Grouper::Int { col, map } => {
                let next = map.len();
                *map.entry(col[i]).or_insert(next)
            }
            Grouper::Generic { crel, cols, map } => {
                let key: Vec<Value> = cols.iter().map(|&c| crel.value(i, c)).collect();
                let next = map.len();
                *map.entry(key).or_insert(next)
            }
        }
    }
}

/// SUM over a clean Int column: the Int-with-overflow-promotion state
/// machine of [`Accumulator`] / [`value::add`].
#[derive(Clone, Copy)]
enum IntSum {
    I(i64),
    F(f64),
}

/// A vectorized accumulator: per-group state driven by group ids, reading
/// its argument straight from a typed column. Each variant replicates the
/// corresponding [`Accumulator`] arm bit for bit; shapes that could error
/// mid-accumulation (mixed columns, NaN under MIN/MAX, arithmetic
/// arguments) are never constructed — see [`vacc_for`].
enum VAcc<'a> {
    /// COUNT / COUNT(*): the value is never inspected, never errors.
    Count(Vec<i64>),
    SumInt(&'a [i64], Vec<IntSum>),
    /// SUM over Double, seeded with the group's first value (the row path
    /// seeds with `v.clone()`; seeding `0.0` would turn a first `-0.0`
    /// into `+0.0` and diverge bytewise).
    SumDouble(&'a [f64], Vec<f64>),
    /// AVG: f64 sum from 0.0 plus a count ([`Accumulator`]'s Avg). NaN is
    /// permitted — addition is total and poisons the sum identically.
    Avg(NumSlice<'a>, Vec<(f64, i64)>),
    MinInt(&'a [i64], Vec<i64>),
    MaxInt(&'a [i64], Vec<i64>),
    /// MIN/MAX over Double require a NaN-free column: strict `<`/`>` folds
    /// match `cmp_sql`'s replace-iff-strictly-ordered rule (first value
    /// seeds; `-0.0`/`0.0` ties keep the incumbent on both paths).
    MinDouble(&'a [f64], Vec<f64>),
    MaxDouble(&'a [f64], Vec<f64>),
    /// MIN/MAX over strings fold an argmin/argmax row index — no clones
    /// until finish.
    MinStr(&'a [String], Vec<usize>),
    MaxStr(&'a [String], Vec<usize>),
}

/// Build the vectorized accumulator for one aggregate slot, or `None` when
/// the slot's argument or column data requires the row path.
fn vacc_for<'a>(crel: &'a ColumnarRelation, slot: &AggSlot) -> Option<VAcc<'a>> {
    let col = match &slot.arg {
        None => None,
        Some(CExpr::Col(c)) => Some(crel.col(*c)),
        // Arithmetic arguments can error mid-accumulation; decline.
        Some(_) => return None,
    };
    match slot.func {
        AggFunc::Count => Some(VAcc::Count(Vec::new())),
        AggFunc::Sum => {
            let col = col?;
            if let Some(v) = col.ints() {
                Some(VAcc::SumInt(v, Vec::new()))
            } else {
                col.doubles().map(|v| VAcc::SumDouble(v, Vec::new()))
            }
        }
        AggFunc::Avg => num_slice(col?).map(|v| VAcc::Avg(v, Vec::new())),
        AggFunc::Min | AggFunc::Max => {
            let min = slot.func == AggFunc::Min;
            let col = col?;
            if let Some(v) = col.ints() {
                Some(if min {
                    VAcc::MinInt(v, Vec::new())
                } else {
                    VAcc::MaxInt(v, Vec::new())
                })
            } else if let Some(v) = col.doubles() {
                if col.has_nan() {
                    None
                } else if min {
                    Some(VAcc::MinDouble(v, Vec::new()))
                } else {
                    Some(VAcc::MaxDouble(v, Vec::new()))
                }
            } else {
                col.strs().map(|v| {
                    if min {
                        VAcc::MinStr(v, Vec::new())
                    } else {
                        VAcc::MaxStr(v, Vec::new())
                    }
                })
            }
        }
    }
}

impl VAcc<'_> {
    /// Fold row `row` into group `gid`. Group ids arrive in first-seen
    /// order, so `gid == states.len()` marks a new group and seeds it.
    fn update(&mut self, gid: usize, row: usize) {
        match self {
            VAcc::Count(s) => {
                if gid == s.len() {
                    s.push(0);
                }
                s[gid] += 1;
            }
            VAcc::SumInt(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(IntSum::I(v));
                } else {
                    s[gid] = match s[gid] {
                        IntSum::I(a) => match a.checked_add(v) {
                            Some(x) => IntSum::I(x),
                            None => IntSum::F(a as f64 + v as f64),
                        },
                        IntSum::F(a) => IntSum::F(a + v as f64),
                    };
                }
            }
            VAcc::SumDouble(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(v);
                } else {
                    s[gid] += v;
                }
            }
            VAcc::Avg(col, s) => {
                if gid == s.len() {
                    s.push((0.0, 0));
                }
                let (sum, count) = &mut s[gid];
                *sum += col.get(row);
                *count += 1;
            }
            VAcc::MinInt(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(v);
                } else if v < s[gid] {
                    s[gid] = v;
                }
            }
            VAcc::MaxInt(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(v);
                } else if v > s[gid] {
                    s[gid] = v;
                }
            }
            VAcc::MinDouble(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(v);
                } else if v < s[gid] {
                    s[gid] = v;
                }
            }
            VAcc::MaxDouble(col, s) => {
                let v = col[row];
                if gid == s.len() {
                    s.push(v);
                } else if v > s[gid] {
                    s[gid] = v;
                }
            }
            VAcc::MinStr(col, s) => {
                if gid == s.len() {
                    s.push(row);
                } else if col[row] < col[s[gid]] {
                    s[gid] = row;
                }
            }
            VAcc::MaxStr(col, s) => {
                if gid == s.len() {
                    s.push(row);
                } else if col[row] > col[s[gid]] {
                    s[gid] = row;
                }
            }
        }
    }

    /// The finished aggregate value for group `gid` (groups always hold at
    /// least one row — same contract as [`Accumulator::finish`]).
    fn finish(&self, gid: usize) -> Value {
        match self {
            VAcc::Count(s) => Value::Int(s[gid]),
            VAcc::SumInt(_, s) => match s[gid] {
                IntSum::I(x) => Value::Int(x),
                IntSum::F(x) => Value::Double(x),
            },
            VAcc::SumDouble(_, s) => Value::Double(s[gid]),
            VAcc::Avg(_, s) => {
                let (sum, count) = s[gid];
                Value::Double(sum / count as f64)
            }
            VAcc::MinInt(_, s) | VAcc::MaxInt(_, s) => Value::Int(s[gid]),
            VAcc::MinDouble(_, s) | VAcc::MaxDouble(_, s) => Value::Double(s[gid]),
            VAcc::MinStr(col, s) | VAcc::MaxStr(col, s) => Value::Str(col[s[gid]].clone()),
        }
    }
}

impl Compiler {
    /// Resolve a column reference to a core-table index.
    fn resolve(&self, c: &ColumnRef) -> EngineResult<usize> {
        match &c.table {
            Some(binding) => {
                let oi = self
                    .bindings
                    .iter()
                    .position(|b| b == binding)
                    .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))?;
                let pos = self.occ_cols[oi]
                    .iter()
                    .position(|col| col == &c.column)
                    .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))?;
                Ok(self.occs[oi].offset + pos)
            }
            None => {
                let mut found = None;
                for (oi, cols) in self.occ_cols.iter().enumerate() {
                    if let Some(pos) = cols.iter().position(|col| col == &c.column) {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(self.occs[oi].offset + pos);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Compile a scalar (aggregate-free) expression.
    fn compile_scalar(&self, e: &Expr) -> EngineResult<CExpr> {
        match e {
            Expr::Column(c) => Ok(CExpr::Col(self.resolve(c)?)),
            Expr::Literal(l) => Ok(CExpr::Lit(value::lit_value(l))),
            Expr::Binary { lhs, op, rhs } => Ok(CExpr::Bin(
                Box::new(self.compile_scalar(lhs)?),
                *op,
                Box::new(self.compile_scalar(rhs)?),
            )),
            Expr::Neg(inner) => Ok(CExpr::Neg(Box::new(self.compile_scalar(inner)?))),
            Expr::Agg(_) => Err(EngineError::MisplacedAggregate),
        }
    }

    /// Compile an expression appearing in a grouped context (`SELECT` or
    /// `HAVING` of a grouped query): aggregate calls become slot
    /// references, and bare columns must be grouping columns.
    fn compile_grouped(&mut self, e: &Expr) -> EngineResult<CExpr> {
        match e {
            Expr::Column(c) => {
                let idx = self.resolve(c)?;
                if !self.grouped || self.group_exprs.contains(&idx) {
                    Ok(CExpr::Col(idx))
                } else {
                    Err(EngineError::NonGroupedColumn(c.to_string()))
                }
            }
            Expr::Literal(l) => Ok(CExpr::Lit(value::lit_value(l))),
            Expr::Binary { lhs, op, rhs } => Ok(CExpr::Bin(
                Box::new(self.compile_grouped(lhs)?),
                *op,
                Box::new(self.compile_grouped(rhs)?),
            )),
            Expr::Neg(inner) => Ok(CExpr::Neg(Box::new(self.compile_grouped(inner)?))),
            Expr::Agg(agg) => {
                let arg = match &agg.arg {
                    None => None,
                    Some(a) => {
                        if a.contains_aggregate() {
                            return Err(EngineError::MisplacedAggregate);
                        }
                        Some(self.compile_scalar(a)?)
                    }
                };
                let slot = self.agg_slots.len();
                self.agg_slots.push(AggSlot {
                    func: agg.func,
                    arg,
                });
                Ok(CExpr::AggRef(slot))
            }
        }
    }
}

/// Map core index → occurrence index (occurrences are few; a linear scan
/// beats a binary search here).
fn occ_of(occs: &[PlanOcc], core: usize) -> usize {
    occs.iter()
        .rposition(|o| o.offset <= core)
        .expect("core index within range")
}

/// Exact-integer range of f64: cross-type probe variants are only generated
/// below this magnitude, where `Int(x) == Double(y)` under SQL comparison
/// iff the twin conversion is exact.
const F64_EXACT: f64 = 9007199254740992.0; // 2^53

/// The index keys a constant can equal under [`Value::cmp_sql`]: the value
/// itself plus its numeric cross-type twin. `None` = semantics not
/// representable by hash probes (precision edge, non-finite) — scan.
fn probe_variants(v: &Value) -> Option<Vec<Value>> {
    Some(match v {
        Value::Int(x) => {
            if (x.unsigned_abs() as f64) < F64_EXACT {
                vec![Value::Int(*x), Value::Double(*x as f64)]
            } else {
                return None;
            }
        }
        Value::Double(d) => {
            if !d.is_finite() || d.abs() >= F64_EXACT {
                return None;
            }
            if d.fract() == 0.0 {
                vec![Value::Double(*d), Value::Int(*d as i64)]
            } else {
                vec![Value::Double(*d)]
            }
        }
        other => vec![other.clone()],
    })
}

/// Shift a predicate from core column space into a single occurrence's
/// local column space (compile-time; the scan then evaluates rows as-is).
fn shift_pred(p: &CPred, offset: usize) -> CPred {
    fn shift(e: &CExpr, offset: usize) -> CExpr {
        match e {
            CExpr::Col(i) => CExpr::Col(i - offset),
            CExpr::Lit(v) => CExpr::Lit(v.clone()),
            CExpr::Bin(a, op, b) => {
                CExpr::Bin(Box::new(shift(a, offset)), *op, Box::new(shift(b, offset)))
            }
            CExpr::Neg(a) => CExpr::Neg(Box::new(shift(a, offset))),
            CExpr::AggRef(i) => CExpr::AggRef(*i),
        }
    }
    CPred {
        lhs: shift(&p.lhs, offset),
        op: p.op,
        rhs: shift(&p.rhs, offset),
    }
}

/// Remap a predicate's core columns into an intermediate layout (once per
/// join step, not per row).
fn remap_pred(p: &CPred, remap: &[usize]) -> CPred {
    fn rm(e: &CExpr, remap: &[usize]) -> CExpr {
        match e {
            CExpr::Col(i) => CExpr::Col(remap[*i]),
            CExpr::Lit(v) => CExpr::Lit(v.clone()),
            CExpr::Bin(a, op, b) => CExpr::Bin(Box::new(rm(a, remap)), *op, Box::new(rm(b, remap))),
            CExpr::Neg(a) => CExpr::Neg(Box::new(rm(a, remap))),
            CExpr::AggRef(i) => CExpr::AggRef(*i),
        }
    }
    CPred {
        lhs: rm(&p.lhs, remap),
        op: p.op,
        rhs: rm(&p.rhs, remap),
    }
}

fn collect_cols(e: &CExpr, out: &mut Vec<usize>) {
    match e {
        CExpr::Col(i) => out.push(*i),
        CExpr::Lit(_) | CExpr::AggRef(_) => {}
        CExpr::Bin(a, _, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        CExpr::Neg(a) => collect_cols(a, out),
    }
}

/// Evaluate a compiled expression against a core row and aggregate values.
fn eval(e: &CExpr, row: &[Value], aggs: &[Value]) -> EngineResult<Value> {
    match e {
        CExpr::Col(i) => Ok(row[*i].clone()),
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Bin(a, op, b) => {
            let x = eval(a, row, aggs)?;
            let y = eval(b, row, aggs)?;
            let r = match op {
                ArithOp::Add => value::add(&x, &y),
                ArithOp::Sub => value::sub(&x, &y),
                ArithOp::Mul => value::mul(&x, &y),
                ArithOp::Div => {
                    if matches!(y.as_f64(), Some(d) if d == 0.0) {
                        return Err(EngineError::DivisionByZero);
                    }
                    value::div(&x, &y)
                }
            };
            r.ok_or_else(|| {
                EngineError::TypeError(format!(
                    "arithmetic on {} and {}",
                    x.type_name(),
                    y.type_name()
                ))
            })
        }
        CExpr::Neg(a) => {
            let x = eval(a, row, aggs)?;
            value::neg(&x)
                .ok_or_else(|| EngineError::TypeError(format!("negation of {}", x.type_name())))
        }
        CExpr::AggRef(i) => Ok(aggs[*i].clone()),
    }
}

fn eval_pred(p: &CPred, row: &[Value], aggs: &[Value]) -> EngineResult<bool> {
    let l = eval(&p.lhs, row, aggs)?;
    let r = eval(&p.rhs, row, aggs)?;
    value::compare(&l, p.op, &r).ok_or_else(|| {
        EngineError::TypeError(format!(
            "comparison of {} and {}",
            l.type_name(),
            r.type_name()
        ))
    })
}

fn dedup(rel: &mut Relation) {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    rel.rows.retain(|r| seen.insert(r.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GroupIndex;
    use crate::relation::{multiset_eq, rel_of_ints};
    use aggview_sql::parse_query;

    fn db2() -> Database {
        let mut db = Database::new();
        db.insert(
            "R1",
            rel_of_ints(["A", "B"], &[&[1, 10], &[1, 20], &[2, 30], &[2, 30]]),
        );
        db.insert(
            "R2",
            rel_of_ints(["C", "D"], &[&[1, 100], &[2, 200], &[3, 300]]),
        );
        db
    }

    fn run(sql: &str, db: &Database) -> Relation {
        execute(&parse_query(sql).unwrap(), db).unwrap()
    }

    #[test]
    fn projection_keeps_duplicates() {
        let out = run("SELECT A FROM R1", &db2());
        assert_eq!(out.sorted_rows().len(), 4);
        assert!(out.has_duplicates());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let out = run("SELECT DISTINCT A, B FROM R1", &db2());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn where_filters() {
        let out = run("SELECT A, B FROM R1 WHERE B > 15", &db2());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn equi_join() {
        let out = run("SELECT A, D FROM R1, R2 WHERE A = C", &db2());
        // (1,100)x2, (2,200)x2 — multiset semantics keeps all four.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn cross_product_multiplicity() {
        let out = run("SELECT A, C FROM R1, R2", &db2());
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn non_equi_join() {
        let out = run("SELECT A, C FROM R1, R2 WHERE A < C", &db2());
        // A=1 matches C∈{2,3} (2 rows ×2 dups... A=1 appears twice) etc.
        // rows with A=1: 2 rows × 2 matches = 4; A=2: 2 rows × 1 match = 2.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn group_by_with_aggregates() {
        let out = run(
            "SELECT A, SUM(B), COUNT(B), MIN(B), MAX(B) FROM R1 GROUP BY A",
            &db2(),
        );
        let rows = out.sorted_rows();
        assert_eq!(
            rows,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(30),
                    Value::Int(2),
                    Value::Int(10),
                    Value::Int(20)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(60),
                    Value::Int(2),
                    Value::Int(30),
                    Value::Int(30)
                ],
            ]
        );
    }

    #[test]
    fn avg_is_double() {
        let out = run("SELECT A, AVG(B) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Double(15.0)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Double(30.0)]);
    }

    #[test]
    fn having_filters_groups() {
        let out = run(
            "SELECT A, SUM(B) FROM R1 GROUP BY A HAVING SUM(B) > 40",
            &db2(),
        );
        assert_eq!(out.sorted_rows(), vec![vec![Value::Int(2), Value::Int(60)]]);
    }

    #[test]
    fn having_on_grouping_column() {
        let out = run("SELECT A, SUM(B) FROM R1 GROUP BY A HAVING A = 1", &db2());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn count_star() {
        let out = run("SELECT A, COUNT(*) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn aggregate_without_group_by() {
        let out = run("SELECT SUM(B), COUNT(B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Int(90), Value::Int(4)]]);
    }

    #[test]
    fn aggregate_over_empty_input_is_empty() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["x"], &[]));
        let out = run("SELECT SUM(x) FROM T", &db);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_group_produces_no_row() {
        let out = run("SELECT A, SUM(B) FROM R1 WHERE B > 1000 GROUP BY A", &db2());
        assert!(out.is_empty());
    }

    #[test]
    fn weighted_aggregate_expression() {
        // SUM(A * B): the form emitted by the rewriter's Strategy B.
        let out = run("SELECT SUM(A * B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Int(10 + 20 + 60 + 60)]]);
    }

    #[test]
    fn scaled_aggregate_in_select() {
        // Cnt * SUM(B): the paper's S5' output form (arithmetic over an
        // aggregate and a grouping column).
        let out = run("SELECT A, A * SUM(B) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(30)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(120)]);
    }

    #[test]
    fn division_in_select_is_double() {
        let out = run("SELECT SUM(B) / COUNT(B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Double(22.5)]]);
    }

    #[test]
    fn self_join_with_aliases() {
        let out = run("SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.B", &db2());
        // B=10:1 pair; B=20:1; B=30: 2x2=4 pairs. Total 6.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = db2();
        let q = parse_query("SELECT A FROM R1, R1").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::DuplicateBinding("R1".into())
        );
    }

    #[test]
    fn unknown_column_rejected() {
        let db = db2();
        let q = parse_query("SELECT Zz FROM R1").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let mut db = Database::new();
        db.insert("S", rel_of_ints(["A"], &[&[1]]));
        db.insert("T", rel_of_ints(["A"], &[&[1]]));
        let q = parse_query("SELECT A FROM S, T").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::AmbiguousColumn("A".into())
        );
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = db2();
        let q = parse_query("SELECT B, SUM(A) FROM R1 GROUP BY A").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::NonGroupedColumn(_)
        ));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let db = db2();
        let q = parse_query("SELECT A FROM R1 WHERE SUM(B) > 3").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::MisplacedAggregate
        );
    }

    #[test]
    fn constant_false_predicate_empties_result() {
        let out = run("SELECT A FROM R1 WHERE 1 = 2", &db2());
        assert!(out.is_empty());
    }

    #[test]
    fn constant_true_predicate_is_noop() {
        let out = run("SELECT A FROM R1 WHERE 1 = 1", &db2());
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn three_way_join_ordering() {
        let mut db = db2();
        db.insert("R3", rel_of_ints(["E", "F"], &[&[100, 7], &[300, 9]]));
        let out = run("SELECT A, F FROM R1, R2, R3 WHERE A = C AND D = E", &db);
        // A=C gives (1,100)x2,(2,200)x2; D=E keeps D=100 → 2 rows with F=7.
        assert_eq!(
            out.sorted_rows(),
            vec![
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(1), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn non_equi_predicate_bound_before_all_tables_join() {
        // Regression: a cross-table non-equi predicate becomes evaluable
        // after the second join step while a third table is still pending;
        // the mid-join remap must tolerate unjoined occurrences.
        let mut db = db2();
        db.insert("R3", rel_of_ints(["G"], &[&[1], &[2], &[3], &[4]]));
        let out = run("SELECT A, G FROM R1, R2, R3 WHERE A < C", &db);
        // A<C pairs: 6 (see non_equi_join) × 4 R3 rows.
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn string_predicates() {
        let mut db = Database::new();
        db.insert(
            "P",
            Relation::new(
                ["name", "v"],
                vec![
                    vec![Value::Str("basic".into()), Value::Int(1)],
                    vec![Value::Str("gold".into()), Value::Int(2)],
                ],
            ),
        );
        let out = run("SELECT v FROM P WHERE name = 'gold'", &db);
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn division_by_zero_is_error() {
        let db = db2();
        let q = parse_query("SELECT A / 0 FROM R1").unwrap();
        assert_eq!(execute(&q, &db).unwrap_err(), EngineError::DivisionByZero);
    }

    #[test]
    fn group_by_qualified_column() {
        let out = run("SELECT R1.A, COUNT(*) FROM R1 GROUP BY R1.A", &db2());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn string_group_keys() {
        let mut db = Database::new();
        db.insert(
            "P",
            Relation::new(
                ["name", "v"],
                vec![
                    vec![Value::Str("basic".into()), Value::Int(1)],
                    vec![Value::Str("basic".into()), Value::Int(2)],
                    vec![Value::Str("gold".into()), Value::Int(5)],
                ],
            ),
        );
        let out = run("SELECT name, SUM(v), MIN(name) FROM P GROUP BY name", &db);
        let rows = out.sorted_rows();
        assert_eq!(
            rows[0],
            vec![
                Value::Str("basic".into()),
                Value::Int(3),
                Value::Str("basic".into())
            ]
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn boolean_predicates() {
        let mut db = Database::new();
        db.insert(
            "F",
            Relation::new(
                ["flag", "v"],
                vec![
                    vec![Value::Bool(true), Value::Int(1)],
                    vec![Value::Bool(false), Value::Int(2)],
                ],
            ),
        );
        let out = run("SELECT v FROM F WHERE flag = TRUE", &db);
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn comparison_type_error_surfaces() {
        let mut db = Database::new();
        db.insert(
            "M",
            Relation::new(
                ["s", "n"],
                vec![vec![Value::Str("x".into()), Value::Int(1)]],
            ),
        );
        let q = parse_query("SELECT n FROM M WHERE s < 5").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::TypeError(_)
        ));
    }

    #[test]
    fn having_without_group_by() {
        let out = run("SELECT SUM(B) FROM R1 HAVING SUM(B) > 1000", &db2());
        assert!(out.is_empty());
        let out = run("SELECT SUM(B) FROM R1 HAVING SUM(B) > 10", &db2());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn compiled_plan_survives_data_changes() {
        // The tentpole contract: compile once, re-run as rows change.
        let mut db = db2();
        let q = parse_query("SELECT A, SUM(B) FROM R1 GROUP BY A").unwrap();
        let plan = PhysicalPlan::compile(&q, &db).unwrap();
        let before = plan.run(&db).unwrap();
        assert_eq!(before.sorted_rows(), run(&q.to_string(), &db).sorted_rows());

        let mut r1 = db.get("R1").unwrap().clone();
        r1.push(vec![Value::Int(3), Value::Int(40)]);
        db.insert("R1", r1);
        let after = plan.run(&db).unwrap();
        assert_eq!(after.sorted_rows(), run(&q.to_string(), &db).sorted_rows());
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn stale_plan_arity_is_rejected() {
        let mut db = db2();
        let q = parse_query("SELECT A FROM R1").unwrap();
        let plan = PhysicalPlan::compile(&q, &db).unwrap();
        db.insert("R1", rel_of_ints(["A", "B", "C"], &[&[1, 2, 3]]));
        assert!(matches!(
            plan.run(&db).unwrap_err(),
            EngineError::TypeError(_)
        ));
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut db = Database::new();
        let rel = rel_of_ints(
            ["a", "b", "s"],
            &[&[1, 1, 5], &[1, 2, 7], &[2, 1, 9], &[2, 2, 11]],
        );
        db.insert("V", rel);
        let sql = "SELECT s FROM V WHERE a = 2 AND b = 1";
        let scanned = run(sql, &db);
        db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0, 1]));
        let probed = run(sql, &db);
        assert_eq!(scanned.rows, probed.rows);
        assert_eq!(probed.rows, vec![vec![Value::Int(9)]]);
    }

    #[test]
    fn index_probe_covers_cross_type_equality() {
        // `a = 2` must find a Double(2.0) key — cmp_sql equates them.
        let mut db = Database::new();
        db.insert(
            "V",
            Relation::new(
                ["a", "s"],
                vec![
                    vec![Value::Double(2.0), Value::Int(9)],
                    vec![Value::Int(3), Value::Int(11)],
                ],
            ),
        );
        let sql = "SELECT s FROM V WHERE a = 2";
        let scanned = run(sql, &db);
        db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0]));
        let probed = run(sql, &db);
        assert_eq!(scanned.rows, probed.rows);
        assert_eq!(probed.rows, vec![vec![Value::Int(9)]]);
    }

    #[test]
    fn index_probe_respects_extra_predicates() {
        // Bindings cover the key, but a further local predicate must still
        // filter the probed rows.
        let mut db = Database::new();
        db.insert("V", rel_of_ints(["a", "s"], &[&[1, 5], &[2, 9]]));
        db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0]));
        let out = run("SELECT s FROM V WHERE a = 2 AND s > 100", &db);
        assert!(out.is_empty());
    }

    #[test]
    fn partial_key_binding_falls_back_to_scan() {
        let mut db = Database::new();
        db.insert("V", rel_of_ints(["a", "b", "s"], &[&[1, 1, 5], &[1, 2, 7]]));
        db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0, 1]));
        // Only `a` is bound — the composite key cannot be probed.
        let out = run("SELECT s FROM V WHERE a = 1", &db);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn indexed_join_equals_unindexed_join() {
        let mut db = db2();
        let sql = "SELECT A, D FROM R1, R2 WHERE A = C AND C = 2";
        let plain = run(sql, &db);
        db.set_index("R2", GroupIndex::build(db.get("R2").unwrap(), vec![0]));
        let indexed = run(sql, &db);
        assert!(multiset_eq(&plain, &indexed));
        assert_eq!(indexed.len(), 2);
    }

    fn run_with(sql: &str, db: &Database, columnar: bool) -> Relation {
        execute_with(&parse_query(sql).unwrap(), db, columnar).unwrap()
    }

    #[test]
    fn vectorized_matches_row_path_exactly() {
        let db = db2();
        for sql in [
            "SELECT A, B FROM R1",
            "SELECT A FROM R1 WHERE B > 15",
            "SELECT A FROM R1 WHERE 15 < B",
            "SELECT A FROM R1 WHERE A = B",
            "SELECT B FROM R1 WHERE A <> 1 AND B >= 30",
            "SELECT A, SUM(B), COUNT(*), MIN(B), MAX(B), AVG(B) FROM R1 GROUP BY A",
            "SELECT A, SUM(B) FROM R1 WHERE B >= 20 GROUP BY A HAVING SUM(B) > 40",
            "SELECT DISTINCT A FROM R1",
            "SELECT SUM(B), COUNT(B) FROM R1",
            "SELECT A + B FROM R1 WHERE B < 25",
            "SELECT A, 2 * SUM(B) FROM R1 GROUP BY A",
        ] {
            let v = run_with(sql, &db, true);
            let r = run_with(sql, &db, false);
            assert_eq!(v.columns, r.columns, "query `{sql}` diverged on names");
            assert_eq!(v.rows, r.rows, "query `{sql}` diverged");
        }
    }

    #[test]
    fn vectorized_and_fallback_paths_are_counted() {
        use aggview_obs::{CounterId, MetricsRegistry};
        use std::sync::Arc;
        let mut db = db2();
        let m = Arc::new(MetricsRegistry::default());
        db.set_metrics(Arc::clone(&m));
        run("SELECT A, SUM(B) FROM R1 GROUP BY A", &db);
        assert_eq!(m.get(CounterId::ExecVectorized), 1);
        assert_eq!(m.get(CounterId::ExecRowFallback), 0);
        run("SELECT A, D FROM R1, R2 WHERE A = C", &db); // join → row path
        assert_eq!(m.get(CounterId::ExecVectorized), 1);
        assert_eq!(m.get(CounterId::ExecRowFallback), 1);
    }

    #[test]
    fn disabled_columnar_takes_the_row_path() {
        use aggview_obs::{CounterId, MetricsRegistry};
        use std::sync::Arc;
        let mut db = db2();
        let m = Arc::new(MetricsRegistry::default());
        db.set_metrics(Arc::clone(&m));
        let q = parse_query("SELECT A FROM R1").unwrap();
        let mut plan = PhysicalPlan::compile(&q, &db).unwrap();
        plan.set_columnar(false);
        plan.run(&db).unwrap();
        assert_eq!(m.get(CounterId::ExecVectorized), 0);
        assert_eq!(m.get(CounterId::ExecRowFallback), 1);
    }

    #[test]
    fn mixed_typed_column_falls_back_and_matches() {
        let mut db = Database::new();
        db.insert(
            "M",
            Relation::new(
                ["x"],
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Double(2.5)],
                    vec![Value::Int(3)],
                ],
            ),
        );
        for sql in ["SELECT SUM(x) FROM M", "SELECT x FROM M WHERE x > 1"] {
            assert_eq!(
                run_with(sql, &db, true).rows,
                run_with(sql, &db, false).rows,
                "query `{sql}` diverged"
            );
        }
    }

    #[test]
    fn vectorized_sum_overflow_promotes_like_row_path() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["x"], &[&[i64::MAX], &[1], &[5]]));
        let sql = "SELECT SUM(x) FROM T";
        let v = run_with(sql, &db, true);
        assert_eq!(v.rows, run_with(sql, &db, false).rows);
        assert!(matches!(v.rows[0][0], Value::Double(_)));
    }

    #[test]
    fn vectorized_projection_errors_match_row_path() {
        let db = db2();
        let q = parse_query("SELECT A / 0 FROM R1").unwrap();
        let v = execute_with(&q, &db, true).unwrap_err();
        let r = execute_with(&q, &db, false).unwrap_err();
        assert_eq!(v, r);
        assert_eq!(v, EngineError::DivisionByZero);
    }

    #[test]
    fn indexed_scan_declines_vectorization() {
        use aggview_obs::{CounterId, MetricsRegistry};
        use std::sync::Arc;
        let mut db = Database::new();
        db.insert("V", rel_of_ints(["a", "s"], &[&[1, 5], &[2, 9]]));
        db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0]));
        let m = Arc::new(MetricsRegistry::default());
        db.set_metrics(Arc::clone(&m));
        let out = run("SELECT s FROM V WHERE a = 2", &db);
        assert_eq!(out.rows, vec![vec![Value::Int(9)]]);
        assert_eq!(m.get(CounterId::IndexProbes), 1);
        assert_eq!(m.get(CounterId::ExecVectorized), 0);
    }

    #[test]
    fn vectorized_string_grouping_matches_row_path() {
        let mut db = Database::new();
        db.insert(
            "P",
            Relation::new(
                ["name", "v"],
                vec![
                    vec![Value::Str("gold".into()), Value::Int(5)],
                    vec![Value::Str("basic".into()), Value::Int(1)],
                    vec![Value::Str("basic".into()), Value::Int(2)],
                ],
            ),
        );
        let sql = "SELECT name, SUM(v), MIN(name), MAX(name) FROM P GROUP BY name";
        let v = run_with(sql, &db, true);
        assert_eq!(v.rows, run_with(sql, &db, false).rows);
        // First-seen group order is part of the contract.
        assert_eq!(v.rows[0][0], Value::Str("gold".into()));
    }

    #[test]
    fn nan_under_min_falls_back_to_matching_error() {
        let mut db = Database::new();
        db.insert(
            "D",
            Relation::new(
                ["x"],
                vec![vec![Value::Double(1.0)], vec![Value::Double(f64::NAN)]],
            ),
        );
        let q = parse_query("SELECT MIN(x) FROM D").unwrap();
        let v = execute_with(&q, &db, true).unwrap_err();
        let r = execute_with(&q, &db, false).unwrap_err();
        assert_eq!(v, r);
    }
}
