//! Query evaluation under multiset semantics.
//!
//! Evaluation follows the paper's two-phase conceptual model (Section 5.1):
//! the `FROM` and `WHERE` clauses produce the *core table*, then `SELECT`,
//! `GROUP BY` and `HAVING` apply to it. The core table is built with a
//! greedy hash-join plan over the equality predicates so that the benchmark
//! sweeps (millions of `Calls` rows) run in sensible time; all other
//! predicates are applied as soon as their columns are bound.

use crate::agg::Accumulator;
use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::value::{self, Value};
use aggview_sql::ast::{AggFunc, ArithOp, BoolExpr, CmpOp, ColumnRef, Expr, Literal, Query};
use std::collections::HashMap;

/// Execute `query` against `db`, returning the result relation.
///
/// ```
/// use aggview_engine::{execute, Database, Relation, Value};
/// use aggview_sql::parse_query;
///
/// let mut db = Database::new();
/// db.insert("T", Relation::new(
///     ["a", "b"],
///     vec![
///         vec![Value::Int(1), Value::Int(10)],
///         vec![Value::Int(1), Value::Int(20)],
///         vec![Value::Int(2), Value::Int(30)],
///     ],
/// ));
/// let q = parse_query("SELECT a, SUM(b) FROM T GROUP BY a").unwrap();
/// let out = execute(&q, &db).unwrap();
/// assert_eq!(out.sorted_rows(), vec![
///     vec![Value::Int(1), Value::Int(30)],
///     vec![Value::Int(2), Value::Int(30)],
/// ]);
/// ```
pub fn execute(query: &Query, db: &Database) -> EngineResult<Relation> {
    Executor::new(query, db)?.run()
}

/// Compiled scalar expression with resolved column slots (core-table
/// indexes) and aggregate references.
#[derive(Debug, Clone)]
enum CExpr {
    /// Core-table column.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary arithmetic.
    Bin(Box<CExpr>, ArithOp, Box<CExpr>),
    /// Negation.
    Neg(Box<CExpr>),
    /// Reference to aggregate slot `i` (grouped evaluation only).
    AggRef(usize),
}

/// A compiled comparison predicate.
#[derive(Debug, Clone)]
struct CPred {
    lhs: CExpr,
    op: CmpOp,
    rhs: CExpr,
}

/// One aggregate to compute: the function and its compiled argument
/// (`None` = `COUNT(*)`).
#[derive(Debug)]
struct AggSlot {
    func: AggFunc,
    arg: Option<CExpr>,
}

struct Occurrence<'a> {
    binding: String,
    relation: &'a Relation,
    offset: usize,
}

struct Executor<'a> {
    query: &'a Query,
    occurrences: Vec<Occurrence<'a>>,
    n_core_cols: usize,
    grouped: bool,
    group_exprs: Vec<usize>, // core indexes of GROUP BY columns
    agg_slots: Vec<AggSlot>,
    select: Vec<CExpr>,
    having: Vec<CPred>,
    where_preds: Vec<CPred>,
}

impl<'a> Executor<'a> {
    fn new(query: &'a Query, db: &'a Database) -> EngineResult<Self> {
        // Bind FROM occurrences.
        let mut occurrences: Vec<Occurrence<'a>> = Vec::with_capacity(query.from.len());
        let mut offset = 0usize;
        for tref in &query.from {
            let binding = tref.binding_name().to_string();
            if occurrences.iter().any(|o| o.binding == binding) {
                return Err(EngineError::DuplicateBinding(binding));
            }
            let relation = db.get(&tref.table)?;
            occurrences.push(Occurrence {
                binding,
                relation,
                offset,
            });
            offset += relation.arity();
        }
        let n_core_cols = offset;

        let mut ex = Executor {
            query,
            occurrences,
            n_core_cols,
            grouped: false,
            group_exprs: Vec::new(),
            agg_slots: Vec::new(),
            select: Vec::new(),
            having: Vec::new(),
            where_preds: Vec::new(),
        };

        // Grouping columns.
        for c in &query.group_by {
            let idx = ex.resolve(c)?;
            ex.group_exprs.push(idx);
        }

        let any_select_agg = query.select.iter().any(|s| s.expr.contains_aggregate());
        ex.grouped = !query.group_by.is_empty() || any_select_agg || query.having.is_some();

        // Compile WHERE (no aggregates allowed).
        if let Some(w) = &query.where_clause {
            for atom in w.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                if lhs.contains_aggregate() || rhs.contains_aggregate() {
                    return Err(EngineError::MisplacedAggregate);
                }
                let p = CPred {
                    lhs: ex.compile_scalar(lhs)?,
                    op: *op,
                    rhs: ex.compile_scalar(rhs)?,
                };
                ex.where_preds.push(p);
            }
        }

        // Compile SELECT.
        for item in &query.select {
            let compiled = if ex.grouped {
                ex.compile_grouped(&item.expr)?
            } else {
                ex.compile_scalar(&item.expr)?
            };
            ex.select.push(compiled);
        }

        // Compile HAVING.
        if let Some(h) = &query.having {
            for atom in h.conjuncts() {
                let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                    unreachable!("conjuncts() yields comparisons");
                };
                let p = CPred {
                    lhs: ex.compile_grouped(lhs)?,
                    op: *op,
                    rhs: ex.compile_grouped(rhs)?,
                };
                ex.having.push(p);
            }
        }

        Ok(ex)
    }

    /// Resolve a column reference to a core-table index.
    fn resolve(&self, c: &ColumnRef) -> EngineResult<usize> {
        match &c.table {
            Some(binding) => {
                let occ = self
                    .occurrences
                    .iter()
                    .find(|o| o.binding == *binding)
                    .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))?;
                let pos = occ
                    .relation
                    .column_index(&c.column)
                    .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))?;
                Ok(occ.offset + pos)
            }
            None => {
                let mut found = None;
                for occ in &self.occurrences {
                    if let Some(pos) = occ.relation.column_index(&c.column) {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(occ.offset + pos);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Compile a scalar (aggregate-free) expression.
    fn compile_scalar(&self, e: &Expr) -> EngineResult<CExpr> {
        match e {
            Expr::Column(c) => Ok(CExpr::Col(self.resolve(c)?)),
            Expr::Literal(l) => Ok(CExpr::Lit(lit_value(l))),
            Expr::Binary { lhs, op, rhs } => Ok(CExpr::Bin(
                Box::new(self.compile_scalar(lhs)?),
                *op,
                Box::new(self.compile_scalar(rhs)?),
            )),
            Expr::Neg(inner) => Ok(CExpr::Neg(Box::new(self.compile_scalar(inner)?))),
            Expr::Agg(_) => Err(EngineError::MisplacedAggregate),
        }
    }

    /// Compile an expression appearing in a grouped context (`SELECT` or
    /// `HAVING` of a grouped query): aggregate calls become slot
    /// references, and bare columns must be grouping columns.
    fn compile_grouped(&mut self, e: &Expr) -> EngineResult<CExpr> {
        match e {
            Expr::Column(c) => {
                let idx = self.resolve(c)?;
                if !self.grouped || self.group_exprs.contains(&idx) {
                    Ok(CExpr::Col(idx))
                } else {
                    Err(EngineError::NonGroupedColumn(c.to_string()))
                }
            }
            Expr::Literal(l) => Ok(CExpr::Lit(lit_value(l))),
            Expr::Binary { lhs, op, rhs } => Ok(CExpr::Bin(
                Box::new(self.compile_grouped(lhs)?),
                *op,
                Box::new(self.compile_grouped(rhs)?),
            )),
            Expr::Neg(inner) => Ok(CExpr::Neg(Box::new(self.compile_grouped(inner)?))),
            Expr::Agg(agg) => {
                let arg = match &agg.arg {
                    None => None,
                    Some(a) => {
                        if a.contains_aggregate() {
                            return Err(EngineError::MisplacedAggregate);
                        }
                        Some(self.compile_scalar(a)?)
                    }
                };
                let slot = self.agg_slots.len();
                self.agg_slots.push(AggSlot {
                    func: agg.func,
                    arg,
                });
                Ok(CExpr::AggRef(slot))
            }
        }
    }

    fn run(mut self) -> EngineResult<Relation> {
        let core = self.build_core()?;
        let names = self.query.output_names();

        if !self.grouped {
            let mut out = Relation::empty(names);
            for row in &core {
                let mut cells = Vec::with_capacity(self.select.len());
                for e in &self.select {
                    cells.push(eval(e, row, &[])?);
                }
                out.push(cells);
            }
            if self.query.distinct {
                dedup(&mut out);
            }
            return Ok(out);
        }

        // Grouped evaluation. Key = values of GROUP BY columns (the whole
        // input is one group when GROUP BY is empty and there is at least
        // one row).
        let mut groups: HashMap<Vec<Value>, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
        let mut group_order: Vec<Vec<Value>> = Vec::new();
        for row in &core {
            let key: Vec<Value> = self
                .group_exprs
                .iter()
                .map(|&i| row[i].clone())
                .collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key);
                (
                    row.clone(),
                    self.agg_slots
                        .iter()
                        .map(|s| Accumulator::new(s.func))
                        .collect(),
                )
            });
            for (slot, acc) in self.agg_slots.iter().zip(entry.1.iter_mut()) {
                match &slot.arg {
                    None => acc.update(&Value::Int(0))?, // COUNT(*): value ignored
                    Some(arg) => {
                        let v = eval(arg, row, &[])?;
                        acc.update(&v)?;
                    }
                }
            }
        }

        let mut out = Relation::empty(names);
        'group: for key in &group_order {
            let (rep, accs) = &groups[key];
            let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            for pred in &self.having {
                if !eval_pred(pred, rep, &agg_values)? {
                    continue 'group;
                }
            }
            let mut cells = Vec::with_capacity(self.select.len());
            for e in &self.select {
                cells.push(eval(e, rep, &agg_values)?);
            }
            out.push(cells);
        }
        if self.query.distinct {
            dedup(&mut out);
        }
        Ok(out)
    }

    /// Build the core table (FROM × WHERE) with a greedy hash-join plan.
    /// Returns rows in the *core column space* (concatenation of FROM
    /// occurrences in declaration order).
    fn build_core(&mut self) -> EngineResult<Vec<Vec<Value>>> {
        let n_occ = self.occurrences.len();

        // Classify predicates.
        let mut applied = vec![false; self.where_preds.len()];
        let mut local: Vec<Vec<usize>> = vec![Vec::new(); n_occ]; // per-occurrence preds
        let mut equi: Vec<(usize, usize, usize)> = Vec::new(); // (pred, core_l, core_r)
        for (pi, p) in self.where_preds.iter().enumerate() {
            let mut cols = Vec::new();
            collect_cols(&p.lhs, &mut cols);
            collect_cols(&p.rhs, &mut cols);
            let occs: Vec<usize> = {
                let mut v: Vec<usize> = cols.iter().map(|&c| self.occ_of(c)).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            match occs.len() {
                0 => {
                    // Constant predicate: evaluate once; a false constant
                    // predicate empties the result.
                    if !eval_pred(p, &[], &[])? {
                        return Ok(Vec::new());
                    }
                    applied[pi] = true;
                }
                1 => {
                    local[occs[0]].push(pi);
                    applied[pi] = true; // applied during the scan below
                }
                _ => {
                    // Pure column-to-column equality between two
                    // occurrences is a hash-join candidate.
                    if p.op == CmpOp::Eq {
                        if let (CExpr::Col(a), CExpr::Col(b)) = (&p.lhs, &p.rhs) {
                            equi.push((pi, *a, *b));
                        }
                    }
                }
            }
        }

        // Scan and locally filter each occurrence.
        let mut scans: Vec<Vec<Vec<Value>>> = Vec::with_capacity(n_occ);
        for (oi, occ) in self.occurrences.iter().enumerate() {
            let mut rows = Vec::new();
            'row: for r in &occ.relation.rows {
                // Local predicates reference core indexes; build a sparse
                // core row view for this occurrence.
                for &pi in &local[oi] {
                    let p = &self.where_preds[pi];
                    if !eval_pred_offset(p, r, occ.offset)? {
                        continue 'row;
                    }
                }
                rows.push(r.clone());
            }
            scans.push(rows);
        }

        // Greedy join order: start with the smallest scan, then repeatedly
        // join the smallest occurrence connected by an equi predicate
        // (falling back to the smallest unconnected — a cross product).
        let mut remaining: Vec<usize> = (0..n_occ).collect();
        remaining.sort_by_key(|&oi| scans[oi].len());
        let first = remaining.remove(0);

        // `layout[oi] = Some(offset in intermediate row)` once joined.
        let mut layout: Vec<Option<usize>> = vec![None; n_occ];
        layout[first] = Some(0);
        let mut width = self.occurrences[first].relation.arity();
        let mut inter: Vec<Vec<Value>> = scans[first].clone();

        while !remaining.is_empty() {
            // Choose the next occurrence: connected and smallest.
            let connected_pos = remaining
                .iter()
                .position(|&oi| {
                    equi.iter().any(|&(pi, a, b)| {
                        !applied[pi] && {
                            let (oa, ob) = (self.occ_of(a), self.occ_of(b));
                            (oa == oi && layout[ob].is_some())
                                || (ob == oi && layout[oa].is_some())
                        }
                    })
                })
                .unwrap_or(0);
            let next = remaining.remove(connected_pos);

            // Keys: every unapplied equi predicate between `next` and the
            // current layout.
            let mut build_cols = Vec::new(); // local to `next`
            let mut probe_cols = Vec::new(); // positions in intermediate
            for &(pi, a, b) in &equi {
                if applied[pi] {
                    continue;
                }
                let (oa, ob) = (self.occ_of(a), self.occ_of(b));
                let (nc, ic) = if oa == next && layout[ob].is_some() {
                    (a, b)
                } else if ob == next && layout[oa].is_some() {
                    (b, a)
                } else {
                    continue;
                };
                build_cols.push(nc - self.occurrences[next].offset);
                probe_cols
                    .push(layout[self.occ_of(ic)].unwrap() + (ic - self.occurrences[self.occ_of(ic)].offset));
                applied[pi] = true;
            }

            let next_rows = &scans[next];
            let mut joined: Vec<Vec<Value>> = Vec::new();
            if build_cols.is_empty() {
                // Cross product.
                joined.reserve(inter.len().saturating_mul(next_rows.len()));
                for l in &inter {
                    for r in next_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        joined.push(row);
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(next_rows.len());
                for (ri, r) in next_rows.iter().enumerate() {
                    let key: Vec<Value> = build_cols.iter().map(|&c| r[c].clone()).collect();
                    table.entry(key).or_default().push(ri);
                }
                for l in &inter {
                    let key: Vec<Value> = probe_cols.iter().map(|&c| l[c].clone()).collect();
                    if let Some(matches) = table.get(&key) {
                        for &ri in matches {
                            let mut row = l.clone();
                            row.extend(next_rows[ri].iter().cloned());
                            joined.push(row);
                        }
                    }
                }
            }
            layout[next] = Some(width);
            width += self.occurrences[next].relation.arity();
            inter = joined;

            // Apply any not-yet-applied predicates whose columns are all
            // bound now (non-equi joins, redundant equalities, ...).
            let bound_preds: Vec<usize> = (0..self.where_preds.len())
                .filter(|&pi| {
                    !applied[pi] && {
                        let p = &self.where_preds[pi];
                        let mut cols = Vec::new();
                        collect_cols(&p.lhs, &mut cols);
                        collect_cols(&p.rhs, &mut cols);
                        cols.iter().all(|&c| layout[self.occ_of(c)].is_some())
                    }
                })
                .collect();
            if !bound_preds.is_empty() {
                let remap = self.remap_for(&layout);
                let mut filtered = Vec::with_capacity(inter.len());
                'jrow: for row in inter {
                    for &pi in &bound_preds {
                        let p = &self.where_preds[pi];
                        if !eval_pred_remap(p, &row, &remap)? {
                            continue 'jrow;
                        }
                    }
                    filtered.push(row);
                }
                for pi in bound_preds {
                    applied[pi] = true;
                }
                inter = filtered;
            }
        }

        // Permute intermediate rows into core-column order.
        let remap = self.remap_for(&layout);
        let identity = remap.iter().enumerate().all(|(i, &p)| i == p);
        if identity {
            return Ok(inter);
        }
        Ok(inter
            .into_iter()
            .map(|row| remap.iter().map(|&p| row[p].clone()).collect())
            .collect())
    }

    /// Map core index → occurrence index.
    fn occ_of(&self, core: usize) -> usize {
        // Occurrences are few; a linear scan beats a binary search here.
        self.occurrences
            .iter()
            .rposition(|o| o.offset <= core)
            .expect("core index within range")
    }

    /// Map core index → position in the intermediate layout. Columns of
    /// occurrences not yet joined map to `usize::MAX` — callers only
    /// evaluate predicates whose columns are all bound.
    fn remap_for(&self, layout: &[Option<usize>]) -> Vec<usize> {
        let mut remap = vec![usize::MAX; self.n_core_cols];
        for (oi, occ) in self.occurrences.iter().enumerate() {
            let Some(base) = layout[oi] else { continue };
            for k in 0..occ.relation.arity() {
                remap[occ.offset + k] = base + k;
            }
        }
        remap
    }
}

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Str(v) => Value::Str(v.clone()),
        Literal::Bool(v) => Value::Bool(*v),
    }
}

fn collect_cols(e: &CExpr, out: &mut Vec<usize>) {
    match e {
        CExpr::Col(i) => out.push(*i),
        CExpr::Lit(_) | CExpr::AggRef(_) => {}
        CExpr::Bin(a, _, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        CExpr::Neg(a) => collect_cols(a, out),
    }
}

/// Evaluate a compiled expression against a core row and aggregate values.
fn eval(e: &CExpr, row: &[Value], aggs: &[Value]) -> EngineResult<Value> {
    match e {
        CExpr::Col(i) => Ok(row[*i].clone()),
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Bin(a, op, b) => {
            let x = eval(a, row, aggs)?;
            let y = eval(b, row, aggs)?;
            let r = match op {
                ArithOp::Add => value::add(&x, &y),
                ArithOp::Sub => value::sub(&x, &y),
                ArithOp::Mul => value::mul(&x, &y),
                ArithOp::Div => {
                    if matches!(y.as_f64(), Some(d) if d == 0.0) {
                        return Err(EngineError::DivisionByZero);
                    }
                    value::div(&x, &y)
                }
            };
            r.ok_or_else(|| {
                EngineError::TypeError(format!(
                    "arithmetic on {} and {}",
                    x.type_name(),
                    y.type_name()
                ))
            })
        }
        CExpr::Neg(a) => {
            let x = eval(a, row, aggs)?;
            value::neg(&x)
                .ok_or_else(|| EngineError::TypeError(format!("negation of {}", x.type_name())))
        }
        CExpr::AggRef(i) => Ok(aggs[*i].clone()),
    }
}

fn eval_pred(p: &CPred, row: &[Value], aggs: &[Value]) -> EngineResult<bool> {
    let l = eval(&p.lhs, row, aggs)?;
    let r = eval(&p.rhs, row, aggs)?;
    compare(&l, p.op, &r)
}

/// Evaluate a predicate whose columns all live in one occurrence, against a
/// single-table row at the given core offset.
fn eval_pred_offset(p: &CPred, row: &[Value], offset: usize) -> EngineResult<bool> {
    fn shift(e: &CExpr, offset: usize) -> CExpr {
        match e {
            CExpr::Col(i) => CExpr::Col(i - offset),
            CExpr::Lit(v) => CExpr::Lit(v.clone()),
            CExpr::Bin(a, op, b) => CExpr::Bin(
                Box::new(shift(a, offset)),
                *op,
                Box::new(shift(b, offset)),
            ),
            CExpr::Neg(a) => CExpr::Neg(Box::new(shift(a, offset))),
            CExpr::AggRef(i) => CExpr::AggRef(*i),
        }
    }
    let l = eval(&shift(&p.lhs, offset), row, &[])?;
    let r = eval(&shift(&p.rhs, offset), row, &[])?;
    compare(&l, p.op, &r)
}

/// Evaluate a predicate against an intermediate row through a core→layout
/// remap.
fn eval_pred_remap(p: &CPred, row: &[Value], remap: &[usize]) -> EngineResult<bool> {
    fn rm(e: &CExpr, remap: &[usize]) -> CExpr {
        match e {
            CExpr::Col(i) => CExpr::Col(remap[*i]),
            CExpr::Lit(v) => CExpr::Lit(v.clone()),
            CExpr::Bin(a, op, b) => {
                CExpr::Bin(Box::new(rm(a, remap)), *op, Box::new(rm(b, remap)))
            }
            CExpr::Neg(a) => CExpr::Neg(Box::new(rm(a, remap))),
            CExpr::AggRef(i) => CExpr::AggRef(*i),
        }
    }
    let l = eval(&rm(&p.lhs, remap), row, &[])?;
    let r = eval(&rm(&p.rhs, remap), row, &[])?;
    compare(&l, p.op, &r)
}

fn compare(l: &Value, op: CmpOp, r: &Value) -> EngineResult<bool> {
    use std::cmp::Ordering;
    let ord = l.cmp_sql(r).ok_or_else(|| {
        EngineError::TypeError(format!(
            "comparison of {} and {}",
            l.type_name(),
            r.type_name()
        ))
    })?;
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

fn dedup(rel: &mut Relation) {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    rel.rows.retain(|r| seen.insert(r.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel_of_ints;
    use aggview_sql::parse_query;

    fn db2() -> Database {
        let mut db = Database::new();
        db.insert(
            "R1",
            rel_of_ints(["A", "B"], &[&[1, 10], &[1, 20], &[2, 30], &[2, 30]]),
        );
        db.insert("R2", rel_of_ints(["C", "D"], &[&[1, 100], &[2, 200], &[3, 300]]));
        db
    }

    fn run(sql: &str, db: &Database) -> Relation {
        execute(&parse_query(sql).unwrap(), db).unwrap()
    }

    #[test]
    fn projection_keeps_duplicates() {
        let out = run("SELECT A FROM R1", &db2());
        assert_eq!(out.sorted_rows().len(), 4);
        assert!(out.has_duplicates());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let out = run("SELECT DISTINCT A, B FROM R1", &db2());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn where_filters() {
        let out = run("SELECT A, B FROM R1 WHERE B > 15", &db2());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn equi_join() {
        let out = run("SELECT A, D FROM R1, R2 WHERE A = C", &db2());
        // (1,100)x2, (2,200)x2 — multiset semantics keeps all four.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn cross_product_multiplicity() {
        let out = run("SELECT A, C FROM R1, R2", &db2());
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn non_equi_join() {
        let out = run("SELECT A, C FROM R1, R2 WHERE A < C", &db2());
        // A=1 matches C∈{2,3} (2 rows ×2 dups... A=1 appears twice) etc.
        // rows with A=1: 2 rows × 2 matches = 4; A=2: 2 rows × 1 match = 2.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn group_by_with_aggregates() {
        let out = run("SELECT A, SUM(B), COUNT(B), MIN(B), MAX(B) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(
            rows,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(30),
                    Value::Int(2),
                    Value::Int(10),
                    Value::Int(20)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(60),
                    Value::Int(2),
                    Value::Int(30),
                    Value::Int(30)
                ],
            ]
        );
    }

    #[test]
    fn avg_is_double() {
        let out = run("SELECT A, AVG(B) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Double(15.0)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Double(30.0)]);
    }

    #[test]
    fn having_filters_groups() {
        let out = run(
            "SELECT A, SUM(B) FROM R1 GROUP BY A HAVING SUM(B) > 40",
            &db2(),
        );
        assert_eq!(out.sorted_rows(), vec![vec![Value::Int(2), Value::Int(60)]]);
    }

    #[test]
    fn having_on_grouping_column() {
        let out = run("SELECT A, SUM(B) FROM R1 GROUP BY A HAVING A = 1", &db2());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn count_star() {
        let out = run("SELECT A, COUNT(*) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn aggregate_without_group_by() {
        let out = run("SELECT SUM(B), COUNT(B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Int(90), Value::Int(4)]]);
    }

    #[test]
    fn aggregate_over_empty_input_is_empty() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["x"], &[]));
        let out = run("SELECT SUM(x) FROM T", &db);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_group_produces_no_row() {
        let out = run("SELECT A, SUM(B) FROM R1 WHERE B > 1000 GROUP BY A", &db2());
        assert!(out.is_empty());
    }

    #[test]
    fn weighted_aggregate_expression() {
        // SUM(A * B): the form emitted by the rewriter's Strategy B.
        let out = run("SELECT SUM(A * B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Int(10 + 20 + 60 + 60)]]);
    }

    #[test]
    fn scaled_aggregate_in_select() {
        // Cnt * SUM(B): the paper's S5' output form (arithmetic over an
        // aggregate and a grouping column).
        let out = run("SELECT A, A * SUM(B) FROM R1 GROUP BY A", &db2());
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(30)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(120)]);
    }

    #[test]
    fn division_in_select_is_double() {
        let out = run("SELECT SUM(B) / COUNT(B) FROM R1", &db2());
        assert_eq!(out.rows, vec![vec![Value::Double(22.5)]]);
    }

    #[test]
    fn self_join_with_aliases() {
        let out = run("SELECT x.A, y.A FROM R1 x, R1 y WHERE x.B = y.B", &db2());
        // B=10:1 pair; B=20:1; B=30: 2x2=4 pairs. Total 6.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = db2();
        let q = parse_query("SELECT A FROM R1, R1").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::DuplicateBinding("R1".into())
        );
    }

    #[test]
    fn unknown_column_rejected() {
        let db = db2();
        let q = parse_query("SELECT Zz FROM R1").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let mut db = Database::new();
        db.insert("S", rel_of_ints(["A"], &[&[1]]));
        db.insert("T", rel_of_ints(["A"], &[&[1]]));
        let q = parse_query("SELECT A FROM S, T").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::AmbiguousColumn("A".into())
        );
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = db2();
        let q = parse_query("SELECT B, SUM(A) FROM R1 GROUP BY A").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::NonGroupedColumn(_)
        ));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let db = db2();
        let q = parse_query("SELECT A FROM R1 WHERE SUM(B) > 3").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            EngineError::MisplacedAggregate
        );
    }

    #[test]
    fn constant_false_predicate_empties_result() {
        let out = run("SELECT A FROM R1 WHERE 1 = 2", &db2());
        assert!(out.is_empty());
    }

    #[test]
    fn constant_true_predicate_is_noop() {
        let out = run("SELECT A FROM R1 WHERE 1 = 1", &db2());
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn three_way_join_ordering() {
        let mut db = db2();
        db.insert("R3", rel_of_ints(["E", "F"], &[&[100, 7], &[300, 9]]));
        let out = run(
            "SELECT A, F FROM R1, R2, R3 WHERE A = C AND D = E",
            &db,
        );
        // A=C gives (1,100)x2,(2,200)x2; D=E keeps D=100 → 2 rows with F=7.
        assert_eq!(
            out.sorted_rows(),
            vec![
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(1), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn non_equi_predicate_bound_before_all_tables_join() {
        // Regression: a cross-table non-equi predicate becomes evaluable
        // after the second join step while a third table is still pending;
        // the mid-join remap must tolerate unjoined occurrences.
        let mut db = db2();
        db.insert("R3", rel_of_ints(["G"], &[&[1], &[2], &[3], &[4]]));
        let out = run("SELECT A, G FROM R1, R2, R3 WHERE A < C", &db);
        // A<C pairs: 6 (see non_equi_join) × 4 R3 rows.
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn string_predicates() {
        let mut db = Database::new();
        db.insert(
            "P",
            Relation::new(
                ["name", "v"],
                vec![
                    vec![Value::Str("basic".into()), Value::Int(1)],
                    vec![Value::Str("gold".into()), Value::Int(2)],
                ],
            ),
        );
        let out = run("SELECT v FROM P WHERE name = 'gold'", &db);
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn division_by_zero_is_error() {
        let db = db2();
        let q = parse_query("SELECT A / 0 FROM R1").unwrap();
        assert_eq!(execute(&q, &db).unwrap_err(), EngineError::DivisionByZero);
    }

    #[test]
    fn group_by_qualified_column() {
        let out = run("SELECT R1.A, COUNT(*) FROM R1 GROUP BY R1.A", &db2());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn string_group_keys() {
        let mut db = Database::new();
        db.insert(
            "P",
            Relation::new(
                ["name", "v"],
                vec![
                    vec![Value::Str("basic".into()), Value::Int(1)],
                    vec![Value::Str("basic".into()), Value::Int(2)],
                    vec![Value::Str("gold".into()), Value::Int(5)],
                ],
            ),
        );
        let out = run("SELECT name, SUM(v), MIN(name) FROM P GROUP BY name", &db);
        let rows = out.sorted_rows();
        assert_eq!(
            rows[0],
            vec![
                Value::Str("basic".into()),
                Value::Int(3),
                Value::Str("basic".into())
            ]
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn boolean_predicates() {
        let mut db = Database::new();
        db.insert(
            "F",
            Relation::new(
                ["flag", "v"],
                vec![
                    vec![Value::Bool(true), Value::Int(1)],
                    vec![Value::Bool(false), Value::Int(2)],
                ],
            ),
        );
        let out = run("SELECT v FROM F WHERE flag = TRUE", &db);
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn comparison_type_error_surfaces() {
        let mut db = Database::new();
        db.insert(
            "M",
            Relation::new(
                ["s", "n"],
                vec![vec![Value::Str("x".into()), Value::Int(1)]],
            ),
        );
        let q = parse_query("SELECT n FROM M WHERE s < 5").unwrap();
        assert!(matches!(
            execute(&q, &db).unwrap_err(),
            EngineError::TypeError(_)
        ));
    }

    #[test]
    fn having_without_group_by() {
        let out = run("SELECT SUM(B) FROM R1 HAVING SUM(B) > 1000", &db2());
        assert!(out.is_empty());
        let out = run("SELECT SUM(B) FROM R1 HAVING SUM(B) > 10", &db2());
        assert_eq!(out.len(), 1);
    }
}
