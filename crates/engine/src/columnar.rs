//! Columnar relation storage: typed column vectors behind the row-based
//! [`Relation`] wire format.
//!
//! A [`ColumnarRelation`] stores each column as one typed vector
//! (`Vec<i64>`, `Vec<f64>`, `Vec<String>`, or `Vec<bool>`) plus a validity
//! bitmap and a row count. The engine's value model is NULL-free, so a
//! cleared validity bit does not mean SQL NULL — it marks a slot whose
//! runtime value is *not* of the column's native type (columns are typed
//! by their first row; bag semantics permits later rows to disagree). The
//! actual values of invalid slots live in a row-sorted exception side
//! table, so conversion is lossless in both directions:
//! `to_rows(from_rows(r)) == r` cell for cell, and
//! `from_rows(to_rows(c)) == c`.
//!
//! The vectorized operators in [`crate::exec`] only run their tight typed
//! loops over *clean* columns (all bits set, no exceptions); anything else
//! falls back to the row-at-a-time interpreter, which reads the same
//! values through [`ColumnarRelation::value`] semantics. `Relation`
//! remains the wire, display, and oracle format — columnar storage is an
//! execution-side cache, built on demand by
//! [`Database::columnar`](crate::Database::columnar).

use crate::relation::Relation;
use crate::value::Value;

/// The typed vector behind one column. The variant is the column's
/// *native* type: the type of its first row (`Int` for empty columns).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// Double-precision floats.
    Double(Vec<f64>),
    /// Strings.
    Str(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Push `v` if it matches the native type; `false` means the caller
    /// must record an exception (a placeholder default is pushed instead,
    /// keeping the typed vector densely indexable by row).
    fn push(&mut self, v: &Value) -> bool {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::Double(col), Value::Double(x)) => col.push(*x),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (ColumnData::Bool(col), Value::Bool(x)) => col.push(*x),
            (ColumnData::Int(col), _) => {
                col.push(0);
                return false;
            }
            (ColumnData::Double(col), _) => {
                col.push(0.0);
                return false;
            }
            (ColumnData::Str(col), _) => {
                col.push(String::new());
                return false;
            }
            (ColumnData::Bool(col), _) => {
                col.push(false);
                return false;
            }
        }
        true
    }
}

/// One column: the typed vector, the validity bitmap (`None` = every bit
/// set, the common case), and the exception side table holding the exact
/// values of invalid slots, sorted by row.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
    exceptions: Vec<(usize, Value)>,
    /// Does a valid `Double` slot hold NaN? NaN is incomparable under
    /// [`Value::cmp_sql`], so typed comparison loops must decline.
    has_nan: bool,
}

impl Column {
    fn with_type_of(v: Option<&Value>) -> Self {
        let data = match v {
            Some(Value::Double(_)) => ColumnData::Double(Vec::new()),
            Some(Value::Str(_)) => ColumnData::Str(Vec::new()),
            Some(Value::Bool(_)) => ColumnData::Bool(Vec::new()),
            _ => ColumnData::Int(Vec::new()),
        };
        Column {
            data,
            validity: None,
            exceptions: Vec::new(),
            has_nan: false,
        }
    }

    fn push(&mut self, v: &Value) {
        let row = self.data.len();
        if self.data.push(v) {
            if let Some(bits) = &mut self.validity {
                bits.push(true);
            }
            if matches!(v, Value::Double(d) if d.is_nan()) {
                self.has_nan = true;
            }
        } else {
            let bits = self
                .validity
                .get_or_insert_with(|| vec![true; self.data.len() - 1]);
            bits.push(false);
            self.exceptions.push((row, v.clone()));
        }
    }

    /// Every slot holds a value of the column's native type.
    pub fn is_clean(&self) -> bool {
        self.validity.is_none()
    }

    /// Does any valid `Double` slot hold NaN?
    pub fn has_nan(&self) -> bool {
        self.has_nan
    }

    /// The validity bitmap (`None` = all valid).
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_deref()
    }

    /// Typed view for vectorized kernels: `Some` only when the column is
    /// clean and of the requested type.
    pub fn ints(&self) -> Option<&[i64]> {
        match (&self.data, self.is_clean()) {
            (ColumnData::Int(v), true) => Some(v),
            _ => None,
        }
    }

    /// Clean `Double` slice, or `None`.
    pub fn doubles(&self) -> Option<&[f64]> {
        match (&self.data, self.is_clean()) {
            (ColumnData::Double(v), true) => Some(v),
            _ => None,
        }
    }

    /// Clean `Str` slice, or `None`.
    pub fn strs(&self) -> Option<&[String]> {
        match (&self.data, self.is_clean()) {
            (ColumnData::Str(v), true) => Some(v),
            _ => None,
        }
    }

    /// Clean `Bool` slice, or `None`.
    pub fn bools(&self) -> Option<&[bool]> {
        match (&self.data, self.is_clean()) {
            (ColumnData::Bool(v), true) => Some(v),
            _ => None,
        }
    }

    /// The exact [`Value`] at `row` (exception slots included).
    pub fn value(&self, row: usize) -> Value {
        if let Some(bits) = &self.validity {
            if !bits[row] {
                let i = self
                    .exceptions
                    .binary_search_by_key(&row, |&(r, _)| r)
                    .expect("invalid slot has an exception entry");
                return self.exceptions[i].1.clone();
            }
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Double(v) => Value::Double(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::Bool(v) => Value::Bool(v[row]),
        }
    }
}

/// A relation stored column-wise. See the module docs for the layout and
/// the lossless conversion contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRelation {
    /// Column names, in order (same as [`Relation::columns`]).
    pub columns: Vec<String>,
    cols: Vec<Column>,
    n_rows: usize,
}

impl ColumnarRelation {
    /// Convert a row-major relation. Each column's native type is the type
    /// of its first row (`Int` when the relation is empty); rows of a
    /// different type land in the exception side table.
    pub fn from_rows(rel: &Relation) -> Self {
        let mut cols: Vec<Column> = (0..rel.arity())
            .map(|c| Column::with_type_of(rel.rows.first().map(|r| &r[c])))
            .collect();
        for row in &rel.rows {
            for (c, v) in row.iter().enumerate() {
                cols[c].push(v);
            }
        }
        ColumnarRelation {
            columns: rel.columns.clone(),
            cols,
            n_rows: rel.rows.len(),
        }
    }

    /// Convert back to the row-major wire format (lossless).
    pub fn to_rows(&self) -> Relation {
        let rows = (0..self.n_rows)
            .map(|r| self.cols.iter().map(|c| c.value(r)).collect())
            .collect();
        Relation {
            columns: self.columns.clone(),
            rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The `i`-th column.
    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// The exact [`Value`] at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].value(row)
    }

    /// Materialize one full row (the representative-row path of grouped
    /// vectorized execution).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel_of_ints;

    #[test]
    fn round_trip_int_relation() {
        let rel = rel_of_ints(["a", "b"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let c = ColumnarRelation::from_rows(&rel);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.arity(), 2);
        assert!(c.col(0).is_clean());
        assert_eq!(c.col(1).ints(), Some(&[10i64, 20, 30][..]));
        assert_eq!(c.to_rows(), rel);
        assert_eq!(ColumnarRelation::from_rows(&c.to_rows()), c);
    }

    #[test]
    fn mixed_column_uses_validity_and_exceptions() {
        let rel = Relation::new(
            ["x"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Double(2.5)],
                vec![Value::Int(3)],
                vec![Value::Str("s".into())],
            ],
        );
        let c = ColumnarRelation::from_rows(&rel);
        let col = c.col(0);
        assert!(!col.is_clean());
        assert_eq!(col.validity(), Some(&[true, false, true, false][..]));
        assert!(col.ints().is_none(), "mixed columns expose no typed slice");
        assert_eq!(col.value(1), Value::Double(2.5));
        assert_eq!(col.value(3), Value::Str("s".into()));
        assert_eq!(c.to_rows(), rel);
    }

    #[test]
    fn empty_relation_round_trips() {
        let rel = Relation::empty(["a", "b", "c"]);
        let c = ColumnarRelation::from_rows(&rel);
        assert_eq!(c.n_rows(), 0);
        assert_eq!(c.arity(), 3);
        assert!(c.col(0).is_clean());
        assert_eq!(c.to_rows(), rel);
    }

    #[test]
    fn nan_is_flagged() {
        let rel = Relation::new(
            ["d"],
            vec![vec![Value::Double(1.0)], vec![Value::Double(f64::NAN)]],
        );
        let c = ColumnarRelation::from_rows(&rel);
        assert!(c.col(0).has_nan());
        assert!(c.col(0).is_clean());
    }

    #[test]
    fn typed_slices_require_matching_type() {
        let rel = Relation::new(
            ["s", "b"],
            vec![vec![Value::Str("x".into()), Value::Bool(true)]],
        );
        let c = ColumnarRelation::from_rows(&rel);
        assert_eq!(c.col(0).strs(), Some(&["x".to_string()][..]));
        assert_eq!(c.col(1).bools(), Some(&[true][..]));
        assert!(c.col(0).ints().is_none());
        assert!(c.col(1).doubles().is_none());
    }

    #[test]
    fn row_materializes_exact_values() {
        let rel = Relation::new(["a", "b"], vec![vec![Value::Int(1), Value::Double(0.5)]]);
        let c = ColumnarRelation::from_rows(&rel);
        assert_eq!(c.row(0), vec![Value::Int(1), Value::Double(0.5)]);
    }
}
