//! Synthetic workload generators.
//!
//! * [`telephony`] — the data-warehouse schema of the paper's Example 1.1
//!   (`Customer`, `Calling_Plans`, `Calls`), with configurable
//!   cardinalities. Charges are integer cents so aggregate comparisons stay
//!   exact.
//! * [`random_database`] — small random instances over given schemas, used
//!   by the property tests: every rewriting the engine produces must be
//!   multiset-equivalent to the original query on such instances. Small
//!   value domains force duplicate tuples (exercising multiset semantics)
//!   and join collisions.

use crate::database::Database;
use crate::relation::Relation;
use crate::value::Value;
use aggview_catalog::{Catalog, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the telephony warehouse of Example 1.1.
#[derive(Debug, Clone)]
pub struct TelephonyConfig {
    /// Number of customers.
    pub n_customers: usize,
    /// Number of calling plans.
    pub n_plans: usize,
    /// Number of call records (the fact table the paper calls "huge").
    pub n_calls: usize,
    /// Years covered by the call records.
    pub years: Vec<i64>,
    /// Months per year covered (1..=months).
    pub months: i64,
}

impl Default for TelephonyConfig {
    fn default() -> Self {
        TelephonyConfig {
            n_customers: 100,
            n_plans: 10,
            n_calls: 10_000,
            years: vec![1994, 1995],
            months: 12,
        }
    }
}

/// The catalog for the telephony schema, with the keys the paper declares
/// (underlined columns): `Customer.Cust_Id`, `Calling_Plans.Plan_Id`,
/// `Calls.Call_Id`.
pub fn telephony_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        TableSchema::new(
            "Customer",
            ["Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"],
        )
        .with_key(["Cust_Id"]),
    )
    .expect("fresh catalog");
    cat.add_table(
        TableSchema::new("Calling_Plans", ["Plan_Id", "Plan_Name"]).with_key(["Plan_Id"]),
    )
    .expect("fresh catalog");
    cat.add_table(
        TableSchema::new(
            "Calls",
            [
                "Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge",
            ],
        )
        .with_key(["Call_Id"]),
    )
    .expect("fresh catalog");
    cat
}

/// Generate a telephony warehouse instance. Deterministic in `seed`.
pub fn telephony(cfg: &TelephonyConfig, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    let mut customers = Relation::empty(["Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"]);
    for i in 0..cfg.n_customers {
        customers.push(vec![
            Value::Int(i as i64),
            Value::Str(format!("customer_{i}")),
            Value::Int(200 + (i % 800) as i64),
            Value::Int(1_000_000 + i as i64),
        ]);
    }
    db.insert("Customer", customers);

    let mut plans = Relation::empty(["Plan_Id", "Plan_Name"]);
    for p in 0..cfg.n_plans {
        plans.push(vec![Value::Int(p as i64), Value::Str(format!("plan_{p}"))]);
    }
    db.insert("Calling_Plans", plans);

    let mut calls = Relation::empty([
        "Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge",
    ]);
    for c in 0..cfg.n_calls {
        let year = cfg.years[rng.random_range(0..cfg.years.len())];
        calls.push(vec![
            Value::Int(c as i64),
            Value::Int(rng.random_range(0..cfg.n_customers.max(1)) as i64),
            Value::Int(rng.random_range(0..cfg.n_plans.max(1)) as i64),
            Value::Int(rng.random_range(1..=28)),
            Value::Int(rng.random_range(1..=cfg.months.max(1))),
            Value::Int(year),
            // Integer cents, 1c..$20, so SUMs are exact.
            Value::Int(rng.random_range(1..=2000)),
        ]);
    }
    db.insert("Calls", calls);
    db
}

/// The interpreted natural-numbers table of the paper's footnote 3:
/// one column `k` holding `1..=max` (used by the "expand" rewriting that
/// replicates view rows by their COUNT column).
pub fn nat_table(max: i64) -> Relation {
    let mut rel = Relation::empty(["k"]);
    for k in 1..=max {
        rel.push(vec![Value::Int(k)]);
    }
    rel
}

/// Generate a random instance for each schema in `catalog`: `n_rows` rows
/// per table with integer values drawn from `0..domain`. A small `domain`
/// yields duplicate rows and join hits. Deterministic in `seed`.
///
/// Declared keys are respected by rejecting key-duplicate rows. When the
/// requested `domain` cannot supply `n_rows` distinct key tuples, the draw
/// domain of the *key columns only* widens (doubling on every stall) until
/// the table fills — every table always comes back with exactly `n_rows`
/// rows. Non-key columns keep the narrow domain: duplicates and join
/// collisions there are the point.
pub fn random_database(catalog: &Catalog, n_rows: usize, domain: i64, seed: u64) -> Database {
    random_database_skewed(catalog, n_rows, domain, seed, 0.0)
}

/// One value draw from `0..d`, optionally skewed. `skew = 0` is a plain
/// uniform draw (bit-identical to [`random_database`]'s); `skew > 0`
/// applies a power-law transform `⌊d · u^(1+skew)⌋` (Zipf-ish: the mass
/// piles onto small values — at `skew = 1`, half the draws land in the
/// bottom quarter of the domain).
fn draw_value(rng: &mut StdRng, d: i64, skew: f64) -> i64 {
    if skew <= 0.0 {
        return rng.random_range(0..d);
    }
    let u: f64 = rng.random_range(0.0..1.0);
    ((d as f64 * u.powf(1.0 + skew)) as i64).min(d - 1)
}

/// [`random_database`] with a skew knob for the value distribution (key
/// and non-key columns alike; declared keys still dedup by rejection).
/// `skew = 0` is draw-for-draw identical to [`random_database`]. Used by
/// the sharding bench to produce hot partitioning keys.
pub fn random_database_skewed(
    catalog: &Catalog,
    n_rows: usize,
    domain: i64,
    seed: u64,
    skew: f64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for table in catalog.tables() {
        let mut rel = Relation::empty(table.column_names());
        let keys = table.keys.clone();
        let key_cols: std::collections::HashSet<usize> = keys.iter().flatten().copied().collect();
        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        let mut key_domain = domain.max(1);
        let mut stall = 0usize;
        while rel.len() < n_rows {
            let row: Vec<Value> = (0..table.arity())
                .map(|c| {
                    let d = if key_cols.contains(&c) {
                        key_domain
                    } else {
                        domain.max(1)
                    };
                    Value::Int(draw_value(&mut rng, d, skew))
                })
                .collect();
            if !keys.is_empty() {
                let mut dup = false;
                for key in &keys {
                    let kv: Vec<Value> = key.iter().map(|&i| row[i].clone()).collect();
                    if !seen.insert(kv) {
                        dup = true;
                        break;
                    }
                }
                if dup {
                    stall += 1;
                    if stall >= 20 {
                        key_domain = key_domain.saturating_mul(2);
                        stall = 0;
                    }
                    continue;
                }
            }
            stall = 0;
            rel.push(row);
        }
        db.insert(table.name.clone(), rel);
    }
    db
}

/// Generate a random catalog: 1..=`max_tables` tables `S0`, `S1`, ... with
/// 2..=`max_arity` columns each drawn from a fixed letter pool, no keys
/// (pure bag semantics). Pair with [`random_database`] for instances.
/// Deterministic in `seed`.
pub fn random_catalog(seed: u64, max_tables: usize, max_arity: usize) -> Catalog {
    const POOL: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let n_tables = rng.random_range(1..=max_tables.max(1));
    for t in 0..n_tables {
        let arity = rng.random_range(2..=max_arity.clamp(2, POOL.len()));
        let cols = &POOL[..arity];
        cat.add_table(TableSchema::new(format!("S{t}"), cols.iter().copied()))
            .expect("fresh names");
    }
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use aggview_sql::parse_query;

    #[test]
    fn telephony_respects_config() {
        let cfg = TelephonyConfig {
            n_customers: 5,
            n_plans: 3,
            n_calls: 50,
            years: vec![1995],
            months: 6,
        };
        let db = telephony(&cfg, 7);
        assert_eq!(db.get("Customer").unwrap().len(), 5);
        assert_eq!(db.get("Calling_Plans").unwrap().len(), 3);
        let calls = db.get("Calls").unwrap();
        assert_eq!(calls.len(), 50);
        let month_idx = calls.column_index("Month").unwrap();
        for row in &calls.rows {
            match &row[month_idx] {
                Value::Int(m) => assert!((1..=6).contains(m)),
                other => panic!("month should be int, got {other}"),
            }
        }
    }

    #[test]
    fn telephony_is_deterministic() {
        let cfg = TelephonyConfig::default();
        let a = telephony(&cfg, 42);
        let b = telephony(&cfg, 42);
        assert_eq!(a.get("Calls").unwrap().rows, b.get("Calls").unwrap().rows);
        let c = telephony(&cfg, 43);
        assert_ne!(a.get("Calls").unwrap().rows, c.get("Calls").unwrap().rows);
    }

    #[test]
    fn example_1_1_queries_run() {
        let db = telephony(
            &TelephonyConfig {
                n_calls: 2000,
                ..TelephonyConfig::default()
            },
            1,
        );
        let q = parse_query(
            "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
             GROUP BY Calling_Plans.Plan_Id, Plan_Name",
        )
        .unwrap();
        let out = execute(&q, &db).unwrap();
        assert!(!out.is_empty());
        assert!(out.len() <= 10);
    }

    #[test]
    fn nat_table_contents() {
        let nat = nat_table(5);
        assert_eq!(nat.len(), 5);
        assert_eq!(nat.rows[0], vec![Value::Int(1)]);
        assert_eq!(nat.rows[4], vec![Value::Int(5)]);
        assert!(nat_table(0).is_empty());
    }

    #[test]
    fn random_database_respects_keys() {
        let cat = telephony_catalog();
        let db = random_database(&cat, 30, 10, 3);
        // Calls is keyed on Call_Id with domain 10: the key-column domain
        // widens until all 30 requested rows exist, each with a distinct id.
        let calls = db.get("Calls").unwrap();
        assert_eq!(calls.len(), 30);
        let id_idx = calls.column_index("Call_Id").unwrap();
        let mut ids: Vec<&Value> = calls.rows.iter().map(|r| &r[id_idx]).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), calls.len());
    }

    #[test]
    fn random_database_fills_keyed_tables_past_a_tiny_domain() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("K", ["id", "v"]).with_key(["id"]))
            .unwrap();
        // domain=2 can never supply 500 distinct keys without widening.
        let db = random_database(&cat, 500, 2, 11);
        let k = db.get("K").unwrap();
        assert_eq!(k.len(), 500);
        let mut ids: Vec<&Value> = k.rows.iter().map(|r| &r[0]).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 500, "key column stays duplicate-free");
        // The non-key column keeps the narrow domain.
        assert!(k
            .rows
            .iter()
            .all(|r| matches!(&r[1], Value::Int(x) if (0..2).contains(x))));
    }

    #[test]
    fn random_catalog_is_deterministic_and_bounded() {
        let a = random_catalog(9, 3, 4);
        let b = random_catalog(9, 3, 4);
        assert_eq!(
            a.tables().map(|t| &t.name).collect::<Vec<_>>(),
            b.tables().map(|t| &t.name).collect::<Vec<_>>()
        );
        for t in a.tables() {
            assert!((2..=4).contains(&t.arity()), "{}: {}", t.name, t.arity());
            assert!(t.keys.is_empty());
        }
        assert!(a.tables().count() >= 1 && a.tables().count() <= 3);
    }

    #[test]
    fn skew_zero_is_draw_for_draw_identical() {
        let cat = telephony_catalog();
        let a = random_database(&cat, 40, 8, 21);
        let b = random_database_skewed(&cat, 40, 8, 21, 0.0);
        for t in cat.tables() {
            assert_eq!(
                a.get(&t.name).unwrap().rows,
                b.get(&t.name).unwrap().rows,
                "{} diverges at skew 0",
                t.name
            );
        }
    }

    #[test]
    fn skew_concentrates_mass_on_small_values() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("Bag", ["x"])).unwrap();
        let domain = 256i64;
        let uniform = random_database(&cat, 2000, domain, 13);
        let skewed = random_database_skewed(&cat, 2000, domain, 13, 1.5);
        let bottom_quarter = |db: &Database| {
            db.get("Bag")
                .unwrap()
                .rows
                .iter()
                .filter(|r| matches!(&r[0], Value::Int(x) if *x < domain / 4))
                .count()
        };
        let (u, s) = (bottom_quarter(&uniform), bottom_quarter(&skewed));
        assert!(
            u < 700,
            "uniform draws put {u}/2000 in the bottom quarter (expected ~500)"
        );
        assert!(
            s > 1100,
            "skew 1.5 put only {s}/2000 in the bottom quarter (expected a clear majority)"
        );
        // Values stay in range and the draw stays deterministic.
        assert!(skewed
            .get("Bag")
            .unwrap()
            .rows
            .iter()
            .all(|r| matches!(&r[0], Value::Int(x) if (0..domain).contains(x))));
        let again = random_database_skewed(&cat, 2000, domain, 13, 1.5);
        assert_eq!(
            skewed.get("Bag").unwrap().rows,
            again.get("Bag").unwrap().rows
        );
    }

    #[test]
    fn random_database_without_keys_allows_duplicates() {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("Bag", ["x"])).unwrap();
        let db = random_database(&cat, 100, 2, 5);
        assert_eq!(db.get("Bag").unwrap().len(), 100);
        assert!(db.get("Bag").unwrap().has_duplicates());
    }
}
