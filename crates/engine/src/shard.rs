//! Sharded scatter-gather aggregation: the stable hash partitioner and the
//! paper's partial-aggregate recombination algebra (§4).
//!
//! A [`crate::snapshot::SnapshotCell`]-backed store can be split into N
//! independent shards by hash-partitioning every base table on a designated
//! grouping column. Section 4's multiplicity-recovery identities make the
//! cross-shard merge a *re-aggregation*:
//!
//! | original aggregate | scatter (per shard) | gather (recombination)   |
//! |--------------------|---------------------|--------------------------|
//! | `SUM(e)`           | `SUM(e)`            | SUM of partial SUMs      |
//! | `COUNT(e)`/`COUNT(*)` | `COUNT(...)`     | SUM of partial COUNTs    |
//! | `MIN(e)`           | `MIN(e)`            | MIN of partial MINs      |
//! | `MAX(e)`           | `MAX(e)`            | MAX of partial MAXs      |
//! | `AVG(e)`           | `SUM(e)`, `COUNT(e)` | SUM-of-SUMs / SUM-of-COUNTs (§4.4) |
//!
//! AVG is *not* merged as an average of averages — that is unsound under
//! uneven shard sizes (the counterexample in `tests/paper_examples.rs`); it
//! is recovered through the SUM/COUNT identity instead.
//!
//! When the query groups **by the shard column itself**, hash partitioning
//! guarantees each group lives on exactly one shard, so the gather
//! degenerates to a disjoint union of the per-shard answers ([`GatherPlan::Concat`]).
//! Everything this module cannot prove decomposable (joins, relations with
//! no resolvable shard column, non-grouped column shapes) is reported as
//! [`GatherPlan::Fallback`] and must be evaluated by the caller against the
//! unioned database.

use std::collections::HashMap;

use aggview_catalog::TableSchema;
use aggview_sql::ast::{AggCall, AggFunc, BoolExpr, ColumnRef, Expr, Query, SelectItem, TableRef};

use crate::agg::Accumulator;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::value::{self, Value};

/// Values that decline stable hashing (past the 2^53 exactness edge, or
/// non-finite doubles) are routed to this fixed shard, so routing stays
/// deterministic even where Int/Double twin-key equality breaks down.
pub const FALLBACK_SHARD: usize = 0;

/// 2^53: beyond this an f64 no longer represents every integer exactly, so
/// Int/Double twin keys stop being reliable (same edge `GroupIndex` uses).
const F64_EXACT: f64 = 9007199254740992.0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_tagged(tag: u8, bytes: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[tag]), bytes)
}

/// Stable 64-bit hash of a shard-key value, or `None` when the value
/// declines (see [`FALLBACK_SHARD`]).
///
/// Mirrors the `GroupIndex` cross-type twin-key normalization: `Int(x)` and
/// `Double(x.0)` below 2^53 collapse to the same integer key (so `1` and
/// `1.0` land on the same shard, matching SQL `=`), while values at or past
/// 2^53 and non-finite doubles decline.
pub fn stable_shard_hash(v: &Value) -> Option<u64> {
    match v {
        Value::Int(x) => {
            if (x.unsigned_abs() as f64) < F64_EXACT {
                Some(fnv_tagged(1, &x.to_le_bytes()))
            } else {
                None
            }
        }
        Value::Double(d) => {
            if !d.is_finite() || d.abs() >= F64_EXACT {
                None
            } else if d.fract() == 0.0 {
                // Same bytes as the twin Int key.
                Some(fnv_tagged(1, &(*d as i64).to_le_bytes()))
            } else {
                Some(fnv_tagged(2, &d.to_bits().to_le_bytes()))
            }
        }
        Value::Str(s) => Some(fnv_tagged(3, s.as_bytes())),
        Value::Bool(b) => Some(fnv_tagged(4, &[*b as u8])),
    }
}

/// Which of `shards` shards owns a row whose shard-column value is `v`.
pub fn shard_of_value(v: &Value, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    match stable_shard_hash(v) {
        Some(h) => (h % shards as u64) as usize,
        None => FALLBACK_SHARD,
    }
}

/// The designated partitioning column of a base table: the first column of
/// the first declared key, or column 0 for keyless tables (the qcheck and
/// corpus shapes — their grouping column `A` is column 0).
pub fn shard_column(schema: &TableSchema) -> usize {
    schema
        .keys
        .first()
        .and_then(|k| k.first())
        .copied()
        .unwrap_or(0)
}

/// How to recombine one scatter output column at the gather step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// SUM of partial SUMs (§4: `SUM` distributes over a partition).
    Sum,
    /// SUM of partial COUNTs — partials are `Int` counts, so the merged
    /// value stays `Int`, matching an unsharded `COUNT`.
    SumOfCounts,
    /// MIN of partial MINs.
    Min,
    /// MAX of partial MAXs.
    Max,
}

impl MergeOp {
    fn accumulator(self) -> Accumulator {
        match self {
            MergeOp::Sum | MergeOp::SumOfCounts => Accumulator::new(AggFunc::Sum),
            MergeOp::Min => Accumulator::new(AggFunc::Min),
            MergeOp::Max => Accumulator::new(AggFunc::Max),
        }
    }
}

/// How one original aggregate call reads its merged value out of the slots.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallMerge {
    /// The finished value of slot `i`.
    Slot(usize),
    /// `AVG` recovered via §4.4: finished SUM slot / finished COUNT slot.
    AvgOf { sum: usize, count: usize },
}

/// A fully planned re-aggregation: the partial query to scatter and the
/// recombination recipe for the gather step.
#[derive(Debug, Clone)]
pub struct ReaggPlan {
    /// The partial-aggregate query sent to every shard. Its output is the
    /// group-by columns (aliased `g0..`) followed by one partial aggregate
    /// per slot (aliased `p0..`); HAVING is stripped (re-applied at the
    /// gather, where the merged aggregates are known) and DISTINCT cleared.
    pub scatter: Query,
    /// The original GROUP BY columns (first `group_cols().len()` scatter
    /// output columns).
    group_cols: Vec<ColumnRef>,
    /// Recombination operator per partial slot.
    slots: Vec<MergeOp>,
    /// Original aggregate call → merged-value recipe.
    calls: Vec<(AggCall, CallMerge)>,
}

impl ReaggPlan {
    /// How many partial-aggregate slots the scatter query carries (shared
    /// sub-aggregates — e.g. the SUM under an AVG — are deduplicated).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// The gather strategy for one query against a sharded store.
#[derive(Debug, Clone)]
pub enum GatherPlan {
    /// Each group (or row) lives on exactly one shard: the answer is the
    /// disjoint union of the per-shard answers of the *original* query.
    Concat,
    /// Scatter a partial-aggregate query and re-aggregate at the gather.
    Reaggregate(Box<ReaggPlan>),
    /// Not shard-decomposable; evaluate against the unioned database.
    Fallback(&'static str),
}

/// Does `cref` name `col` of the FROM relation `rel` (respecting an alias)?
/// Public because the serving layer's view-alignment resolver applies
/// the same matching rule when it walks view definitions.
pub fn refers_to(cref: &ColumnRef, rel: &TableRef, col: &str) -> bool {
    cref.column == col
        && match &cref.table {
            None => true,
            Some(q) => q == rel.binding_name() || *q == rel.table,
        }
}

/// Is `cref` one of the GROUP BY columns (matched by name + qualifier)?
fn group_position(cref: &ColumnRef, group_by: &[ColumnRef]) -> Option<usize> {
    group_by.iter().position(|g| {
        g.column == cref.column
            && match (&g.table, &cref.table) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    })
}

fn collect_calls<'a>(e: &'a Expr, out: &mut Vec<&'a AggCall>) {
    match e {
        Expr::Agg(c) => out.push(c),
        Expr::Binary { lhs, rhs, .. } => {
            collect_calls(lhs, out);
            collect_calls(rhs, out);
        }
        Expr::Neg(inner) => collect_calls(inner, out),
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

/// Every column referenced *outside* aggregate arguments must be a GROUP BY
/// column for the re-aggregation plan to be evaluable at the gather.
fn non_grouped_column(e: &Expr, group_by: &[ColumnRef]) -> bool {
    match e {
        Expr::Column(c) => group_position(c, group_by).is_none(),
        Expr::Literal(_) | Expr::Agg(_) => false,
        Expr::Binary { lhs, rhs, .. } => {
            non_grouped_column(lhs, group_by) || non_grouped_column(rhs, group_by)
        }
        Expr::Neg(inner) => non_grouped_column(inner, group_by),
    }
}

fn bool_exprs(b: &BoolExpr) -> Vec<(&Expr, &Expr)> {
    b.conjuncts()
        .iter()
        .filter_map(|c| match c {
            BoolExpr::Cmp { lhs, rhs, .. } => Some((lhs, rhs)),
            BoolExpr::And(..) => None,
        })
        .collect()
}

/// Plan the gather for `q` against a store of partitioned relations.
///
/// `shard_col` resolves a FROM relation name to the *name* of the column it
/// is partitioned on, or `None` when the relation is not partition-aligned
/// (e.g. a view whose groups straddle shards). Base tables always resolve;
/// views resolve recursively at the caller.
pub fn plan_gather(q: &Query, shard_col: &dyn Fn(&str) -> Option<String>) -> GatherPlan {
    if q.from.len() != 1 {
        return GatherPlan::Fallback("multi-relation FROM");
    }
    let rel = &q.from[0];
    let Some(col) = shard_col(&rel.table) else {
        return GatherPlan::Fallback("FROM relation has no shard-aligned column");
    };

    let mut calls: Vec<&AggCall> = Vec::new();
    for item in &q.select {
        collect_calls(&item.expr, &mut calls);
    }
    if let Some(h) = &q.having {
        for (l, r) in bool_exprs(h) {
            collect_calls(l, &mut calls);
            collect_calls(r, &mut calls);
        }
    }
    let has_agg = !calls.is_empty();

    // Grouped on the shard column: every group is wholly on one shard, so
    // per-shard evaluation (including HAVING) is exact and the gather is a
    // disjoint union.
    if q.group_by.iter().any(|c| refers_to(c, rel, &col)) {
        return GatherPlan::Concat;
    }
    // Plain selection/projection: rows partition across shards.
    if q.group_by.is_empty() && !has_agg {
        return GatherPlan::Concat;
    }

    // Re-aggregation. Reject shapes the engine itself would reject (the
    // caller's fallback reproduces the exact error text).
    for item in &q.select {
        if non_grouped_column(&item.expr, &q.group_by) {
            return GatherPlan::Fallback("non-grouped column in SELECT");
        }
    }
    if let Some(h) = &q.having {
        for (l, r) in bool_exprs(h) {
            if non_grouped_column(l, &q.group_by) || non_grouped_column(r, &q.group_by) {
                return GatherPlan::Fallback("non-grouped column in HAVING");
            }
        }
    }

    // One slot per distinct partial aggregate; AVG contributes a SUM and a
    // COUNT slot (shared with any standalone SUM/COUNT over the same arg).
    let mut slots: Vec<(AggCall, MergeOp)> = Vec::new();
    let mut slot_of = |scatter: AggCall, op: MergeOp| -> usize {
        match slots.iter().position(|(c, o)| *c == scatter && *o == op) {
            Some(i) => i,
            None => {
                slots.push((scatter, op));
                slots.len() - 1
            }
        }
    };
    let mut merged_calls: Vec<(AggCall, CallMerge)> = Vec::new();
    for call in calls {
        if merged_calls.iter().any(|(c, _)| c == call) {
            continue;
        }
        let merge = match call.func {
            AggFunc::Sum => CallMerge::Slot(slot_of(call.clone(), MergeOp::Sum)),
            AggFunc::Count => CallMerge::Slot(slot_of(call.clone(), MergeOp::SumOfCounts)),
            AggFunc::Min => CallMerge::Slot(slot_of(call.clone(), MergeOp::Min)),
            AggFunc::Max => CallMerge::Slot(slot_of(call.clone(), MergeOp::Max)),
            AggFunc::Avg => {
                let Some(arg) = call.arg.clone() else {
                    return GatherPlan::Fallback("AVG(*)");
                };
                let sum = slot_of(
                    AggCall {
                        func: AggFunc::Sum,
                        arg: Some(arg.clone()),
                    },
                    MergeOp::Sum,
                );
                let count = slot_of(
                    AggCall {
                        func: AggFunc::Count,
                        arg: Some(arg),
                    },
                    MergeOp::SumOfCounts,
                );
                CallMerge::AvgOf { sum, count }
            }
        };
        merged_calls.push((call.clone(), merge));
    }

    let mut select: Vec<SelectItem> = Vec::with_capacity(q.group_by.len() + slots.len());
    for (i, g) in q.group_by.iter().enumerate() {
        select.push(SelectItem::aliased(
            Expr::Column(g.clone()),
            format!("g{i}"),
        ));
    }
    for (i, (call, _)) in slots.iter().enumerate() {
        select.push(SelectItem::aliased(
            Expr::Agg(call.clone()),
            format!("p{i}"),
        ));
    }
    let scatter = Query {
        distinct: false,
        select,
        from: q.from.clone(),
        where_clause: q.where_clause.clone(),
        group_by: q.group_by.clone(),
        having: None,
    };
    GatherPlan::Reaggregate(Box::new(ReaggPlan {
        scatter,
        group_cols: q.group_by.clone(),
        slots: slots.into_iter().map(|(_, op)| op).collect(),
        calls: merged_calls,
    }))
}

/// Disjoint-union gather: concatenate per-shard answers in shard order,
/// deduplicating globally under `SELECT DISTINCT` (two shards may each hold
/// a row that projects to the same tuple).
pub fn merge_concat(q: &Query, parts: Vec<Relation>) -> Relation {
    let mut out = Relation::empty(q.output_names());
    for part in parts {
        for row in part.rows {
            out.push(row);
        }
    }
    if q.distinct {
        dedup(&mut out);
    }
    out
}

fn dedup(rel: &mut Relation) {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    rel.rows.retain(|r| seen.insert(r.clone()));
}

impl ReaggPlan {
    /// Re-aggregate the per-shard partial answers into the final answer of
    /// the original query `q` (group merge → HAVING → SELECT → DISTINCT).
    ///
    /// Groups come out in first-seen order scanning shard 0, 1, ... — a
    /// permutation of the unsharded first-seen order (multiset-equal, not
    /// byte-equal; callers that need byte equality sort or mask).
    pub fn merge(&self, q: &Query, parts: &[Relation]) -> EngineResult<Relation> {
        let k = self.group_cols.len();
        let width = k + self.slots.len();
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut accs: Vec<Vec<Accumulator>> = Vec::new();
        for part in parts {
            if part.arity() != width {
                return Err(EngineError::TypeError(format!(
                    "partial answer arity {} does not match merge plan width {width}",
                    part.arity()
                )));
            }
            for row in &part.rows {
                let key = row[..k].to_vec();
                let gid = match groups.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = order.len();
                        groups.insert(key.clone(), g);
                        order.push(key);
                        accs.push(self.slots.iter().map(|op| op.accumulator()).collect());
                        g
                    }
                };
                for (j, acc) in accs[gid].iter_mut().enumerate() {
                    acc.update(&row[k + j])?;
                }
            }
        }

        let mut out = Relation::empty(q.output_names());
        'group: for (gid, key) in order.iter().enumerate() {
            let merged: Vec<Value> = accs[gid].iter().map(|a| a.finish()).collect();
            if let Some(h) = &q.having {
                if !self.eval_bool(h, key, &merged)? {
                    continue 'group;
                }
            }
            let mut cells = Vec::with_capacity(q.select.len());
            for item in &q.select {
                cells.push(self.eval_expr(&item.expr, key, &merged)?);
            }
            out.push(cells);
        }
        if q.distinct {
            dedup(&mut out);
        }
        Ok(out)
    }

    fn merged_call(&self, call: &AggCall, merged: &[Value]) -> EngineResult<Value> {
        let Some((_, recipe)) = self.calls.iter().find(|(c, _)| c == call) else {
            return Err(EngineError::TypeError(format!(
                "aggregate {}(...) missing from merge plan",
                call.func
            )));
        };
        match recipe {
            CallMerge::Slot(i) => Ok(merged[*i].clone()),
            CallMerge::AvgOf { sum, count } => {
                let (s, c) = (&merged[*sum], &merged[*count]);
                let (Some(s), Some(c)) = (s.as_f64(), c.as_f64()) else {
                    return Err(EngineError::TypeError(format!(
                        "AVG over non-numeric partials {} / {}",
                        s.type_name(),
                        c.type_name()
                    )));
                };
                // §4.4: AVG = SUM / COUNT; a group exists only if some
                // shard contributed at least one row, so COUNT >= 1.
                Ok(Value::Double(s / c))
            }
        }
    }

    fn eval_expr(&self, e: &Expr, key: &[Value], merged: &[Value]) -> EngineResult<Value> {
        match e {
            Expr::Column(c) => match group_position(c, &self.group_cols) {
                Some(i) => Ok(key[i].clone()),
                None => Err(EngineError::NonGroupedColumn(c.column.clone())),
            },
            Expr::Literal(l) => Ok(value::lit_value(l)),
            Expr::Agg(call) => self.merged_call(call, merged),
            Expr::Binary { lhs, op, rhs } => {
                let l = self.eval_expr(lhs, key, merged)?;
                let r = self.eval_expr(rhs, key, merged)?;
                let res = match op {
                    aggview_sql::ast::ArithOp::Add => value::add(&l, &r),
                    aggview_sql::ast::ArithOp::Sub => value::sub(&l, &r),
                    aggview_sql::ast::ArithOp::Mul => value::mul(&l, &r),
                    aggview_sql::ast::ArithOp::Div => {
                        if r.as_f64() == Some(0.0) {
                            return Err(EngineError::DivisionByZero);
                        }
                        value::div(&l, &r)
                    }
                };
                res.ok_or_else(|| {
                    EngineError::TypeError(format!(
                        "arithmetic on {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })
            }
            Expr::Neg(inner) => {
                let v = self.eval_expr(inner, key, merged)?;
                value::neg(&v)
                    .ok_or_else(|| EngineError::TypeError(format!("negation of {}", v.type_name())))
            }
        }
    }

    fn eval_bool(&self, b: &BoolExpr, key: &[Value], merged: &[Value]) -> EngineResult<bool> {
        match b {
            BoolExpr::And(l, r) => {
                Ok(self.eval_bool(l, key, merged)? && self.eval_bool(r, key, merged)?)
            }
            BoolExpr::Cmp { lhs, op, rhs } => {
                let l = self.eval_expr(lhs, key, merged)?;
                let r = self.eval_expr(rhs, key, merged)?;
                value::compare(&l, *op, &r).ok_or_else(|| {
                    EngineError::TypeError(format!(
                        "comparison of {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_query;

    fn rel(cols: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::new(
            cols.iter().map(|c| c.to_string()),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
    }

    fn plan(sql: &str) -> GatherPlan {
        let q = parse_query(sql).unwrap();
        plan_gather(&q, &|name| (name == "S0").then(|| "A".to_string()))
    }

    // ---- satellite: the Int/Double 2^53 twin-key edge ----

    #[test]
    fn int_and_double_twins_land_on_the_same_shard() {
        for n in [2usize, 3, 4, 7] {
            for x in [0i64, 1, -1, 42, 1 << 40, (1 << 53) - 1] {
                assert_eq!(
                    shard_of_value(&Value::Int(x), n),
                    shard_of_value(&Value::Double(x as f64), n),
                    "Int({x}) and Double({x}.0) must route identically at {n} shards"
                );
            }
        }
    }

    #[test]
    fn twins_are_not_all_on_one_shard() {
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|x| shard_of_value(&Value::Int(x), 4)).collect();
        assert!(hits.len() > 1, "64 keys all hashed to one of 4 shards");
    }

    #[test]
    fn past_2_53_declines_to_the_fallback_shard() {
        let edge = 1i64 << 53;
        for v in [
            Value::Int(edge),
            Value::Int(-edge),
            Value::Int(i64::MAX),
            Value::Double(edge as f64),
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
        ] {
            assert_eq!(shard_of_value(&v, 4), FALLBACK_SHARD, "{v:?}");
            assert!(stable_shard_hash(&v).is_none(), "{v:?} must decline");
        }
        // Just inside the edge both twins still hash (and agree).
        let inside = (1i64 << 53) - 1;
        assert!(stable_shard_hash(&Value::Int(inside)).is_some());
        assert_eq!(
            shard_of_value(&Value::Int(inside), 4),
            shard_of_value(&Value::Double(inside as f64), 4)
        );
    }

    #[test]
    fn hash_is_stable_across_calls_and_types() {
        assert_eq!(
            stable_shard_hash(&Value::Int(7)),
            stable_shard_hash(&Value::Double(7.0))
        );
        assert_ne!(
            stable_shard_hash(&Value::Str("7".into())),
            stable_shard_hash(&Value::Int(7)),
            "strings must not collide with the integer twin-key space by type"
        );
        assert_eq!(shard_of_value(&Value::Int(7), 1), 0);
    }

    // ---- gather planning ----

    #[test]
    fn group_by_shard_column_concats() {
        assert!(matches!(
            plan("SELECT A, SUM(B) FROM S0 GROUP BY A"),
            GatherPlan::Concat
        ));
    }

    #[test]
    fn plain_projection_concats() {
        assert!(matches!(
            plan("SELECT B FROM S0 WHERE B < 3"),
            GatherPlan::Concat
        ));
    }

    #[test]
    fn group_by_other_column_reaggregates() {
        let GatherPlan::Reaggregate(p) = plan("SELECT B, AVG(C) FROM S0 GROUP BY B") else {
            panic!("expected re-aggregation");
        };
        // AVG scatters as SUM + COUNT, never as AVG.
        assert_eq!(p.slots, vec![MergeOp::Sum, MergeOp::SumOfCounts]);
        assert_eq!(p.scatter.group_by.len(), 1);
        assert!(p.scatter.having.is_none());
        let printed = p.scatter.to_string();
        assert!(printed.contains("SUM(C)"), "{printed}");
        assert!(printed.contains("COUNT(C)"), "{printed}");
        assert!(!printed.contains("AVG"), "{printed}");
    }

    #[test]
    fn join_falls_back() {
        let q = parse_query("SELECT S0.A FROM S0, S1 WHERE S0.A = S1.A").unwrap();
        assert!(matches!(
            plan_gather(&q, &|_| Some("A".to_string())),
            GatherPlan::Fallback(_)
        ));
    }

    #[test]
    fn unresolvable_relation_falls_back() {
        assert!(matches!(
            {
                let q = parse_query("SELECT B, SUM(C) FROM V GROUP BY B").unwrap();
                plan_gather(&q, &|_| None)
            },
            GatherPlan::Fallback(_)
        ));
    }

    #[test]
    fn scalar_aggregate_reaggregates_with_no_group_columns() {
        let GatherPlan::Reaggregate(p) = plan("SELECT SUM(B), COUNT(B) FROM S0") else {
            panic!("expected re-aggregation");
        };
        assert!(p.group_cols.is_empty());
        assert_eq!(p.slots, vec![MergeOp::Sum, MergeOp::SumOfCounts]);
    }

    // ---- merge execution ----

    #[test]
    fn reaggregation_matches_global_answer() {
        let q = parse_query("SELECT B, SUM(C), COUNT(C) FROM S0 GROUP BY B").unwrap();
        let GatherPlan::Reaggregate(p) = plan_gather(&q, &|_| Some("A".to_string())) else {
            panic!();
        };
        // Group B=1 straddles both shards: SUM 10+5, COUNT 2+1.
        let shard0 = rel(&["g0", "p0", "p1"], &[&[1, 10, 2], &[2, 7, 1]]);
        let shard1 = rel(&["g0", "p0", "p1"], &[&[1, 5, 1]]);
        let merged = p.merge(&q, &[shard0, shard1]).unwrap();
        assert_eq!(
            merged.rows,
            vec![
                vec![Value::Int(1), Value::Int(15), Value::Int(3)],
                vec![Value::Int(2), Value::Int(7), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn having_applies_to_merged_aggregates_not_partials() {
        let q = parse_query("SELECT B, SUM(C) FROM S0 GROUP BY B HAVING SUM(C) > 12").unwrap();
        let GatherPlan::Reaggregate(p) = plan_gather(&q, &|_| Some("A".to_string())) else {
            panic!();
        };
        // Each partial SUM is <= 12; only the merged SUM (15) passes.
        let shard0 = rel(&["g0", "p0"], &[&[1, 10], &[2, 7]]);
        let shard1 = rel(&["g0", "p0"], &[&[1, 5]]);
        let merged = p.merge(&q, &[shard0, shard1]).unwrap();
        assert_eq!(merged.rows, vec![vec![Value::Int(1), Value::Int(15)]]);
    }
}
