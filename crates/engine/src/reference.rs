//! A deliberately naive reference executor used to validate the optimized
//! engine: full cross product of the `FROM` relations, then a row-at-a-time
//! filter — no join planning, no hash tables, no predicate classification.
//! Slow and obviously correct; the property tests check that
//! [`crate::exec::execute`] agrees with it on random queries and databases.

use crate::database::Database;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::value::{self, Value};
use aggview_sql::ast::{
    AggCall, AggFunc, ArithOp, BoolExpr, CmpOp, ColumnRef, Expr, Literal, Query,
};
use std::collections::HashMap;

/// Execute `query` against `db` the slow, obvious way.
pub fn execute_reference(query: &Query, db: &Database) -> EngineResult<Relation> {
    // Bind occurrences.
    let mut bindings: Vec<(String, &Relation)> = Vec::new();
    for t in &query.from {
        let name = t.binding_name().to_string();
        if bindings.iter().any(|(b, _)| *b == name) {
            return Err(EngineError::DuplicateBinding(name));
        }
        bindings.push((name, db.get(&t.table)?));
    }

    // Full cross product (row index per occurrence), filtered by WHERE.
    let mut rows: Vec<Vec<&Value>> = Vec::new();
    let mut idx = vec![0usize; bindings.len()];
    'outer: loop {
        if bindings.iter().zip(&idx).all(|((_, r), &i)| i < r.len()) {
            let row: Vec<&Value> = bindings
                .iter()
                .zip(&idx)
                .flat_map(|((_, r), &i)| r.rows[i].iter())
                .collect();
            let keep = match &query.where_clause {
                None => true,
                Some(w) => eval_bool(w, &bindings, &row, None)?,
            };
            if keep {
                rows.push(row);
            }
        }
        // Odometer increment; empty relations end immediately.
        for k in (0..bindings.len()).rev() {
            idx[k] += 1;
            if idx[k] < bindings[k].1.len() {
                continue 'outer;
            }
            idx[k] = 0;
            if k == 0 {
                break 'outer;
            }
        }
        if bindings.is_empty() || bindings.iter().any(|(_, r)| r.is_empty()) {
            break;
        }
    }

    let names = query.output_names();
    let grouped = !query.group_by.is_empty()
        || query.having.is_some()
        || query.select.iter().any(|s| s.expr.contains_aggregate());

    let mut out = Relation::empty(names);
    if grouped {
        // Group rows by the GROUP BY values.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (ri, row) in rows.iter().enumerate() {
            let key: Vec<Value> = query
                .group_by
                .iter()
                .map(|c| resolve(c, &bindings, row).cloned())
                .collect::<EngineResult<_>>()?;
            match index.get(&key) {
                Some(&g) => groups[g].1.push(ri),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![ri]));
                }
            }
        }
        for (_, members) in &groups {
            let member_rows: Vec<&Vec<&Value>> = members.iter().map(|&i| &rows[i]).collect();
            if let Some(h) = &query.having {
                if !eval_bool(h, &bindings, member_rows[0], Some(&member_rows))? {
                    continue;
                }
            }
            let mut cells = Vec::with_capacity(query.select.len());
            for item in &query.select {
                cells.push(eval_expr(
                    &item.expr,
                    &bindings,
                    member_rows[0],
                    Some(&member_rows),
                )?);
            }
            out.push(cells);
        }
    } else {
        for row in &rows {
            let mut cells = Vec::with_capacity(query.select.len());
            for item in &query.select {
                cells.push(eval_expr(&item.expr, &bindings, row, None)?);
            }
            out.push(cells);
        }
    }
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        out.rows.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}

fn resolve<'a>(
    c: &ColumnRef,
    bindings: &[(String, &Relation)],
    row: &'a [&'a Value],
) -> EngineResult<&'a Value> {
    let mut offset = 0;
    let mut found: Option<usize> = None;
    for (binding, rel) in bindings {
        match &c.table {
            Some(t) if t == binding => {
                let pos = rel
                    .column_index(&c.column)
                    .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))?;
                return Ok(row[offset + pos]);
            }
            Some(_) => {}
            None => {
                if let Some(pos) = rel.column_index(&c.column) {
                    if found.is_some() {
                        return Err(EngineError::AmbiguousColumn(c.column.clone()));
                    }
                    found = Some(offset + pos);
                }
            }
        }
        offset += rel.arity();
    }
    found
        .map(|i| row[i])
        .ok_or_else(|| EngineError::UnknownColumn(c.to_string()))
}

fn eval_expr(
    e: &Expr,
    bindings: &[(String, &Relation)],
    row: &[&Value],
    group: Option<&[&Vec<&Value>]>,
) -> EngineResult<Value> {
    match e {
        Expr::Column(c) => resolve(c, bindings, row).cloned(),
        Expr::Literal(l) => Ok(lit(l)),
        Expr::Neg(inner) => {
            let v = eval_expr(inner, bindings, row, group)?;
            value::neg(&v).ok_or_else(|| EngineError::TypeError("negation".into()))
        }
        Expr::Binary { lhs, op, rhs } => {
            let a = eval_expr(lhs, bindings, row, group)?;
            let b = eval_expr(rhs, bindings, row, group)?;
            let r = match op {
                ArithOp::Add => value::add(&a, &b),
                ArithOp::Sub => value::sub(&a, &b),
                ArithOp::Mul => value::mul(&a, &b),
                ArithOp::Div => {
                    if matches!(b.as_f64(), Some(d) if d == 0.0) {
                        return Err(EngineError::DivisionByZero);
                    }
                    value::div(&a, &b)
                }
            };
            r.ok_or_else(|| EngineError::TypeError("arithmetic".into()))
        }
        Expr::Agg(call) => {
            let members = group.ok_or(EngineError::MisplacedAggregate)?;
            eval_agg(call, bindings, members)
        }
    }
}

fn eval_agg(
    call: &AggCall,
    bindings: &[(String, &Relation)],
    members: &[&Vec<&Value>],
) -> EngineResult<Value> {
    let values: Vec<Value> = match &call.arg {
        None => vec![Value::Int(0); members.len()],
        Some(arg) => members
            .iter()
            .map(|row| eval_expr(arg, bindings, row, None))
            .collect::<EngineResult<_>>()?,
    };
    let mut acc = crate::agg::Accumulator::new(call.func);
    for v in &values {
        acc.update(v)?;
    }
    // Groups are non-empty by construction.
    debug_assert!(!values.is_empty() || call.func == AggFunc::Count);
    Ok(acc.finish())
}

fn eval_bool(
    b: &BoolExpr,
    bindings: &[(String, &Relation)],
    row: &[&Value],
    group: Option<&[&Vec<&Value>]>,
) -> EngineResult<bool> {
    match b {
        BoolExpr::And(x, y) => {
            Ok(eval_bool(x, bindings, row, group)? && eval_bool(y, bindings, row, group)?)
        }
        BoolExpr::Cmp { lhs, op, rhs } => {
            let a = eval_expr(lhs, bindings, row, group)?;
            let c = eval_expr(rhs, bindings, row, group)?;
            let ord = a.cmp_sql(&c).ok_or_else(|| {
                EngineError::TypeError(format!(
                    "comparison of {} and {}",
                    a.type_name(),
                    c.type_name()
                ))
            })?;
            use std::cmp::Ordering;
            Ok(match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            })
        }
    }
}

fn lit(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::relation::{multiset_eq, rel_of_ints};
    use aggview_sql::parse_query;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R1",
            rel_of_ints(["A", "B"], &[&[1, 10], &[1, 20], &[2, 30], &[2, 30]]),
        );
        db.insert(
            "R2",
            rel_of_ints(["C", "D"], &[&[1, 100], &[2, 200], &[3, 300]]),
        );
        db
    }

    #[test]
    fn agrees_with_engine_on_fixed_queries() {
        let db = db();
        for sql in [
            "SELECT A FROM R1",
            "SELECT A, D FROM R1, R2 WHERE A = C",
            "SELECT A, C FROM R1, R2 WHERE A < C",
            "SELECT A, SUM(B), COUNT(B), MIN(B), MAX(B), AVG(B) FROM R1 GROUP BY A",
            "SELECT A, SUM(B) FROM R1 GROUP BY A HAVING SUM(B) > 40",
            "SELECT DISTINCT A FROM R1",
            "SELECT SUM(B) FROM R1",
            "SELECT A FROM R1 WHERE 1 = 2",
        ] {
            let q = parse_query(sql).unwrap();
            let fast = execute(&q, &db).unwrap();
            let slow = execute_reference(&q, &db).unwrap();
            assert!(multiset_eq(&fast, &slow), "disagreement on `{sql}`");
        }
    }

    #[test]
    fn empty_relation_cross_product() {
        let mut db = db();
        db.insert("E", rel_of_ints(["X"], &[]));
        let q = parse_query("SELECT A, X FROM R1, E").unwrap();
        assert!(execute_reference(&q, &db).unwrap().is_empty());
        assert!(execute(&q, &db).unwrap().is_empty());
    }
}
