//! Dynamically typed values with SQL comparison and arithmetic semantics.

use aggview_sql::ast::{CmpOp, Literal};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A runtime value. The model is NULL-free (see the crate docs).
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }

    /// SQL comparison: numeric types compare numerically across `Int` and
    /// `Double`; strings and booleans compare within their own type.
    /// Returns `None` for incomparable type combinations.
    pub fn cmp_sql(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// A total order usable for sorting and grouping: values are ordered by
    /// type rank first (int < double < string < bool), then within the type
    /// (doubles by IEEE total order). Distinct from [`Value::cmp_sql`] —
    /// `Int(1)` and `Double(1.0)` are *different* grouping keys, just as
    /// they are different values in a column.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Double(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Approximate equality: exact for ints/strings/bools, relative
    /// tolerance `1e-9` (and absolute `1e-9`) for doubles. Used when
    /// comparing query results whose floating-point aggregates may have
    /// been summed in different orders.
    pub fn approx_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Double(a), Value::Double(b)) => {
                let diff = (a - b).abs();
                diff <= 1e-9 || diff <= 1e-9 * a.abs().max(b.abs())
            }
            // An exact-int vs double mismatch (e.g. SUM materialized as int
            // on one side and double on the other) still counts when the
            // numeric values agree.
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                (*a as f64 - b).abs() <= 1e-9 * (*a as f64).abs().max(b.abs()).max(1.0)
            }
            _ => self == other,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Bool(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v:?}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bool(v) => write!(f, "{}", if *v { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The engine's runtime value of an AST literal.
pub fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Apply a comparison operator under SQL semantics ([`Value::cmp_sql`]).
/// Returns `None` for incomparable type combinations (a type error
/// upstream).
pub fn compare(a: &Value, op: CmpOp, b: &Value) -> Option<bool> {
    let ord = a.cmp_sql(b)?;
    Some(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// Numeric addition with int preservation: `Int + Int = Int` (checked,
/// promoting to double on overflow), anything involving a double is double.
pub fn add(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(match x.checked_add(*y) {
            Some(s) => Value::Int(s),
            None => Value::Double(*x as f64 + *y as f64),
        }),
        _ => Some(Value::Double(a.as_f64()? + b.as_f64()?)),
    }
}

/// Numeric subtraction (same promotion rules as [`add`]).
pub fn sub(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(match x.checked_sub(*y) {
            Some(s) => Value::Int(s),
            None => Value::Double(*x as f64 - *y as f64),
        }),
        _ => Some(Value::Double(a.as_f64()? - b.as_f64()?)),
    }
}

/// Numeric multiplication (same promotion rules as [`add`]).
pub fn mul(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(match x.checked_mul(*y) {
            Some(s) => Value::Int(s),
            None => Value::Double(*x as f64 * *y as f64),
        }),
        _ => Some(Value::Double(a.as_f64()? * b.as_f64()?)),
    }
}

/// Division always yields a double (so `SUM(x)/SUM(n)` matches `AVG`
/// exactly); division by zero yields `None` (a runtime error upstream).
pub fn div(a: &Value, b: &Value) -> Option<Value> {
    let d = b.as_f64()?;
    if d == 0.0 {
        return None;
    }
    Some(Value::Double(a.as_f64()? / d))
}

/// Numeric negation.
pub fn neg(a: &Value) -> Option<Value> {
    match a {
        Value::Int(x) => Some(match x.checked_neg() {
            Some(v) => Value::Int(v),
            None => Value::Double(-(*x as f64)),
        }),
        Value::Double(x) => Some(Value::Double(-x)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparison_coerces_numerics() {
        assert_eq!(
            Value::Int(2).cmp_sql(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).cmp_sql(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).cmp_sql(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_separates_types() {
        assert_ne!(Value::Int(1), Value::Double(1.0));
        let mut vs = vec![
            Value::Str("x".into()),
            Value::Int(5),
            Value::Double(2.0),
            Value::Bool(true),
            Value::Int(-3),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(-3),
                Value::Int(5),
                Value::Double(2.0),
                Value::Str("x".into()),
                Value::Bool(true),
            ]
        );
    }

    #[test]
    fn approx_eq_tolerates_fp_noise() {
        let a = Value::Double(0.1 + 0.2);
        let b = Value::Double(0.3);
        assert_ne!(a, b);
        assert!(a.approx_eq(&b));
        assert!(Value::Int(3).approx_eq(&Value::Double(3.0)));
        assert!(!Value::Double(1.0).approx_eq(&Value::Double(1.1)));
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(add(&Value::Int(2), &Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            add(&Value::Int(2), &Value::Double(0.5)),
            Some(Value::Double(2.5))
        );
        assert_eq!(mul(&Value::Int(4), &Value::Int(5)), Some(Value::Int(20)));
        assert_eq!(
            div(&Value::Int(7), &Value::Int(2)),
            Some(Value::Double(3.5))
        );
        assert_eq!(div(&Value::Int(7), &Value::Int(0)), None);
        assert_eq!(add(&Value::Str("x".into()), &Value::Int(1)), None);
    }

    #[test]
    fn int_overflow_promotes_to_double() {
        let big = Value::Int(i64::MAX);
        match add(&big, &Value::Int(1)) {
            // At this magnitude f64 granularity exceeds 2.0, so compare >=.
            Some(Value::Double(v)) => assert!(v >= i64::MAX as f64),
            other => panic!("expected double, got {other:?}"),
        }
    }

    #[test]
    fn neg_works() {
        assert_eq!(neg(&Value::Int(5)), Some(Value::Int(-5)));
        assert_eq!(neg(&Value::Double(2.5)), Some(Value::Double(-2.5)));
        assert_eq!(neg(&Value::Bool(true)), None);
    }

    #[test]
    fn compare_applies_operators() {
        assert_eq!(
            compare(&Value::Int(1), CmpOp::Lt, &Value::Int(2)),
            Some(true)
        );
        assert_eq!(
            compare(&Value::Int(2), CmpOp::Eq, &Value::Double(2.0)),
            Some(true)
        );
        assert_eq!(
            compare(&Value::Str("a".into()), CmpOp::Ne, &Value::Str("b".into())),
            Some(true)
        );
        assert_eq!(
            compare(&Value::Str("a".into()), CmpOp::Lt, &Value::Int(1)),
            None
        );
    }

    #[test]
    fn lit_value_converts_all_variants() {
        assert_eq!(lit_value(&Literal::Int(3)), Value::Int(3));
        assert_eq!(lit_value(&Literal::Double(0.5)), Value::Double(0.5));
        assert_eq!(lit_value(&Literal::Str("s".into())), Value::Str("s".into()));
        assert_eq!(lit_value(&Literal::Bool(true)), Value::Bool(true));
    }

    #[test]
    fn hash_consistent_with_eq_for_doubles() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Double(1.5));
        assert!(set.contains(&Value::Double(1.5)));
        assert!(!set.contains(&Value::Double(1.25)));
        assert!(!set.contains(&Value::Int(1)));
    }
}
