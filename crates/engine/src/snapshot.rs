//! Atomically-swappable immutable snapshots — the engine-level primitive
//! under the shared concurrent store.
//!
//! A [`SnapshotCell`] holds an `Arc` to an immutable value (the serving
//! layer stores a whole database + catalog + view set in one). Readers
//! *pin* the current snapshot with [`SnapshotCell::load`] — a single
//! `Arc` clone under a read lock held for nanoseconds — and then run
//! arbitrarily long rewrites and plans against the pinned value with no
//! lock held at all: a concurrent publish swaps the cell to a new `Arc`
//! without disturbing pinned readers. Writers build the next value
//! off-line and [`SnapshotCell::publish`] it; versions are assigned by
//! the cell and strictly increase, so readers can assert monotonicity.
//!
//! [`StoreStats`] is the matching set of lock-free counters the serving
//! layer exposes through `:stats` / `EXPLAIN`: publish count, schema
//! epoch, and write-batch shape (batches, batched ops, largest batch).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An atomically-swappable `Arc<T>` with a monotonic version counter.
///
/// The lock guards only the pointer swap/clone; no user code ever runs
/// under it. `load` never blocks on a writer building a snapshot (that
/// happens before `publish` is called), only on the pointer store itself.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
    version: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// A cell initially holding `value` at version 0.
    pub fn new(value: T) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(value)),
            version: AtomicU64::new(0),
        }
    }

    /// Pin the current snapshot: one `Arc` clone, after which the caller
    /// holds the snapshot lock-free for as long as it likes.
    pub fn load(&self) -> Arc<T> {
        self.current.read().expect("snapshot cell poisoned").clone()
    }

    /// Publish a new snapshot, returning its version (strictly greater
    /// than every previously returned version).
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let mut slot = self.current.write().expect("snapshot cell poisoned");
        *slot = value;
        // Bumped under the write lock, so versions order exactly like
        // publishes and a reader never sees version N with snapshot N-1.
        self.version.fetch_add(1, Ordering::Release) + 1
    }

    /// The version of the most recently published snapshot (0 = the
    /// initial value, never published over).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// Cumulative counters of one shared store, updated by its writer thread
/// and read lock-free by any session handle.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Snapshots published (write batches that changed the store).
    pub publishes: AtomicU64,
    /// Schema epoch: bumped by every `CREATE TABLE` / `CREATE VIEW`
    /// applied, mirrored into each handle's plan-cache invalidation.
    pub schema_epoch: AtomicU64,
    /// Write batches applied (each batch drains the whole submit queue).
    pub batches: AtomicU64,
    /// Total write statements applied across all batches.
    pub batched_ops: AtomicU64,
    /// Largest single batch observed.
    pub max_batch: AtomicU64,
    /// Total nanoseconds write requests spent queued before the writer
    /// thread picked them up (submit → drain), summed over all requests.
    pub queue_wait_ns: AtomicU64,
    /// Total nanoseconds the writer thread spent applying batches and
    /// publishing snapshots (the store's real write-path cost; a client's
    /// wall-clock write latency is `queue wait + this`).
    pub apply_publish_ns: AtomicU64,
}

impl StoreStats {
    /// Record one applied batch of `ops` write statements.
    pub fn note_batch(&self, ops: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_ops.fetch_add(ops, Ordering::Relaxed);
        self.max_batch.fetch_max(ops, Ordering::Relaxed);
    }

    /// Record one request's time on the submit queue.
    pub fn note_queue_wait(&self, ns: u64) {
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record writer-thread time spent applying + publishing one batch.
    pub fn note_apply_publish(&self, ns: u64) {
        self.apply_publish_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Mean queue wait per batched op, in microseconds.
    pub fn mean_queue_wait_us(&self) -> f64 {
        let ops = self.batched_ops.load(Ordering::Relaxed);
        if ops == 0 {
            0.0
        } else {
            self.queue_wait_ns.load(Ordering::Relaxed) as f64 / ops as f64 / 1_000.0
        }
    }

    /// Mean apply+publish cost per batched op, in microseconds.
    pub fn mean_apply_publish_us(&self) -> f64 {
        let ops = self.batched_ops.load(Ordering::Relaxed);
        if ops == 0 {
            0.0
        } else {
            self.apply_publish_ns.load(Ordering::Relaxed) as f64 / ops as f64 / 1_000.0
        }
    }

    /// Mean ops per batch (0.0 before the first batch).
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.batched_ops.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_pins_across_publish() {
        let cell = SnapshotCell::new(1u32);
        let pinned = cell.load();
        assert_eq!(cell.publish(Arc::new(2)), 1);
        assert_eq!(*pinned, 1, "pinned snapshot survives the swap");
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.version(), 1);
    }

    #[test]
    fn versions_strictly_increase_under_contention() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=500u64 {
                    cell.publish(Arc::new(i));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.version();
                        assert!(v >= last, "version went backwards: {last} -> {v}");
                        last = v;
                        let snap = cell.load();
                        assert!(*snap <= cell.version() as u64);
                    }
                })
            })
            .collect();
        publisher.join().expect("publisher");
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader");
        }
        assert_eq!(cell.version(), 500);
    }

    #[test]
    fn stats_batches() {
        let stats = StoreStats::default();
        stats.note_batch(1);
        stats.note_batch(3);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.batched_ops.load(Ordering::Relaxed), 4);
        assert_eq!(stats.max_batch.load(Ordering::Relaxed), 3);
        assert!((stats.mean_batch() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stats_split_queue_wait_from_apply_publish() {
        let stats = StoreStats::default();
        stats.note_batch(2);
        stats.note_queue_wait(1_000);
        stats.note_queue_wait(3_000);
        stats.note_apply_publish(10_000);
        assert!((stats.mean_queue_wait_us() - 2.0).abs() < 1e-9);
        assert!((stats.mean_apply_publish_us() - 5.0).abs() < 1e-9);
    }
}
