//! Aggregate accumulators.

use crate::error::{EngineError, EngineResult};
use crate::value::{self, Value};
use aggview_sql::AggFunc;

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// `MIN`
    Min(Option<Value>),
    /// `MAX`
    Max(Option<Value>),
    /// `SUM` (int-preserving, promoted to double on demand)
    Sum(Option<Value>),
    /// `COUNT` — rows in the group (the model is NULL-free, so `COUNT(A)`
    /// equals `COUNT(*)`).
    Count(i64),
    /// `AVG` — running double sum and count.
    Avg {
        /// Running sum.
        sum: f64,
        /// Rows seen.
        count: i64,
    },
}

impl Accumulator {
    /// Fresh accumulator for an aggregate function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Sum => Accumulator::Sum(None),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input value into the accumulator. `COUNT` ignores the value.
    pub fn update(&mut self, v: &Value) -> EngineResult<()> {
        match self {
            Accumulator::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => {
                        let ord = v.cmp_sql(c).ok_or_else(|| {
                            EngineError::TypeError(format!(
                                "MIN over mixed types {} and {}",
                                v.type_name(),
                                c.type_name()
                            ))
                        })?;
                        ord == std::cmp::Ordering::Less
                    }
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            Accumulator::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => {
                        let ord = v.cmp_sql(c).ok_or_else(|| {
                            EngineError::TypeError(format!(
                                "MAX over mixed types {} and {}",
                                v.type_name(),
                                c.type_name()
                            ))
                        })?;
                        ord == std::cmp::Ordering::Greater
                    }
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            Accumulator::Sum(cur) => {
                if !matches!(v, Value::Int(_) | Value::Double(_)) {
                    return Err(EngineError::TypeError(format!(
                        "SUM over non-numeric {}",
                        v.type_name()
                    )));
                }
                *cur = Some(match cur.take() {
                    None => v.clone(),
                    Some(acc) => value::add(&acc, v).expect("numeric add"),
                });
            }
            Accumulator::Count(n) => {
                *n += 1;
            }
            Accumulator::Avg { sum, count } => {
                let x = v.as_f64().ok_or_else(|| {
                    EngineError::TypeError(format!("AVG over non-numeric {}", v.type_name()))
                })?;
                *sum += x;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Final value of the accumulator. Groups are never empty (a group
    /// exists only because at least one row fell into it), so `MIN`, `MAX`,
    /// `SUM` and `AVG` always have a value.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Min(v) | Accumulator::Max(v) | Accumulator::Sum(v) => {
                v.clone().expect("aggregate over non-empty group")
            }
            Accumulator::Count(n) => Value::Int(*n),
            Accumulator::Avg { sum, count } => Value::Double(*sum / *count as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, values: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in values {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn min_max() {
        let vs = [Value::Int(5), Value::Int(2), Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vs), Value::Int(2));
        assert_eq!(run(AggFunc::Max, &vs), Value::Int(9));
    }

    #[test]
    fn min_max_across_numeric_types() {
        let vs = [Value::Int(5), Value::Double(2.5)];
        assert_eq!(run(AggFunc::Min, &vs), Value::Double(2.5));
        assert_eq!(run(AggFunc::Max, &vs), Value::Int(5));
    }

    #[test]
    fn min_max_strings() {
        let vs = [Value::Str("pear".into()), Value::Str("apple".into())];
        assert_eq!(run(AggFunc::Min, &vs), Value::Str("apple".into()));
        assert_eq!(run(AggFunc::Max, &vs), Value::Str("pear".into()));
    }

    #[test]
    fn sum_stays_int_when_int() {
        let vs = [Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(run(AggFunc::Sum, &vs), Value::Int(6));
    }

    #[test]
    fn sum_promotes_with_doubles() {
        let vs = [Value::Int(1), Value::Double(0.5)];
        assert_eq!(run(AggFunc::Sum, &vs), Value::Double(1.5));
    }

    #[test]
    fn count_counts_rows() {
        let vs = [Value::Str("a".into()), Value::Str("b".into())];
        assert_eq!(run(AggFunc::Count, &vs), Value::Int(2));
    }

    #[test]
    fn avg_is_double() {
        let vs = [Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFunc::Avg, &vs), Value::Double(1.5));
    }

    #[test]
    fn sum_of_string_errors() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn min_mixed_string_int_errors() {
        let mut acc = Accumulator::new(AggFunc::Min);
        acc.update(&Value::Int(1)).unwrap();
        assert!(acc.update(&Value::Str("x".into())).is_err());
    }
}
