//! A named collection of relations: base tables plus materialized views.

use crate::columnar::ColumnarRelation;
use crate::error::{EngineError, EngineResult};
use crate::index::GroupIndex;
use crate::relation::Relation;
use aggview_catalog::SchemaSource;
use aggview_obs::{CounterId, MetricsRegistry};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A database instance. Materialized views are stored exactly like base
/// tables — the paper's rewritten queries reference them by name in their
/// `FROM` clause.
///
/// A relation may carry a [`GroupIndex`] (grouped views do, when the
/// session enables them). Replacing a relation with [`Database::insert`]
/// drops its index — callers that maintain a relation in place re-attach
/// the maintained index afterwards with [`Database::set_index`].
#[derive(Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    indexes: BTreeMap<String, GroupIndex>,
    /// The observability registry of the owning session or shared store.
    /// Cloning a database (snapshotting) clones the `Arc`, so every
    /// snapshot of a shared store reports into the one store registry.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Lazily built columnar conversions, keyed by relation name. An entry
    /// is dropped whenever its relation is replaced or removed, so a cached
    /// conversion always reflects the stored rows. Interior mutability lets
    /// the read-only execution path populate the cache.
    columnar: Mutex<HashMap<String, Arc<ColumnarRelation>>>,
}

impl Clone for Database {
    /// Cloning (the snapshot operation) starts with an *empty* columnar
    /// cache: entries are rebuilt on first use, so a snapshot can never
    /// observe a conversion the master rebuilt after diverging.
    fn clone(&self) -> Self {
        Database {
            relations: self.relations.clone(),
            indexes: self.indexes.clone(),
            metrics: self.metrics.clone(),
            columnar: Mutex::new(HashMap::new()),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert (or replace) a relation under `name`. Any index on the old
    /// relation is dropped (its row positions are stale).
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        let name = name.into();
        self.indexes.remove(&name);
        self.columnar_cache().remove(&name);
        self.relations.insert(name, relation);
        self
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> EngineResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Does the database contain `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation (e.g. a temporary auxiliary view) and its index.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.indexes.remove(name);
        self.columnar_cache().remove(name);
        self.relations.remove(name)
    }

    /// The columnar conversion of relation `name`, built on first use and
    /// cached until the relation changes. `None` for unknown relations.
    pub fn columnar(&self, name: &str) -> Option<Arc<ColumnarRelation>> {
        let rel = self.relations.get(name)?;
        let mut cache = self.columnar_cache();
        Some(Arc::clone(cache.entry(name.to_string()).or_insert_with(
            || Arc::new(ColumnarRelation::from_rows(rel)),
        )))
    }

    /// The cache guard (a poisoned lock just means a panic mid-build; the
    /// map holds only derived data, so continuing is safe).
    fn columnar_cache(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<ColumnarRelation>>> {
        self.columnar.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attach (or replace) a [`GroupIndex`] for `name`. Debug builds assert
    /// the index is consistent with the stored relation.
    pub fn set_index(&mut self, name: impl Into<String>, index: GroupIndex) -> &mut Self {
        let name = name.into();
        debug_assert!(
            self.relations
                .get(&name)
                .is_some_and(|r| index.is_consistent_with(r)),
            "index inconsistent with relation `{name}`"
        );
        self.indexes.insert(name, index);
        self
    }

    /// The index on `name`, when one is attached.
    pub fn index(&self, name: &str) -> Option<&GroupIndex> {
        self.indexes.get(name)
    }

    /// Detach and return the index on `name` (for in-place maintenance).
    pub fn take_index(&mut self, name: &str) -> Option<GroupIndex> {
        self.indexes.remove(name)
    }

    /// Iterate over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Attach the observability registry events in this database (index
    /// probes, maintenance) should be recorded into.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// Detach the registry (used when a session turns observability off).
    pub fn clear_metrics(&mut self) {
        self.metrics = None;
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Record `n` events on the attached registry (no-op when detached).
    pub fn record(&self, id: CounterId, n: u64) {
        if let Some(m) = &self.metrics {
            m.add(id, n);
        }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl SchemaSource for Database {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.relations.get(name).map(|r| r.columns.clone())
    }
}

/// A [`SchemaSource`] that looks in two sources in order — used to resolve
/// queries that mix base tables (in the catalog) with materialized views
/// (known only by their definitions).
pub struct ChainedSchemas<'a> {
    sources: Vec<&'a dyn SchemaSource>,
}

impl<'a> ChainedSchemas<'a> {
    /// Chain the given sources; earlier sources win.
    pub fn new(sources: Vec<&'a dyn SchemaSource>) -> Self {
        ChainedSchemas { sources }
    }
}

impl SchemaSource for ChainedSchemas<'_> {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.sources.iter().find_map(|s| s.table_columns(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel_of_ints;

    #[test]
    fn insert_and_get() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a"], &[&[1]]));
        assert_eq!(db.get("T").unwrap().len(), 1);
        assert_eq!(
            db.get("U").unwrap_err(),
            EngineError::UnknownTable("U".into())
        );
    }

    #[test]
    fn insert_drops_stale_index() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a", "s"], &[&[1, 5]]));
        let idx = GroupIndex::build(db.get("T").unwrap(), vec![0]);
        db.set_index("T", idx);
        assert!(db.index("T").is_some());
        db.insert("T", rel_of_ints(["a", "s"], &[&[2, 7]]));
        assert!(db.index("T").is_none());
    }

    #[test]
    fn take_index_detaches() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a"], &[&[1]]));
        db.set_index("T", GroupIndex::build(db.get("T").unwrap(), vec![0]));
        assert!(db.take_index("T").is_some());
        assert!(db.index("T").is_none());
    }

    #[test]
    fn columnar_cache_builds_once_and_invalidates_on_write() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a"], &[&[1]]));
        let c1 = db.columnar("T").unwrap();
        assert_eq!(c1.n_rows(), 1);
        assert!(
            Arc::ptr_eq(&c1, &db.columnar("T").unwrap()),
            "second lookup reuses the cached conversion"
        );
        db.insert("T", rel_of_ints(["a"], &[&[1], &[2]]));
        assert_eq!(db.columnar("T").unwrap().n_rows(), 2);
        db.remove("T");
        assert!(db.columnar("T").is_none());
    }

    #[test]
    fn cloned_database_starts_with_a_fresh_columnar_cache() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a"], &[&[1]]));
        let master = db.columnar("T").unwrap();
        let snap = db.clone();
        let from_snap = snap.columnar("T").unwrap();
        assert!(
            !Arc::ptr_eq(&master, &from_snap),
            "snapshots rebuild lazily"
        );
        assert_eq!(*master, *from_snap);
    }

    #[test]
    fn schema_source_impl() {
        let mut db = Database::new();
        db.insert("T", rel_of_ints(["a", "b"], &[]));
        assert_eq!(db.table_columns("T").unwrap(), vec!["a", "b"]);
        assert!(db.table_columns("U").is_none());
    }

    #[test]
    fn chained_schemas_prefer_earlier() {
        let mut db1 = Database::new();
        db1.insert("T", rel_of_ints(["x"], &[]));
        let mut db2 = Database::new();
        db2.insert("T", rel_of_ints(["y"], &[]));
        db2.insert("U", rel_of_ints(["z"], &[]));
        let chained = ChainedSchemas::new(vec![&db1, &db2]);
        assert_eq!(chained.table_columns("T").unwrap(), vec!["x"]);
        assert_eq!(chained.table_columns("U").unwrap(), vec!["z"]);
        assert!(chained.table_columns("V").is_none());
    }
}
