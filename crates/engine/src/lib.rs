//! In-memory multiset (bag) semantics execution engine for `aggview`.
//!
//! The paper's equivalence notion is *multiset equivalence*: two queries are
//! equivalent iff they compute the same multiset of answers on every
//! database. This crate implements exactly that semantics so the rewriting
//! engine's outputs can be validated empirically and benchmarked:
//!
//! * [`value`] — dynamically typed values with SQL comparison semantics,
//! * [`relation`] — multiset relations and multiset equality,
//! * [`database`] — a named collection of base tables and materialized
//!   views,
//! * [`exec`] — evaluation of single-block queries (greedy hash-join
//!   planning over the equality predicates, grouping, aggregation, HAVING,
//!   DISTINCT),
//! * [`agg`] — aggregate accumulators,
//! * [`columnar`] — typed column vectors behind the row-based wire format,
//!   with lossless conversion both ways (the vectorized operators in
//!   [`exec`] run over these),
//! * [`datagen`] — synthetic workloads: the telephony warehouse of the
//!   paper's Example 1.1 and random databases for property testing,
//! * [`snapshot`] — atomically-swappable immutable snapshots and store
//!   counters, the primitive under the shared concurrent serving store.
//!
//! Semantics decisions (documented in `DESIGN.md`):
//! * **No NULLs.** Columns are total; `COUNT(A)` equals the group size.
//! * An aggregation query over an empty input produces **zero rows**, with
//!   or without `GROUP BY` (the paper's queries always group; this keeps
//!   the model NULL-free and is applied uniformly to original and rewritten
//!   queries, so equivalence checking is unaffected).
//! * `/` always produces a double; `AVG` is a double.

pub mod agg;
pub mod columnar;
pub mod database;
pub mod datagen;
pub mod error;
pub mod exec;
pub mod index;
pub mod maintenance;
pub mod reference;
pub mod relation;
pub mod shard;
pub mod snapshot;
pub mod value;

pub use columnar::ColumnarRelation;
pub use database::Database;
pub use error::{EngineError, EngineResult};
pub use exec::{execute, execute_with, PhysicalPlan};
pub use index::GroupIndex;
pub use reference::execute_reference;
pub use relation::{multiset_eq, set_eq, Relation};
pub use snapshot::{SnapshotCell, StoreStats};
pub use value::Value;
