//! Grouped hash indexes on materialized relations.
//!
//! A [`GroupIndex`] maps the values of a fixed set of key columns —
//! typically the exposed `GROUP BY` columns of a materialized view — to
//! the positions of the rows carrying them. The serving path uses it in
//! two places:
//!
//! * **Probing**: a rewritten query whose `WHERE` clause binds every key
//!   column to a constant (the common "point lookup on the summary table"
//!   shape) fetches the matching rows directly instead of scanning the
//!   view (`exec`).
//! * **Maintenance**: the incremental insert path keeps the index in sync
//!   instead of rebuilding a fresh group → row map on every delta batch
//!   (`maintenance`).
//!
//! Grouped views hold one row per key, but the structure stays correct for
//! arbitrary relations: each key maps to *all* rows carrying it.

use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index from key-column values to row positions.
#[derive(Debug, Clone, Default)]
pub struct GroupIndex {
    /// Positions (within the relation's schema) of the key columns.
    key_cols: Vec<usize>,
    /// Key values → positions of the rows carrying them.
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl GroupIndex {
    /// Build an index on `key_cols` over the relation's current rows.
    ///
    /// # Panics
    /// Panics if a key column is out of the relation's arity.
    pub fn build(rel: &Relation, key_cols: Vec<usize>) -> Self {
        assert!(
            key_cols.iter().all(|&c| c < rel.arity()),
            "index key column out of range"
        );
        let mut idx = GroupIndex {
            key_cols,
            map: HashMap::with_capacity(rel.len()),
        };
        for (ri, row) in rel.rows.iter().enumerate() {
            idx.map.entry(idx.key_of(row)).or_default().push(ri);
        }
        idx
    }

    /// The indexed key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The key of a row under this index.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.key_cols.iter().map(|&c| row[c].clone()).collect()
    }

    /// Row positions carrying `key` (empty when absent).
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The unique row position for `key`, when exactly one row carries it
    /// (always the case for a grouped view's key).
    pub fn probe_unique(&self, key: &[Value]) -> Option<usize> {
        match self.probe(key) {
            [ri] => Some(*ri),
            _ => None,
        }
    }

    /// Record a row appended at position `ri`.
    pub fn note_push(&mut self, row: &[Value], ri: usize) {
        self.map.entry(self.key_of(row)).or_default().push(ri);
    }

    /// Rebuild the map from the relation (after deletions shift row
    /// positions). Key columns are unchanged.
    pub fn rebuild(&mut self, rel: &Relation) {
        self.map.clear();
        for (ri, row) in rel.rows.iter().enumerate() {
            self.map.entry(self.key_of(row)).or_default().push(ri);
        }
    }

    /// Is the index consistent with the relation? (Debug/test helper:
    /// every row reachable under its own key, no stale positions.)
    pub fn is_consistent_with(&self, rel: &Relation) -> bool {
        let total: usize = self.map.values().map(|v| v.len()).sum();
        total == rel.len()
            && rel
                .rows
                .iter()
                .enumerate()
                .all(|(ri, row)| self.probe(&self.key_of(row)).contains(&ri))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel_of_ints;

    #[test]
    fn build_and_probe() {
        let rel = rel_of_ints(["a", "b", "s"], &[&[1, 10, 5], &[2, 20, 7], &[1, 30, 9]]);
        let idx = GroupIndex::build(&rel, vec![0]);
        assert_eq!(idx.probe(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[1]);
        assert!(idx.probe(&[Value::Int(3)]).is_empty());
        assert_eq!(idx.probe_unique(&[Value::Int(2)]), Some(1));
        assert_eq!(idx.probe_unique(&[Value::Int(1)]), None);
        assert!(idx.is_consistent_with(&rel));
    }

    #[test]
    fn composite_keys() {
        let rel = rel_of_ints(["a", "b", "s"], &[&[1, 10, 5], &[1, 20, 7]]);
        let idx = GroupIndex::build(&rel, vec![0, 1]);
        assert_eq!(idx.probe_unique(&[Value::Int(1), Value::Int(20)]), Some(1));
        assert!(idx.probe(&[Value::Int(1), Value::Int(30)]).is_empty());
    }

    #[test]
    fn push_and_rebuild_track_mutations() {
        let mut rel = rel_of_ints(["a", "s"], &[&[1, 5]]);
        let mut idx = GroupIndex::build(&rel, vec![0]);
        let row = vec![Value::Int(2), Value::Int(9)];
        rel.push(row.clone());
        idx.note_push(&row, 1);
        assert!(idx.is_consistent_with(&rel));
        rel.rows.remove(0);
        idx.rebuild(&rel);
        assert!(idx.is_consistent_with(&rel));
        assert_eq!(idx.probe_unique(&[Value::Int(2)]), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_validates_key_columns() {
        let rel = rel_of_ints(["a"], &[&[1]]);
        let _ = GroupIndex::build(&rel, vec![1]);
    }
}
