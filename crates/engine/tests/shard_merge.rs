//! Directed tests of the scatter-gather merge algebra (`shard` module):
//! the §4.4 AVG identity against the avg-of-averages trap, empty shards,
//! COUNT recombination after deletions, and error propagation when a
//! partial answer carries a non-comparable value.

use aggview_engine::shard::{plan_gather, shard_of_value, GatherPlan};
use aggview_engine::{execute, multiset_eq, Database, Relation, Value};
use aggview_sql::parse_query;

/// Hash-partition `rows` on column 0 into `n` shard databases holding
/// table `S`, plus the unioned database holding all rows.
fn partition(cols: &[&str], rows: Vec<Vec<Value>>, n: usize) -> (Vec<Database>, Database) {
    let mut parts: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
    for row in &rows {
        parts[shard_of_value(&row[0], n)].push(row.clone());
    }
    let shards = parts
        .into_iter()
        .map(|p| {
            let mut db = Database::new();
            db.insert("S", Relation::new(cols.iter().map(|c| c.to_string()), p));
            db
        })
        .collect();
    let mut union = Database::new();
    union.insert("S", Relation::new(cols.iter().map(|c| c.to_string()), rows));
    (shards, union)
}

fn ints(rows: &[&[i64]]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
        .collect()
}

/// Plan the gather for `sql` over `S` partitioned on column `A`, scatter to
/// the shard databases, merge, and return (merged, unsharded answer).
fn scatter_merge(sql: &str, shards: &[Database], union: &Database) -> (Relation, Relation) {
    let q = parse_query(sql).unwrap();
    let GatherPlan::Reaggregate(plan) =
        plan_gather(&q, &|name| (name == "S").then(|| "A".to_string()))
    else {
        panic!("{sql}: expected a re-aggregation plan");
    };
    let parts: Vec<Relation> = shards
        .iter()
        .map(|db| execute(&plan.scatter, db).unwrap())
        .collect();
    let merged = plan.merge(&q, &parts).unwrap();
    let global = execute(&q, union).unwrap();
    (merged, global)
}

/// §4.4: AVG must be recovered as SUM-of-SUMs / SUM-of-COUNTs. Averaging
/// the per-shard averages is unsound whenever shard sizes differ — this is
/// the counterexample, with the wrong answer computed explicitly.
#[test]
fn avg_merges_by_sum_count_identity_not_avg_of_averages() {
    // One group (B=1) straddling shards: find a key layout where the group's
    // rows split unevenly (1 vs 2) across 2 shards.
    let (k1, k2) = {
        let a = (0..64)
            .find(|&a| shard_of_value(&Value::Int(a), 2) == 0)
            .unwrap();
        let b = (0..64)
            .find(|&b| shard_of_value(&Value::Int(b), 2) == 1)
            .unwrap();
        (a, b)
    };
    // A, B, C: shard 0 holds C=10; shard 1 holds C=20 and C=60.
    let rows = ints(&[&[k1, 1, 10], &[k2, 1, 20], &[k2, 1, 60]]);
    let (shards, union) = partition(&["A", "B", "C"], rows, 2);
    let (merged, global) = scatter_merge("SELECT B, AVG(C) FROM S GROUP BY B", &shards, &union);

    // True AVG = (10 + 20 + 60) / 3 = 30.
    assert!(multiset_eq(&merged, &global), "{merged}\nvs\n{global}");
    assert_eq!(merged.rows[0][1], Value::Double(30.0));

    // Avg-of-averages would give (10/1 + 80/2) / 2 = 25 — wrong.
    let per_shard_avg: Vec<f64> = shards
        .iter()
        .map(|db| {
            let r = execute(
                &parse_query("SELECT B, AVG(C) FROM S GROUP BY B").unwrap(),
                db,
            )
            .unwrap();
            r.rows[0][1].as_f64().unwrap()
        })
        .collect();
    let avg_of_avgs = per_shard_avg.iter().sum::<f64>() / per_shard_avg.len() as f64;
    assert_eq!(avg_of_avgs, 25.0);
    assert_ne!(Value::Double(avg_of_avgs), merged.rows[0][1]);
}

/// Shards that hold no rows of a group (or no rows at all) contribute
/// nothing: empty partial relations must not create empty groups or skew
/// any merged aggregate.
#[test]
fn empty_shards_contribute_nothing() {
    // 4 shards, but all rows share few keys — some shards end up empty.
    let rows = ints(&[&[1, 1, 10], &[1, 2, 20], &[1, 2, 30]]);
    let (shards, union) = partition(&["A", "B", "C"], rows, 4);
    assert!(
        shards.iter().any(|db| db.get("S").unwrap().is_empty()),
        "expected at least one empty shard"
    );
    let (merged, global) = scatter_merge(
        "SELECT B, SUM(C), COUNT(C), MIN(C), MAX(C), AVG(C) FROM S GROUP BY B",
        &shards,
        &union,
    );
    assert!(multiset_eq(&merged, &global), "{merged}\nvs\n{global}");
    assert_eq!(merged.len(), 2);
}

/// COUNT partials are Int counts merged by SUM, so the merged COUNT tracks
/// deletions exactly: removing rows from one shard's partition and
/// re-scattering yields the post-delete global counts (and stays Int).
#[test]
fn count_of_counts_tracks_deleted_rows() {
    let rows = ints(&[&[0, 1, 5], &[1, 1, 6], &[2, 1, 7], &[3, 2, 8], &[4, 2, 9]]);
    let (mut shards, _) = partition(&["A", "B", "C"], rows.clone(), 3);

    // Delete every row with C < 7 from the shard partitions it lives on.
    let keep = |row: &Vec<Value>| row[2].as_f64().unwrap() >= 7.0;
    for db in &mut shards {
        let mut rel = db.remove("S").unwrap();
        rel.rows.retain(&keep);
        db.insert("S", rel);
    }
    let mut union = Database::new();
    union.insert(
        "S",
        Relation::new(
            ["A", "B", "C"].map(String::from),
            rows.into_iter().filter(|r| keep(r)).collect(),
        ),
    );

    let (merged, global) = scatter_merge("SELECT B, COUNT(C) FROM S GROUP BY B", &shards, &union);
    assert!(multiset_eq(&merged, &global), "{merged}\nvs\n{global}");
    for row in &merged.rows {
        assert!(
            matches!(row[1], Value::Int(_)),
            "merged COUNT must stay Int"
        );
    }
    let total: i64 = merged
        .rows
        .iter()
        .map(|r| match r[1] {
            Value::Int(n) => n,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(total, 3, "two of five rows were deleted");
}

/// A NaN in a partial MIN/MAX column is not comparable under SQL semantics;
/// the merge must surface the engine's type error rather than silently
/// picking a winner.
#[test]
fn min_max_merge_propagates_nan_errors() {
    let q = parse_query("SELECT B, MIN(C) FROM S GROUP BY B").unwrap();
    let GatherPlan::Reaggregate(plan) = plan_gather(&q, &|_| Some("A".to_string())) else {
        panic!("expected a re-aggregation plan");
    };
    let cols = ["g0", "p0"].map(String::from);
    let shard0 = Relation::new(cols.clone(), vec![vec![Value::Int(1), Value::Double(2.5)]]);
    let shard1 = Relation::new(
        cols.clone(),
        vec![vec![Value::Int(1), Value::Double(f64::NAN)]],
    );
    let err = plan.merge(&q, &[shard0, shard1]).unwrap_err();
    assert!(
        err.to_string().contains("MIN"),
        "expected a MIN merge error, got: {err}"
    );

    // Same partials under MAX: also an error, not a silent NaN winner.
    let q = parse_query("SELECT B, MAX(C) FROM S GROUP BY B").unwrap();
    let GatherPlan::Reaggregate(plan) = plan_gather(&q, &|_| Some("A".to_string())) else {
        panic!("expected a re-aggregation plan");
    };
    let shard0 = Relation::new(cols.clone(), vec![vec![Value::Int(1), Value::Double(2.5)]]);
    let shard1 = Relation::new(cols, vec![vec![Value::Int(1), Value::Double(f64::NAN)]]);
    assert!(plan.merge(&q, &[shard0, shard1]).is_err());
}

/// A partial relation whose arity does not match the plan is rejected up
/// front (guards against a shard answering a stale scatter query).
#[test]
fn arity_mismatch_is_rejected() {
    let q = parse_query("SELECT B, SUM(C) FROM S GROUP BY B").unwrap();
    let GatherPlan::Reaggregate(plan) = plan_gather(&q, &|_| Some("A".to_string())) else {
        panic!("expected a re-aggregation plan");
    };
    let bad = Relation::new(["g0"].map(String::from), vec![vec![Value::Int(1)]]);
    let err = plan.merge(&q, &[bad]).unwrap_err();
    assert!(err.to_string().contains("arity"), "{err}");
}
