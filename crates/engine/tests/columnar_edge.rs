//! Columnar conversion and vectorized execution at the awkward edges:
//! validity-bitmap round-trips, empty relations, and mixed Int/Double
//! columns packed around the f64 exactness edge (2^53) — the same edge
//! `index_edge.rs` pins for `GroupIndex` probes. The conversion contract
//! is lossless both ways (`to_rows(from_rows(r)) == r` cell for cell and
//! `from_rows(to_rows(c)) == c`), and every query must answer identically
//! under `execute_with(.., true)` and `execute_with(.., false)`.

use aggview_engine::{execute_with, ColumnarRelation, Database, Relation, Value};
use aggview_sql::parse_query;

const EDGE: i64 = 1 << 53; // 9007199254740992

/// The `index_edge.rs` relation: one key column `a` mixing Int and Double
/// values around ±2^53, one Int payload `s` tagging each row.
fn edge_rel() -> Relation {
    Relation::new(
        ["a", "s"],
        vec![
            vec![Value::Int(EDGE - 1), Value::Int(1)],
            vec![Value::Int(EDGE), Value::Int(2)],
            vec![Value::Int(EDGE + 1), Value::Int(3)],
            vec![Value::Double(EDGE as f64), Value::Int(4)],
            vec![Value::Double((EDGE - 1) as f64), Value::Int(5)],
            vec![Value::Int(-(EDGE - 1)), Value::Int(6)],
            vec![Value::Int(-EDGE), Value::Int(7)],
            vec![Value::Int(-(EDGE + 1)), Value::Int(8)],
            vec![Value::Double(-(EDGE as f64)), Value::Int(9)],
        ],
    )
}

/// Run `sql` over `rel` (as table `V`) under both execution modes; assert
/// byte-identical answers and return them.
fn columnar_vs_row(sql: &str, rel: &Relation) -> Relation {
    let q = parse_query(sql).unwrap();
    let mut db = Database::new();
    db.insert("V", rel.clone());
    let row = execute_with(&q, &db, false).unwrap();
    let col = execute_with(&q, &db, true).unwrap();
    assert_eq!(row.rows, col.rows, "row and columnar disagree on {sql}");
    assert_eq!(row.columns, col.columns);
    col
}

#[test]
fn mixed_edge_column_round_trips_losslessly() {
    let rel = edge_rel();
    let c = ColumnarRelation::from_rows(&rel);
    // The first row is Int, so `a` is an Int column with the two Double
    // rows as validity exceptions.
    assert!(!c.col(0).is_clean());
    assert_eq!(
        c.col(0).validity(),
        Some(&[true, true, true, false, false, true, true, true, false][..])
    );
    assert!(c.col(1).is_clean());
    // Exact values survive both directions, 2^53 neighbours included.
    assert_eq!(c.to_rows(), rel);
    assert_eq!(c.value(3, 0), Value::Double(EDGE as f64));
    assert_eq!(c.value(2, 0), Value::Int(EDGE + 1));
    assert_eq!(ColumnarRelation::from_rows(&c.to_rows()), c);
}

#[test]
fn empty_relation_round_trips_and_executes() {
    let rel = Relation::empty(["a", "s"]);
    let c = ColumnarRelation::from_rows(&rel);
    assert_eq!(c.n_rows(), 0);
    assert_eq!(c.arity(), 2);
    assert_eq!(c.to_rows(), rel);
    assert_eq!(ColumnarRelation::from_rows(&c.to_rows()), c);
    for sql in [
        "SELECT s FROM V",
        "SELECT a, SUM(s) FROM V GROUP BY a",
        "SELECT COUNT(s) FROM V",
    ] {
        let out = columnar_vs_row(sql, &rel);
        assert!(out.rows.is_empty(), "{sql} over empty input yields no rows");
    }
}

#[test]
fn validity_bitmap_round_trips_under_interleaving() {
    // Alternating types in one column: every second slot is an exception.
    let rel = Relation::new(
        ["x"],
        (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    vec![Value::Int(i)]
                } else {
                    vec![Value::Str(format!("s{i}"))]
                }
            })
            .collect(),
    );
    let c = ColumnarRelation::from_rows(&rel);
    assert_eq!(
        c.col(0).validity().map(|v| v.to_vec()),
        Some((0..10).map(|i| i % 2 == 0).collect::<Vec<_>>())
    );
    assert_eq!(c.to_rows(), rel);
    assert_eq!(ColumnarRelation::from_rows(&c.to_rows()), c);
}

#[test]
fn edge_filters_match_row_path() {
    let rel = edge_rel();
    // Int literal below, at, and past the edge; Double literal at the
    // edge (which equals BOTH Int(2^53) and Int(2^53 + 1) under f64
    // comparison). The mixed column forces the vectorized path to
    // decline, so this pins the decline-and-match behaviour.
    for sql in [
        format!("SELECT s FROM V WHERE a = {}", EDGE - 1),
        format!("SELECT s FROM V WHERE a = {EDGE}"),
        format!("SELECT s FROM V WHERE a = {}", EDGE + 1),
        format!("SELECT s FROM V WHERE a = {EDGE}.0"),
        format!("SELECT s FROM V WHERE a < {}", -(EDGE - 1)),
        format!("SELECT a, COUNT(s) FROM V WHERE a > 0 GROUP BY a"),
    ] {
        columnar_vs_row(&sql, &rel);
    }
}

#[test]
fn clean_int_payload_vectorizes_at_the_edge() {
    // Aggregating the *payload* groups on a clean Int column holding
    // 2^53-adjacent magnitudes: the vectorized SUM must promote on
    // overflow exactly like the row accumulator, and MIN/MAX must keep
    // exact Int comparisons (no f64 round-trip).
    let rel = Relation::new(
        ["g", "v"],
        vec![
            vec![Value::Int(1), Value::Int(EDGE)],
            vec![Value::Int(1), Value::Int(EDGE + 1)],
            vec![Value::Int(2), Value::Int(-EDGE)],
            vec![Value::Int(2), Value::Int(-(EDGE + 1))],
        ],
    );
    let out = columnar_vs_row(
        "SELECT g, SUM(v), MIN(v), MAX(v), COUNT(v) FROM V GROUP BY g",
        &rel,
    );
    assert_eq!(out.rows.len(), 2);
    // MIN/MAX distinguish 2^53 from 2^53 + 1 — exact Int ordering.
    assert_eq!(out.rows[0][2], Value::Int(EDGE));
    assert_eq!(out.rows[0][3], Value::Int(EDGE + 1));
    assert_eq!(out.rows[1][2], Value::Int(-(EDGE + 1)));
    assert_eq!(out.rows[1][3], Value::Int(-EDGE));
}
