//! `GroupIndex` probe behaviour at the f64 exactness edge (2^53).
//!
//! Index probes cover the numeric cross-type equality of `cmp_sql`
//! (`Int(1) = Double(1.0)`) by also probing a converted "twin" key. The
//! conversion is only exact for magnitudes strictly below 2^53; past the
//! edge the probe must *decline* and fall back to the scan — a naive twin
//! probe there would silently drop rows (e.g. `Int(2^53 + 1)` equals
//! `Double(2^53.0)` under SQL's f64 comparison but has no representable
//! Double twin). Every query here is run twice, unindexed (pure scan) and
//! indexed, and the two result relations must be byte-identical, rows and
//! order included.

use aggview_engine::{execute, Database, GroupIndex, Relation, Value};
use aggview_sql::parse_query;

const EDGE: i64 = 1 << 53; // 9007199254740992

/// One key column `a`, one payload `s` tagging each row, with Int and
/// Double keys packed around ±2^53.
fn edge_db() -> Database {
    let rows = vec![
        vec![Value::Int(EDGE - 1), Value::Int(1)],
        vec![Value::Int(EDGE), Value::Int(2)],
        vec![Value::Int(EDGE + 1), Value::Int(3)],
        vec![Value::Double(EDGE as f64), Value::Int(4)],
        vec![Value::Double((EDGE - 1) as f64), Value::Int(5)],
        vec![Value::Int(-(EDGE - 1)), Value::Int(6)],
        vec![Value::Int(-EDGE), Value::Int(7)],
        vec![Value::Int(-(EDGE + 1)), Value::Int(8)],
        vec![Value::Double(-(EDGE as f64)), Value::Int(9)],
    ];
    let mut db = Database::new();
    db.insert("V", Relation::new(["a", "s"], rows));
    db
}

/// Run `sql` with and without the index; assert byte-identical results and
/// return the payload tags of the answer.
fn probe_vs_scan(sql: &str) -> Vec<i64> {
    let q = parse_query(sql).unwrap();
    let mut db = edge_db();
    let scanned = execute(&q, &db).unwrap();
    db.set_index("V", GroupIndex::build(db.get("V").unwrap(), vec![0]));
    let probed = execute(&q, &db).unwrap();
    assert_eq!(
        scanned.rows, probed.rows,
        "probe and scan disagree on {sql}"
    );
    assert_eq!(scanned.columns, probed.columns);
    probed
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(s) => *s,
            other => panic!("payload must be Int, got {other:?}"),
        })
        .collect()
}

#[test]
fn int_below_edge_probes_with_twin() {
    // 2^53 - 1 is exactly representable: the probe generates the Double
    // twin and must find both the Int and the Double key.
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}", EDGE - 1));
    assert_eq!(tags, vec![1, 5]);
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}", -(EDGE - 1)));
    assert_eq!(tags, vec![6]);
}

#[test]
fn int_at_edge_declines_to_scan() {
    // ±2^53: the twin conversion stops being exact; the probe declines.
    // Int(2^53) equals Double(2^53.0) under cmp_sql's f64 comparison.
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {EDGE}"));
    assert_eq!(tags, vec![2, 4]);
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}", -EDGE));
    assert_eq!(tags, vec![7, 9]);
}

#[test]
fn int_past_edge_declines_to_scan() {
    // ±(2^53 + 1): rounds to 2^53.0 as f64, so it equals the Double key
    // (and the mirrored Int via exact Int comparison stays distinct).
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}", EDGE + 1));
    assert_eq!(tags, vec![3, 4]);
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}", -(EDGE + 1)));
    assert_eq!(tags, vec![8, 9]);
}

#[test]
fn double_literal_at_edge_declines_to_scan() {
    // The case that makes the decline load-bearing: Double(2^53.0) equals
    // BOTH Int(2^53) and Int(2^53 + 1) under f64 comparison. A naive twin
    // probe (`Int(2^53)`) would return tags {2, 4} and silently miss 3.
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {EDGE}.0"));
    assert_eq!(tags, vec![2, 3, 4]);
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = -{EDGE}.0"));
    assert_eq!(tags, vec![7, 8, 9]);
}

#[test]
fn double_below_edge_probes_with_twin() {
    let tags = probe_vs_scan(&format!("SELECT s FROM V WHERE a = {}.0", EDGE - 1));
    assert_eq!(tags, vec![1, 5]);
}
