//! Fault-injection self-test: the harness must catch a deliberately
//! broken usability check. `AGGVIEW_UNSOUND_SKIP_C3` disables both copies
//! of the first half of condition C3 (the view-condition entailment check
//! in `rewrite_conjunctive` and the matching prune inside the mapping
//! search), admitting rewritings over views that filter rows the query
//! needs. The differential oracle must flag a seed in a short scan, and
//! the shrinker must reduce the witness to a tiny case.
//!
//! The flag is read once per process through a `OnceLock`, so this file
//! holds a single `#[test]`: cargo gives each integration-test binary its
//! own process, and setting the variable here cannot leak into any other
//! suite.

use aggview_qcheck::{run_seed, CaseConfig};

#[test]
fn injected_c3_bug_is_caught_and_shrunk() {
    // Must happen before the first rewrite call caches the flag.
    std::env::set_var("AGGVIEW_UNSOUND_SKIP_C3", "1");

    let cfg = CaseConfig::default();
    let failure = (0..50)
        .find_map(|seed| run_seed(seed, &cfg))
        .expect("a 50-seed scan must expose the injected C3 bug");

    assert!(
        matches!(
            failure.discrepancy.kind.as_str(),
            "answer-mismatch" | "rewriting-inequivalent" | "view-content-mismatch"
        ),
        "unexpected discrepancy kind: {}",
        failure.discrepancy
    );
    // The shrinker must drive the witness down to a human-debuggable size.
    assert!(
        failure.shrunk.query_conjuncts() <= 3,
        "shrunk case keeps {} query conjuncts:\n{}",
        failure.shrunk.query_conjuncts(),
        failure.shrunk
    );
    assert!(
        failure.shrunk.total_rows() <= 5,
        "shrunk case keeps {} rows:\n{}",
        failure.shrunk.total_rows(),
        failure.shrunk
    );
    assert_eq!(
        failure.shrunk_discrepancy.kind, failure.discrepancy.kind,
        "shrinking must preserve the failure kind"
    );
}
