//! Deterministic random case generation. Everything derives from a single
//! `u64` seed and never touches the clock: the same seed always yields the
//! same case, on any machine.
//!
//! Builds on the facade's workload generators: [`random_catalog`] /
//! [`random_database`] from `engine::datagen` for schemas and data,
//! `aggview::gen` for queries and views. Views come in two flavours:
//! *embedded* views carved out of the query (usable by construction, so
//! they exercise the rewriting steps S1–S4/S1'–S5'), and *standalone*
//! random views (usually unusable, so they exercise the usability
//! conditions C1–C4 — a checker bug that admits one of these produces a
//! wrong answer the oracle catches).

use crate::case::{Case, TableSpec};
use aggview::gen::{embedded_view, random_query, GenConfig};
use aggview_core::{classify, Canonical, QueryClass, ViewDef};
use aggview_engine::datagen::{random_catalog, random_database};
use aggview_engine::Value;
use aggview_sql::ast::{BoolExpr, CmpOp, ColumnRef, Expr};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Knobs for [`generate`].
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// Maximum number of base tables.
    pub max_tables: usize,
    /// Maximum table arity.
    pub max_arity: usize,
    /// Maximum rows per table.
    pub max_rows: usize,
    /// Maximum number of views.
    pub max_views: usize,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            max_tables: 3,
            max_arity: 4,
            max_rows: 8,
            max_views: 2,
        }
    }
}

/// Generate the case for `seed`.
pub fn generate(seed: u64, cfg: &CaseConfig) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = random_catalog(seed ^ 0xC47A_106D, cfg.max_tables, cfg.max_arity);
    let n_rows = rng.random_range(3..=cfg.max_rows.max(3));
    let domain = rng.random_range(2..=4i64);
    let db = random_database(&catalog, n_rows, domain, rng.random_range(0..u64::MAX));

    // Tables in catalog (name) order, rows lowered back to plain integers.
    let tables: Vec<TableSpec> = catalog
        .tables()
        .map(|t| {
            let rel = db.get(&t.name).expect("generated over catalog");
            TableSpec {
                name: t.name.clone(),
                columns: t.column_names(),
                rows: rel
                    .rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|v| match v {
                                Value::Int(x) => *x,
                                other => panic!("datagen emits ints, got {other}"),
                            })
                            .collect()
                    })
                    .collect(),
            }
        })
        .collect();

    let gen_cfg = GenConfig {
        max_tables: 3,
        max_atoms: 3,
        inequalities: true,
        aggregate_probability: 0.7,
        domain,
    };
    // Bias away from data-independently empty answers: an unsatisfiable
    // query makes every execution path agree on zero rows and tests
    // nothing. A few redraws; an unlucky run keeps the last draw (still a
    // valid case, just a weak one).
    let mut query = random_query(&mut rng, &catalog, &gen_cfg);
    for _ in 0..8 {
        let canon =
            Canonical::from_query(&query, &catalog).expect("generated queries canonicalize");
        if classify(&canon) != QueryClass::Unsatisfiable {
            break;
        }
        query = random_query(&mut rng, &catalog, &gen_cfg);
    }

    let mut views: Vec<ViewDef> = Vec::new();
    let n_views = rng.random_range(0..=cfg.max_views);
    for i in 0..n_views {
        let name = format!("W{i}");
        let view = match rng.random_range(0..10u32) {
            // Embedded: usable by construction, exercises steps S1–S4.
            0..=3 => {
                let aggregated = rng.random_bool(0.5);
                embedded_view(&mut rng, &query, &catalog, &name, aggregated)
            }
            // Near miss: an embedded view *narrowed* by one extra local
            // condition the query does not imply. It passes the structural
            // checks (C1, C2) and must be rejected by exactly C3 — the
            // window a broken implication check silently admits, turning
            // into a wrong (over-filtered) answer the oracle catches.
            4..=6 => {
                let aggregated = rng.random_bool(0.3);
                embedded_view(&mut rng, &query, &catalog, &name, aggregated)
                    .map(|v| narrow_view(&mut rng, v, domain))
            }
            // Standalone: usually unusable, exercises the full C1–C4 gamut.
            _ => {
                let vq = random_query(&mut rng, &catalog, &gen_cfg);
                // A view must canonicalize for the rewriter to consider it.
                Canonical::from_query(&vq, &catalog)
                    .ok()
                    .map(|_| ViewDef::new(name, vq))
            }
        };
        if let Some(v) = view {
            views.push(v);
        }
    }

    Case {
        tables,
        views,
        query,
    }
}

/// Conjoin one extra random local condition (`u{i}.col = c` or
/// `u{i}.col <= c`) onto an embedded view's `WHERE`.
fn narrow_view(rng: &mut StdRng, mut view: ViewDef, domain: i64) -> ViewDef {
    let cols: Vec<ColumnRef> = view
        .query
        .select
        .iter()
        .filter_map(|item| match &item.expr {
            Expr::Column(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    if let Some(col) = cols.choose(rng) {
        let op = if rng.random_bool(0.5) {
            CmpOp::Eq
        } else {
            CmpOp::Le
        };
        let extra = BoolExpr::cmp(
            Expr::Column(col.clone()),
            op,
            Expr::int(rng.random_range(0..domain)),
        );
        let mut atoms: Vec<BoolExpr> = view
            .query
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        atoms.push(extra);
        view.query.where_clause = BoolExpr::conjoin(atoms);
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CaseConfig::default();
        for seed in [0u64, 1, 7, 42, 1000] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn generated_cases_are_well_formed() {
        let cfg = CaseConfig::default();
        for seed in 0..50u64 {
            let case = generate(seed, &cfg);
            assert!(!case.tables.is_empty());
            let cat = case.catalog();
            Canonical::from_query(&case.query, &cat).expect("query canonicalizes");
            for v in &case.views {
                Canonical::from_query(&v.query, &cat).expect("view canonicalizes");
            }
        }
    }

    #[test]
    fn cases_round_trip_through_sql() {
        let cfg = CaseConfig::default();
        for seed in 0..25u64 {
            let case = generate(seed, &cfg);
            let script = case.to_string();
            let back = crate::corpus::parse_case(&script)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{script}"));
            assert_eq!(case, back, "seed {seed} round-trips");
        }
    }
}
