//! The `qcheck` soak CLI.
//!
//! ```text
//! qcheck --seeds 0..500              # differential soak over a seed range
//! qcheck --seeds 0..500 --sessions 2 # same stream, round-robined across
//!                                    # 2 handles of one shared store
//! qcheck --seeds 0..500 --shards 2   # same stream through a 2-way
//!                                    # hash-partitioned scatter-gather store
//! qcheck --seeds 0..500 --write-failures DIR   # persist shrunk failures
//! qcheck --replay tests/corpus       # re-check every corpus case
//! ```
//!
//! Exit code 0 = every checked case agreed on every execution path;
//! 1 = a discrepancy (printed, shrunk, and optionally persisted);
//! 2 = usage error.

use aggview_qcheck::{
    check_case, check_case_sessions, check_case_shards, corpus, run_seed, run_seed_sessions,
    run_seed_shards, CaseConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: Option<std::ops::Range<u64>>,
    replay: Option<PathBuf>,
    write_failures: Option<PathBuf>,
    sessions: Option<usize>,
    shards: Option<usize>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qcheck --seeds A..B [--sessions K | --shards K] [--write-failures DIR]\n       \
         qcheck --replay DIR [--sessions K | --shards K]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: None,
        replay: None,
        write_failures: None,
        sessions: None,
        shards: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or(format!("--seeds wants A..B, got `{v}`"))?;
                let a: u64 = a.parse().map_err(|_| format!("bad seed `{a}`"))?;
                let b: u64 = b.parse().map_err(|_| format!("bad seed `{b}`"))?;
                args.seeds = Some(a..b);
            }
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--write-failures" => {
                args.write_failures = Some(PathBuf::from(value("--write-failures")?))
            }
            "--sessions" => {
                let v = value("--sessions")?;
                let k: usize = v.parse().map_err(|_| format!("bad session count `{v}`"))?;
                if k < 1 {
                    return Err("--sessions wants K >= 1".into());
                }
                args.sessions = Some(k);
            }
            "--shards" => {
                let v = value("--shards")?;
                let k: usize = v.parse().map_err(|_| format!("bad shard count `{v}`"))?;
                if k < 1 {
                    return Err("--shards wants K >= 1".into());
                }
                args.shards = Some(k);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.seeds.is_none() && args.replay.is_none() {
        return Err("one of --seeds or --replay is required".into());
    }
    if args.sessions.is_some() && args.shards.is_some() {
        return Err("--sessions and --shards are separate axes; pick one".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qcheck: {e}");
            return usage();
        }
    };
    let cfg = CaseConfig::default();
    let mut failed = false;

    if let Some(dir) = &args.replay {
        match corpus::load_dir(dir) {
            Ok(cases) => {
                for (name, case) in &cases {
                    let verdict = match (args.sessions, args.shards) {
                        (Some(k), _) => check_case_sessions(case, k),
                        (_, Some(k)) => check_case_shards(case, k),
                        _ => check_case(case),
                    };
                    match verdict {
                        Ok(()) => println!("corpus {name}: ok"),
                        Err(d) => {
                            failed = true;
                            println!("corpus {name}: REGRESSED {d}\n{case}");
                        }
                    }
                }
                println!("replayed {} corpus case(s)", cases.len());
            }
            Err(e) => {
                eprintln!("qcheck: corpus {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }

    if let Some(seeds) = args.seeds.clone() {
        let total = seeds.end.saturating_sub(seeds.start);
        let mut checked = 0u64;
        for seed in seeds {
            let failure = match (args.sessions, args.shards) {
                (Some(k), _) => run_seed_sessions(seed, &cfg, k),
                (_, Some(k)) => run_seed_shards(seed, &cfg, k),
                _ => run_seed(seed, &cfg),
            };
            match failure {
                None => checked += 1,
                Some(f) => {
                    failed = true;
                    println!(
                        "seed {seed}: {}\nshrunk ({} row(s), {} conjunct(s)): {}\n{}",
                        f.discrepancy,
                        f.shrunk.total_rows(),
                        f.shrunk.query_conjuncts(),
                        f.shrunk_discrepancy,
                        f.shrunk
                    );
                    if let Some(dir) = &args.write_failures {
                        let header = format!(
                            "qcheck failure\nseed: {seed}\nkind: {}",
                            f.shrunk_discrepancy.kind
                        );
                        if let Err(e) =
                            corpus::save(dir, &format!("seed{seed}"), &f.shrunk, &header)
                        {
                            eprintln!("qcheck: writing failure: {e}");
                        }
                    }
                }
            }
        }
        println!(
            "checked {checked}/{total} seed(s), {} discrepancy-free",
            checked
        );
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
