//! # aggview-qcheck — the differential & metamorphic correctness harness
//!
//! Random workloads (schemas, bag-semantics data, conjunctive views,
//! single-block aggregation queries over MIN/MAX/SUM/COUNT/AVG with
//! GROUP BY, HAVING, and equality/order predicates), cross-checked
//! against the naive reference interpreter across every engine
//! configuration the serving stack exposes:
//!
//! * plan cache on/off,
//! * grouped-view indexes on/off,
//! * compiled plans vs. the interpreter,
//! * incremental view maintenance vs. full recomputation,
//! * sequential vs. parallel rewrite search,
//! * and every emitted rewriting, executed individually.
//!
//! All checks are deterministic in a single `u64` seed — no wall clock,
//! no global RNG. A failing seed greedily shrinks to a local minimum and
//! can be persisted to (and replayed from) a plain-SQL corpus file; see
//! `tests/corpus/` at the workspace root and the `qcheck` binary for the
//! soak/replay CLI.

pub mod case;
pub mod corpus;
pub mod generate;
pub mod oracle;
pub mod shrink;

pub use case::{Case, TableSpec};
pub use generate::{generate, CaseConfig};
pub use oracle::{check_case, check_case_sessions, check_case_shards, Discrepancy};
pub use shrink::{shrink, shrink_with};

/// A failing seed: the generated case, its shrunk form, and the verdict.
#[derive(Debug)]
pub struct Failure {
    /// The seed that produced the case.
    pub seed: u64,
    /// The discrepancy of the original case.
    pub discrepancy: Discrepancy,
    /// The greedily minimized case (same failure kind).
    pub shrunk: Case,
    /// The discrepancy the shrunk case produces.
    pub shrunk_discrepancy: Discrepancy,
}

/// Check one seed; on failure, shrink and report.
pub fn run_seed(seed: u64, cfg: &CaseConfig) -> Option<Failure> {
    let case = generate(seed, cfg);
    let discrepancy = check_case(&case).err()?;
    let (shrunk, shrunk_discrepancy) = shrink(&case, &discrepancy.kind);
    Some(Failure {
        seed,
        discrepancy,
        shrunk,
        shrunk_discrepancy,
    })
}

/// Check a seed range, stopping at the first failure.
pub fn run_range(seeds: std::ops::Range<u64>, cfg: &CaseConfig) -> Result<u64, Box<Failure>> {
    let mut checked = 0;
    for seed in seeds {
        if let Some(f) = run_seed(seed, cfg) {
            return Err(Box::new(f));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Check one seed through `sessions` handles of a shared store
/// (deterministic round-robin interleaving); on failure, shrink under the
/// same interleaved replay and report.
pub fn run_seed_sessions(seed: u64, cfg: &CaseConfig, sessions: usize) -> Option<Failure> {
    let case = generate(seed, cfg);
    let discrepancy = check_case_sessions(&case, sessions).err()?;
    let (shrunk, shrunk_discrepancy) = shrink_with(&case, &discrepancy.kind, |c| {
        check_case_sessions(c, sessions)
    });
    Some(Failure {
        seed,
        discrepancy,
        shrunk,
        shrunk_discrepancy,
    })
}

/// Check a seed range in multi-session mode, stopping at the first
/// failure.
pub fn run_range_sessions(
    seeds: std::ops::Range<u64>,
    cfg: &CaseConfig,
    sessions: usize,
) -> Result<u64, Box<Failure>> {
    let mut checked = 0;
    for seed in seeds {
        if let Some(f) = run_seed_sessions(seed, cfg, sessions) {
            return Err(Box::new(f));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Check one seed through a `shards`-way hash-partitioned store behind a
/// scatter-gather driver session; on failure, shrink under the same
/// sharded replay and report.
pub fn run_seed_shards(seed: u64, cfg: &CaseConfig, shards: usize) -> Option<Failure> {
    let case = generate(seed, cfg);
    let discrepancy = check_case_shards(&case, shards).err()?;
    let (shrunk, shrunk_discrepancy) =
        shrink_with(&case, &discrepancy.kind, |c| check_case_shards(c, shards));
    Some(Failure {
        seed,
        discrepancy,
        shrunk,
        shrunk_discrepancy,
    })
}

/// Check a seed range in sharded mode, stopping at the first failure.
pub fn run_range_shards(
    seeds: std::ops::Range<u64>,
    cfg: &CaseConfig,
    shards: usize,
) -> Result<u64, Box<Failure>> {
    let mut checked = 0;
    for seed in seeds {
        if let Some(f) = run_seed_shards(seed, cfg, shards) {
            return Err(Box::new(f));
        }
        checked += 1;
    }
    Ok(checked)
}
