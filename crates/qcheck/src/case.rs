//! A self-contained differential test case: schemas, base data, views,
//! and one query, all reconstructible from (and serializable to) a plain
//! SQL script.

use aggview_catalog::{Catalog, TableSchema};
use aggview_core::ViewDef;
use aggview_engine::{Database, Relation, Value};
use aggview_sql::Query;
use std::fmt;

/// One base table: its name, column names, and integer rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Table name (`S0`, `S1`, ...).
    pub name: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Rows; the generator only emits integers so aggregate comparisons
    /// stay exact.
    pub rows: Vec<Vec<i64>>,
}

/// A differential test case. The write protocol the oracle drives (insert
/// the first half of each table, create the views, insert the rest, delete
/// from the first table, then query at each step) is *derived* from this
/// structure, so a case round-trips through its SQL script form.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Base tables with their data.
    pub tables: Vec<TableSpec>,
    /// Materialized view definitions (over base tables only).
    pub views: Vec<ViewDef>,
    /// The query under test.
    pub query: Query,
}

impl Case {
    /// The catalog of the base tables (no keys: pure bag semantics).
    pub fn catalog(&self) -> Catalog {
        let mut cat = Catalog::new();
        for t in &self.tables {
            cat.add_table(TableSchema::new(t.name.clone(), t.columns.iter().cloned()))
                .expect("case tables have unique names");
        }
        cat
    }

    /// A database holding, for each table, its first `split_at(i)` rows
    /// (`halfway = true`) or its final contents after the case's delete
    /// step (`halfway = false`).
    pub fn database(&self, halfway: bool) -> Database {
        let mut db = Database::new();
        for (i, t) in self.tables.iter().enumerate() {
            let rows: Vec<Vec<Value>> = if halfway {
                t.rows[..self.split_at(i)]
                    .iter()
                    .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                    .collect()
            } else {
                t.rows
                    .iter()
                    .filter(|r| !(i == 0 && self.deletes_row(r)))
                    .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                    .collect()
            };
            db.insert(t.name.clone(), Relation::new(t.columns.clone(), rows));
        }
        db
    }

    /// Where table `i`'s rows split into the two insert batches.
    pub fn split_at(&self, i: usize) -> usize {
        self.tables[i].rows.len() / 2
    }

    /// Does the case's delete step (`DELETE FROM <table 0> WHERE
    /// <first column> = 1`) remove this row of table 0?
    pub fn deletes_row(&self, row: &[i64]) -> bool {
        row.first() == Some(&1)
    }

    /// Total number of data rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// Number of `WHERE` conjuncts of the query under test.
    pub fn query_conjuncts(&self) -> usize {
        self.query
            .where_clause
            .as_ref()
            .map_or(0, |w| w.conjuncts().len())
    }
}

impl fmt::Display for Case {
    /// The SQL script form (parseable back into a `Case` by
    /// [`crate::corpus::parse_case`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "CREATE TABLE {} ({});", t.name, t.columns.join(", "))?;
            if !t.rows.is_empty() {
                let rows: Vec<String> = t
                    .rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(|v| v.to_string()).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                writeln!(f, "INSERT INTO {} VALUES {};", t.name, rows.join(", "))?;
            }
        }
        for v in &self.views {
            writeln!(f, "CREATE VIEW {} AS {};", v.name, v.query)?;
        }
        writeln!(f, "{};", self.query)
    }
}
