//! The differential oracle: one case, every execution path, one verdict.
//!
//! The reference answer comes from `engine::reference` — a naive
//! cross-product interpreter with no join planning, no indexes, no
//! rewriting, slow and obviously correct. Everything the production stack
//! can vary is then cross-checked against it:
//!
//! * a **session config lattice** (plan cache on/off × grouped-view
//!   indexes on/off × compiled vs. interpreted plans × delta-maintained
//!   vs. recomputed views × columnar vs. row-at-a-time execution)
//!   replaying the same statement stream, with the
//!   query answered at three points (half the data, after view creation,
//!   after more inserts and a delete) plus a repeated `SELECT` that must
//!   serve from the plan cache without drift;
//! * the final **materialized view contents** of every lattice point,
//!   which must agree with each other and with reference evaluation of
//!   the view definition;
//! * **every emitted rewriting** (not just the chosen one), executed and
//!   compared under the semantics it claims — multiset equality
//!   (Theorem 3.1) in general, set equality for §5 rewritings;
//! * the **parallel search** (`threads = 4`), which must emit the same
//!   rewriting set as the sequential one;
//! * a **display→parse round-trip** of the query and each view.
//!
//! Any disagreement (or a panic anywhere in the stack) is a
//! [`Discrepancy`], tagged with a stable `kind` the shrinker preserves.

use crate::case::Case;
use aggview::run::execute_rewriting;
use aggview::server::SharedStore;
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sharded::ShardedStore;
use aggview::state::WritePolicy;
use aggview_core::{RewriteOptions, Rewriter};
use aggview_engine::{execute_reference, multiset_eq, set_eq, Database, Relation};
use aggview_sql::ast::{BoolExpr, CmpOp, ColumnRef, Expr, Literal};
use aggview_sql::{parse_query, CreateTable, CreateView, Delete, Insert, Statement};
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A cross-check failure: a stable kind (preserved by shrinking) plus a
/// human-readable detail.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// Which oracle check failed (`"answer-mismatch"`, `"roundtrip"`, ...).
    pub kind: String,
    /// What disagreed with what.
    pub detail: String,
}

impl Discrepancy {
    fn new(kind: &str, detail: impl Into<String>) -> Self {
        Discrepancy {
            kind: kind.to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// One point of the session config lattice.
#[derive(Debug, Clone, Copy)]
struct LatticePoint {
    cache: bool,
    index: bool,
    compile: bool,
    recompute: bool,
    columnar: bool,
}

impl LatticePoint {
    fn all() -> Vec<LatticePoint> {
        let mut out = Vec::with_capacity(32);
        for cache in [true, false] {
            for index in [true, false] {
                for compile in [true, false] {
                    for recompute in [true, false] {
                        for columnar in [true, false] {
                            out.push(LatticePoint {
                                cache,
                                index,
                                compile,
                                recompute,
                                columnar,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    fn options(&self) -> SessionOptions {
        SessionOptions {
            plan_cache_cap: if self.cache { 64 } else { 0 },
            index_views: self.index,
            compile_plans: self.compile,
            recompute_views: self.recompute,
            columnar: self.columnar,
            ..SessionOptions::default()
        }
    }
}

impl fmt::Display for LatticePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache={} index={} compile={} recompute={} columnar={}",
            self.cache as u8,
            self.index as u8,
            self.compile as u8,
            self.recompute as u8,
            self.columnar as u8
        )
    }
}

/// Check one case against every oracle. `Ok(())` = all paths agree.
/// Panics anywhere in the stack are converted into a `"panic"`
/// discrepancy, so a soak run survives an engine crash and shrinks it.
pub fn check_case(case: &Case) -> Result<(), Discrepancy> {
    match catch_unwind(AssertUnwindSafe(|| check_case_inner(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(Discrepancy::new("panic", msg.to_string()))
        }
    }
}

fn check_case_inner(case: &Case) -> Result<(), Discrepancy> {
    roundtrip(case)?;

    // Reference answers on both database snapshots.
    let half_db = case.database(true);
    let final_db = case.database(false);
    let expected_half = execute_reference(&case.query, &half_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;
    let expected_final = execute_reference(&case.query, &final_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;

    // Reference contents of each view on the final snapshot (views range
    // over base tables only).
    let expected_views: Vec<Relation> = case
        .views
        .iter()
        .map(|v| {
            execute_reference(&v.query, &final_db)
                .map_err(|e| Discrepancy::new("reference-error", format!("view {}: {e}", v.name)))
        })
        .collect::<Result<_, _>>()?;

    // Replay the statement stream at every lattice point.
    let mut view_contents: Option<(LatticePoint, Vec<Vec<Vec<aggview_engine::Value>>>)> = None;
    for point in LatticePoint::all() {
        let finals = run_lattice_point(case, point, &expected_half, &expected_final)?;
        // Final materialized view contents: equal to the reference
        // evaluation, and identical across lattice points.
        for (i, (got, want)) in finals.iter().zip(&expected_views).enumerate() {
            let got_rel = Relation::new(want.columns.clone(), got.clone());
            if !multiset_eq(&got_rel, want) {
                return Err(Discrepancy::new(
                    "view-content-mismatch",
                    format!(
                        "view {} at [{point}] disagrees with reference evaluation",
                        case.views[i].name
                    ),
                ));
            }
        }
        match &view_contents {
            None => view_contents = Some((point, finals)),
            Some((first, baseline)) => {
                if *baseline != finals {
                    return Err(Discrepancy::new(
                        "config-divergence",
                        format!("materialized views differ between [{first}] and [{point}]"),
                    ));
                }
            }
        }
    }

    check_rewritings(case, &final_db, &expected_final)?;
    check_thread_determinism(case)
}

/// Check one case through K handles of one [`SharedStore`]: the same
/// statement stream, deterministically round-robined across the handles
/// (one driver thread, every write acked before the next statement, so
/// batches have size 1 and the interleaving is identical on every run).
/// The answers must match the same reference expectations the
/// single-session oracle enforces — a handle whose private plan cache
/// survives another handle's DDL, or whose pinned snapshot misses an
/// acked write, shows up as a mismatch. Runs the whole 32-point options
/// lattice; the lattice's write-side axes (index, recompute, columnar)
/// become the store-wide [`WritePolicy`].
pub fn check_case_sessions(case: &Case, sessions: usize) -> Result<(), Discrepancy> {
    assert!(sessions >= 1, "at least one session handle");
    match catch_unwind(AssertUnwindSafe(|| {
        check_case_sessions_inner(case, sessions)
    })) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(Discrepancy::new("panic", msg.to_string()))
        }
    }
}

fn check_case_sessions_inner(case: &Case, sessions: usize) -> Result<(), Discrepancy> {
    let half_db = case.database(true);
    let final_db = case.database(false);
    let expected_half = execute_reference(&case.query, &half_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;
    let expected_final = execute_reference(&case.query, &final_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;
    let expected_views: Vec<Relation> = case
        .views
        .iter()
        .map(|v| {
            execute_reference(&v.query, &final_db)
                .map_err(|e| Discrepancy::new("reference-error", format!("view {}: {e}", v.name)))
        })
        .collect::<Result<_, _>>()?;

    for point in LatticePoint::all() {
        run_lattice_point_sessions(
            case,
            point,
            sessions,
            &expected_half,
            &expected_final,
            &expected_views,
        )?;
    }
    Ok(())
}

/// The statement stream round-robined across K store handles at one
/// lattice point.
fn run_lattice_point_sessions(
    case: &Case,
    point: LatticePoint,
    sessions: usize,
    expected_half: &Relation,
    expected_final: &Relation,
    expected_views: &[Relation],
) -> Result<(), Discrepancy> {
    let fail = |kind: &str, detail: String| {
        Discrepancy::new(
            kind,
            format!("at [{point}] with {sessions} session(s): {detail}"),
        )
    };
    let store = SharedStore::new(WritePolicy {
        index_views: point.index,
        recompute_views: point.recompute,
        columnar: point.columnar,
    });
    let mut handles: Vec<Session> = (0..sessions)
        .map(|_| store.session(point.options()))
        .collect();
    let mut next = 0usize;
    let mut run = |stmt: Statement| {
        let h = next % sessions;
        next += 1;
        handles[h]
            .execute(&stmt)
            .map_err(|e| fail("session-error", format!("handle {h}: {e}")))
    };

    for t in &case.tables {
        run(Statement::CreateTable(CreateTable {
            name: t.name.clone(),
            columns: t.columns.clone(),
            keys: Vec::new(),
        }))?;
    }
    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[..case.split_at(i)])?;
    }
    let a1 = answer(&mut run, case)?;
    compare(&a1, expected_half, "halfway").map_err(|d| fail(&d.kind, d.detail))?;

    for v in &case.views {
        run(Statement::CreateView(CreateView {
            name: v.name.clone(),
            query: v.query.clone(),
        }))?;
    }
    let a2 = answer(&mut run, case)?;
    compare(&a2, expected_half, "post-view").map_err(|d| fail(&d.kind, d.detail))?;

    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[case.split_at(i)..])?;
    }
    let t0 = &case.tables[0];
    run(Statement::Delete(Delete {
        table: t0.name.clone(),
        filter: Some(BoolExpr::cmp(
            Expr::Column(ColumnRef::bare(t0.columns[0].clone())),
            CmpOp::Eq,
            Expr::int(1),
        )),
    }))?;

    let a3 = answer(&mut run, case)?;
    compare(&a3, expected_final, "final").map_err(|d| fail(&d.kind, d.detail))?;

    // Every handle must now answer the final query correctly against the
    // same published state — whatever its private cache did earlier, and
    // regardless of which statements it happened to execute.
    for (h, handle) in handles.iter_mut().enumerate() {
        let outcome = handle
            .execute(&Statement::Select(case.query.clone()))
            .map_err(|e| fail("session-error", format!("handle {h}: {e}")))?;
        let StatementOutcome::Answer {
            relation,
            set_semantics,
            ..
        } = outcome
        else {
            return Err(fail(
                "session-error",
                format!("handle {h}: SELECT produced a non-answer outcome"),
            ));
        };
        compare(
            &Served {
                relation,
                set_semantics,
            },
            expected_final,
            &format!("per-handle final (handle {h})"),
        )
        .map_err(|d| fail(&d.kind, d.detail))?;
    }

    // Cache axis: a repeated select on one handle must serve from its
    // cache (the per-handle final above warmed it).
    if point.cache {
        let before = handles[0].plan_cache().hits();
        handles[0]
            .execute(&Statement::Select(case.query.clone()))
            .map_err(|e| fail("session-error", e.to_string()))?;
        if handles[0].plan_cache().hits() == before {
            return Err(fail(
                "cache-miss",
                "repeated SELECT on handle 0 did not hit its plan cache".into(),
            ));
        }
    }

    // Final materialized view contents on the published snapshot must
    // match the reference evaluation.
    let snap = store.load();
    for (v, want) in case.views.iter().zip(expected_views) {
        let got = snap
            .state
            .db
            .get(&v.name)
            .map_err(|e| fail("session-error", e.to_string()))?;
        let got = Relation::new(want.columns.clone(), got.rows.clone());
        if !multiset_eq(&got, want) {
            return Err(fail(
                "view-content-mismatch",
                format!("view {} disagrees with reference evaluation", v.name),
            ));
        }
    }
    Ok(())
}

/// Check one case against a hash-partitioned store of `shards` shards,
/// driven through one scatter-gather session. The same statement stream
/// and reference expectations as the single-session oracle, plus a
/// **partition-completeness** invariant: after the full write protocol,
/// the per-shard base-table contents must be a disjoint cover of the
/// global contents (their concatenation is multiset-equal to the
/// unsharded final database), and the union-state views must match the
/// reference evaluation. Runs the whole 32-point options lattice; the
/// write-side axes become the per-shard [`WritePolicy`].
pub fn check_case_shards(case: &Case, shards: usize) -> Result<(), Discrepancy> {
    assert!(shards >= 1, "at least one shard");
    match catch_unwind(AssertUnwindSafe(|| check_case_shards_inner(case, shards))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(Discrepancy::new("panic", msg.to_string()))
        }
    }
}

fn check_case_shards_inner(case: &Case, shards: usize) -> Result<(), Discrepancy> {
    let half_db = case.database(true);
    let final_db = case.database(false);
    let expected_half = execute_reference(&case.query, &half_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;
    let expected_final = execute_reference(&case.query, &final_db)
        .map_err(|e| Discrepancy::new("reference-error", e.to_string()))?;
    let expected_views: Vec<Relation> = case
        .views
        .iter()
        .map(|v| {
            execute_reference(&v.query, &final_db)
                .map_err(|e| Discrepancy::new("reference-error", format!("view {}: {e}", v.name)))
        })
        .collect::<Result<_, _>>()?;

    for point in LatticePoint::all() {
        run_lattice_point_shards(
            case,
            point,
            shards,
            &expected_half,
            &expected_final,
            &expected_views,
            &final_db,
        )?;
    }
    Ok(())
}

/// The statement stream through one scatter-gather driver session over a
/// `shards`-way partitioned store, at one lattice point.
fn run_lattice_point_shards(
    case: &Case,
    point: LatticePoint,
    shards: usize,
    expected_half: &Relation,
    expected_final: &Relation,
    expected_views: &[Relation],
    final_db: &Database,
) -> Result<(), Discrepancy> {
    let fail = |kind: &str, detail: String| {
        Discrepancy::new(
            kind,
            format!("at [{point}] with {shards} shard(s): {detail}"),
        )
    };
    let store = ShardedStore::new(
        shards,
        WritePolicy {
            index_views: point.index,
            recompute_views: point.recompute,
            columnar: point.columnar,
        },
    );
    let mut session = store.session(SessionOptions {
        // The scatter-gather path double-checks every merged answer
        // against the union evaluation.
        verify: true,
        ..point.options()
    });
    let mut run = |stmt: Statement| {
        session
            .execute(&stmt)
            .map_err(|e| fail("session-error", e.to_string()))
    };

    for t in &case.tables {
        run(Statement::CreateTable(CreateTable {
            name: t.name.clone(),
            columns: t.columns.clone(),
            keys: Vec::new(),
        }))?;
    }
    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[..case.split_at(i)])?;
    }
    let a1 = answer(&mut run, case)?;
    compare(&a1, expected_half, "halfway").map_err(|d| fail(&d.kind, d.detail))?;

    for v in &case.views {
        run(Statement::CreateView(CreateView {
            name: v.name.clone(),
            query: v.query.clone(),
        }))?;
    }
    let a2 = answer(&mut run, case)?;
    compare(&a2, expected_half, "post-view").map_err(|d| fail(&d.kind, d.detail))?;

    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[case.split_at(i)..])?;
    }
    let t0 = &case.tables[0];
    run(Statement::Delete(Delete {
        table: t0.name.clone(),
        filter: Some(BoolExpr::cmp(
            Expr::Column(ColumnRef::bare(t0.columns[0].clone())),
            CmpOp::Eq,
            Expr::int(1),
        )),
    }))?;

    let a3 = answer(&mut run, case)?;
    compare(&a3, expected_final, "final").map_err(|d| fail(&d.kind, d.detail))?;

    // Repeat: bitwise-stable answer; with the cache on, a cache hit.
    let a4 = answer(&mut run, case)?;
    if a3.relation.sorted_rows() != a4.relation.sorted_rows() {
        return Err(fail(
            "cache-hit-divergence",
            "repeated SELECT changed its answer with no intervening write".into(),
        ));
    }
    if point.cache && session.plan_cache().hits() == 0 {
        return Err(fail(
            "cache-miss",
            "repeated SELECT did not hit the driver plan cache".into(),
        ));
    }

    // Partition completeness: every base table's global contents must be
    // exactly the disjoint union of its per-shard partitions.
    let snaps = store.load_all();
    for t in &case.tables {
        let want = final_db
            .get(&t.name)
            .map_err(|e| fail("session-error", e.to_string()))?;
        let mut got = Relation::empty(want.columns.iter().cloned());
        for snap in &snaps {
            let part = snap
                .state
                .db
                .get(&t.name)
                .map_err(|e| fail("session-error", e.to_string()))?;
            got.rows.extend(part.rows.iter().cloned());
        }
        if !multiset_eq(&got, want) {
            return Err(fail(
                "partition-incomplete",
                format!(
                    "table {}: shard partitions concatenate to {} row(s), global has {}",
                    t.name,
                    got.len(),
                    want.len()
                ),
            ));
        }
    }

    // Union-state views must match the reference evaluation.
    for (v, want) in case.views.iter().zip(expected_views) {
        let got = session
            .database()
            .get(&v.name)
            .map_err(|e| fail("session-error", e.to_string()))?;
        let got = Relation::new(want.columns.clone(), got.rows.clone());
        if !multiset_eq(&got, want) {
            return Err(fail(
                "view-content-mismatch",
                format!("union view {} disagrees with reference evaluation", v.name),
            ));
        }
    }
    Ok(())
}

/// Display→parse round-trip of the query and each view definition.
fn roundtrip(case: &Case) -> Result<(), Discrepancy> {
    let mut targets = vec![("query".to_string(), &case.query)];
    for v in &case.views {
        targets.push((format!("view {}", v.name), &v.query));
    }
    for (what, q) in targets {
        let text = q.to_string();
        match parse_query(&text) {
            Ok(back) if back == *q => {}
            Ok(_) => {
                return Err(Discrepancy::new(
                    "roundtrip",
                    format!("{what} reparses differently: {text}"),
                ))
            }
            Err(e) => {
                return Err(Discrepancy::new(
                    "roundtrip",
                    format!("{what} fails to reparse ({e}): {text}"),
                ))
            }
        }
    }
    Ok(())
}

/// The statement stream at one lattice point. Returns the final sorted
/// rows of each materialized view.
fn run_lattice_point(
    case: &Case,
    point: LatticePoint,
    expected_half: &Relation,
    expected_final: &Relation,
) -> Result<Vec<Vec<Vec<aggview_engine::Value>>>, Discrepancy> {
    let fail =
        |kind: &str, detail: String| Discrepancy::new(kind, format!("at [{point}]: {detail}"));
    let mut session = Session::new(point.options());
    let mut run = |stmt: Statement| {
        session
            .execute(&stmt)
            .map_err(|e| fail("session-error", e.to_string()))
    };

    for t in &case.tables {
        run(Statement::CreateTable(CreateTable {
            name: t.name.clone(),
            columns: t.columns.clone(),
            keys: Vec::new(),
        }))?;
    }
    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[..case.split_at(i)])?;
    }

    // Query at the halfway snapshot (no views yet: base-table serving).
    let a1 = answer(&mut run, case)?;
    compare(&a1, expected_half, "halfway").map_err(|d| fail(&d.kind, d.detail))?;

    for v in &case.views {
        run(Statement::CreateView(CreateView {
            name: v.name.clone(),
            query: v.query.clone(),
        }))?;
    }
    // Same data, now with views in play: the searches run, a rewriting may
    // be chosen, the answer must not move.
    let a2 = answer(&mut run, case)?;
    compare(&a2, expected_half, "post-view").map_err(|d| fail(&d.kind, d.detail))?;

    for (i, t) in case.tables.iter().enumerate() {
        insert(&mut run, &t.name, &t.rows[case.split_at(i)..])?;
    }
    let t0 = &case.tables[0];
    run(Statement::Delete(Delete {
        table: t0.name.clone(),
        filter: Some(BoolExpr::cmp(
            Expr::Column(ColumnRef::bare(t0.columns[0].clone())),
            CmpOp::Eq,
            Expr::int(1),
        )),
    }))?;

    let a3 = answer(&mut run, case)?;
    compare(&a3, expected_final, "final").map_err(|d| fail(&d.kind, d.detail))?;

    // Repeat: with the cache on this must serve the stored plan; either
    // way the answer must be bitwise-stable (sorted) against the previous.
    let a4 = answer(&mut run, case)?;
    if a3.relation.sorted_rows() != a4.relation.sorted_rows() {
        return Err(fail(
            "cache-hit-divergence",
            "repeated SELECT changed its answer with no intervening write".into(),
        ));
    }
    if point.cache && session.plan_cache().hits() == 0 {
        return Err(fail(
            "cache-miss",
            "repeated SELECT did not hit the plan cache".into(),
        ));
    }

    Ok(case
        .views
        .iter()
        .map(|v| {
            session
                .database()
                .get(&v.name)
                .expect("views stay materialized")
                .sorted_rows()
        })
        .collect())
}

/// A served answer plus the semantics it was produced under.
struct Served {
    relation: Relation,
    set_semantics: bool,
}

fn answer(
    run: &mut impl FnMut(Statement) -> Result<StatementOutcome, Discrepancy>,
    case: &Case,
) -> Result<Served, Discrepancy> {
    match run(Statement::Select(case.query.clone()))? {
        StatementOutcome::Answer {
            relation,
            set_semantics,
            ..
        } => Ok(Served {
            relation,
            set_semantics,
        }),
        other => Err(Discrepancy::new(
            "session-error",
            format!("SELECT produced a non-answer outcome: {other:?}"),
        )),
    }
}

fn insert(
    run: &mut impl FnMut(Statement) -> Result<StatementOutcome, Discrepancy>,
    table: &str,
    rows: &[Vec<i64>],
) -> Result<(), Discrepancy> {
    if rows.is_empty() {
        return Ok(());
    }
    run(Statement::Insert(Insert {
        table: table.to_string(),
        rows: rows
            .iter()
            .map(|r| r.iter().map(|&v| Literal::Int(v)).collect())
            .collect(),
    }))?;
    Ok(())
}

fn compare(served: &Served, expected: &Relation, step: &str) -> Result<(), Discrepancy> {
    let eq = if served.set_semantics {
        set_eq(&served.relation, expected)
    } else {
        multiset_eq(&served.relation, expected)
    };
    if eq {
        Ok(())
    } else {
        Err(Discrepancy::new(
            "answer-mismatch",
            format!(
                "{step} answer disagrees with the reference interpreter \
                 (got {} row(s), expected {})",
                served.relation.len(),
                expected.len()
            ),
        ))
    }
}

/// Execute *every* emitted rewriting on the final database and compare
/// with the reference answer under the semantics the rewriting claims.
fn check_rewritings(
    case: &Case,
    final_db: &Database,
    expected: &Relation,
) -> Result<(), Discrepancy> {
    let catalog = case.catalog();
    let rewriter = Rewriter::new(&catalog);
    let rewritings = rewriter
        .rewrite(&case.query, &case.views)
        .map_err(|e| Discrepancy::new("rewrite-error", e.to_string()))?;
    if rewritings.is_empty() {
        return Ok(());
    }
    let mut db = final_db.clone();
    aggview::run::materialize_views(&mut db, &case.views)
        .map_err(|e| Discrepancy::new("engine-error", e.to_string()))?;
    for rw in &rewritings {
        let got = execute_rewriting(rw, &db)
            .map_err(|e| Discrepancy::new("engine-error", format!("{e}: {}", rw.query)))?;
        let eq = if rw.set_semantics {
            set_eq(&got, expected)
        } else {
            multiset_eq(&got, expected)
        };
        if !eq {
            return Err(Discrepancy::new(
                "rewriting-inequivalent",
                format!(
                    "rewriting over {:?} disagrees with the reference interpreter \
                     (got {} row(s), expected {}): {}",
                    rw.views_used,
                    got.len(),
                    expected.len(),
                    rw.query
                ),
            ));
        }
    }
    Ok(())
}

/// The parallel search must emit exactly the sequential rewriting set.
fn check_thread_determinism(case: &Case) -> Result<(), Discrepancy> {
    let catalog = case.catalog();
    let emitted = |threads: usize| -> Result<Vec<String>, Discrepancy> {
        let options = RewriteOptions {
            threads: NonZeroUsize::new(threads),
            ..RewriteOptions::default()
        };
        let rws = Rewriter::with_options(&catalog, options)
            .rewrite(&case.query, &case.views)
            .map_err(|e| Discrepancy::new("rewrite-error", e.to_string()))?;
        let mut texts: Vec<String> = rws.iter().map(|r| r.query.to_string()).collect();
        texts.sort();
        Ok(texts)
    };
    let sequential = emitted(1)?;
    let parallel = emitted(4)?;
    if sequential != parallel {
        return Err(Discrepancy::new(
            "thread-divergence",
            format!(
                "threads=1 emitted {} rewriting(s), threads=4 emitted {}",
                sequential.len(),
                parallel.len()
            ),
        ));
    }
    Ok(())
}
