//! The replayable corpus: failing (later fixed) cases persisted as plain
//! SQL scripts under `tests/corpus/`, re-checked on every CI run so a
//! fixed bug stays fixed.
//!
//! A corpus file is the [`Case`]'s `Display` form — `CREATE TABLE`s,
//! `INSERT`s, `CREATE VIEW`s, and the final `SELECT` — optionally
//! preceded by `--` comment lines carrying provenance (seed, failure
//! kind). Comments are stripped before parsing, so the files are also
//! valid input for the `aggview` CLI.

use crate::case::{Case, TableSpec};
use aggview_core::ViewDef;
use aggview_sql::ast::Literal;
use aggview_sql::{parse_script, Statement};
use std::path::Path;

/// Parse a corpus script back into a [`Case`].
pub fn parse_case(script: &str) -> Result<Case, String> {
    let body: String = script
        .lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    let stmts = parse_script(&body).map_err(|e| e.to_string())?;
    let mut tables: Vec<TableSpec> = Vec::new();
    let mut views: Vec<ViewDef> = Vec::new();
    let mut query = None;
    for stmt in stmts {
        match stmt {
            Statement::CreateTable(ct) => tables.push(TableSpec {
                name: ct.name,
                columns: ct.columns,
                rows: Vec::new(),
            }),
            Statement::Insert(ins) => {
                let t = tables
                    .iter_mut()
                    .find(|t| t.name == ins.table)
                    .ok_or_else(|| format!("INSERT into unknown table `{}`", ins.table))?;
                for row in ins.rows {
                    let vals = row
                        .iter()
                        .map(|l| match l {
                            Literal::Int(v) => Ok(*v),
                            other => Err(format!("corpus rows are integers, got {other:?}")),
                        })
                        .collect::<Result<Vec<i64>, String>>()?;
                    t.rows.push(vals);
                }
            }
            Statement::CreateView(cv) => views.push(ViewDef::new(cv.name, cv.query)),
            Statement::Select(q) => {
                if query.replace(q).is_some() {
                    return Err("corpus case must contain exactly one SELECT".into());
                }
            }
            other => return Err(format!("unexpected statement in corpus case: {other:?}")),
        }
    }
    Ok(Case {
        tables,
        views,
        query: query.ok_or("corpus case has no SELECT")?,
    })
}

/// Load every `.sql` case under `dir`, in file-name order. Returns
/// `(file name, case)` pairs; a missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Case)>, String> {
    let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sql"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let case = parse_case(&text).map_err(|e| format!("{name}: {e}"))?;
            Ok((name, case))
        })
        .collect()
}

/// Write a case to `dir/<stem>.sql` with a provenance header.
pub fn save(dir: &Path, stem: &str, case: &Case, header: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut text = String::new();
    for line in header.lines() {
        text.push_str("-- ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&case.to_string());
    std::fs::write(dir.join(format!("{stem}.sql")), text)
}
