//! Greedy shrinking of a failing case.
//!
//! Starting from a failure, repeatedly try single structural edits — drop
//! a view, a `WHERE` conjunct (query or view side), the `HAVING` clause,
//! an aggregate output, a grouping column, the `DISTINCT` flag, or a data
//! row — and keep any edit after which [`check_case`] still fails with
//! the *same kind*. Terminates at a local minimum: no single edit
//! preserves the failure. Deterministic (edits are tried in a fixed
//! order) and bounded (every accepted edit strictly shrinks the case).

use crate::case::Case;
use crate::oracle::{check_case, Discrepancy};
use aggview_sql::ast::{BoolExpr, Expr, Query, SelectItem};

/// Shrink `case`, preserving failure `kind`. Returns the minimized case
/// and the discrepancy it still produces.
pub fn shrink(case: &Case, kind: &str) -> (Case, Discrepancy) {
    shrink_with(case, kind, check_case)
}

/// [`shrink`] against an arbitrary checker — the multi-session oracle
/// shrinks with its own interleaved replay, so the minimized case still
/// fails *under interleaving*, not just single-session.
pub fn shrink_with(
    case: &Case,
    kind: &str,
    check: impl Fn(&Case) -> Result<(), Discrepancy>,
) -> (Case, Discrepancy) {
    let mut current = case.clone();
    let mut last = check(&current).expect_err("shrink starts from a failing case");
    assert_eq!(last.kind, kind, "shrink starts from the reported failure");
    loop {
        let mut improved = false;
        for candidate in edits(&current) {
            if let Err(d) = check(&candidate) {
                if d.kind == kind {
                    current = candidate;
                    last = d;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (current, last);
        }
    }
}

/// Every single-step simplification of `case`, most aggressive first
/// (whole views, then query structure, then individual rows).
fn edits(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();

    for i in 0..case.views.len() {
        let mut c = case.clone();
        c.views.remove(i);
        out.push(c);
    }

    if case.query.having.is_some() {
        let mut c = case.clone();
        c.query.having = None;
        out.push(c);
    }
    if case.query.distinct {
        let mut c = case.clone();
        c.query.distinct = false;
        out.push(c);
    }
    for q in drop_conjuncts(&case.query) {
        let mut c = case.clone();
        c.query = q;
        out.push(c);
    }
    for (vi, v) in case.views.iter().enumerate() {
        for q in drop_conjuncts(&v.query) {
            let mut c = case.clone();
            c.views[vi].query = q;
            out.push(c);
        }
        if v.query.having.is_some() {
            let mut c = case.clone();
            c.views[vi].query.having = None;
            out.push(c);
        }
    }

    // Drop one aggregate output (keep at least one select item).
    for (i, item) in case.query.select.iter().enumerate() {
        if case.query.select.len() > 1 && matches!(item.expr, Expr::Agg(_)) {
            let mut c = case.clone();
            c.query.select.remove(i);
            out.push(c);
        }
    }
    // Drop one grouping column together with its select occurrence.
    for (gi, g) in case.query.group_by.iter().enumerate() {
        let select: Vec<SelectItem> = case
            .query
            .select
            .iter()
            .filter(|item| !matches!(&item.expr, Expr::Column(c) if c == g))
            .cloned()
            .collect();
        if select.is_empty() {
            continue;
        }
        let mut c = case.clone();
        c.query.group_by.remove(gi);
        c.query.select = select;
        out.push(c);
    }

    for (ti, t) in case.tables.iter().enumerate() {
        for ri in 0..t.rows.len() {
            let mut c = case.clone();
            c.tables[ti].rows.remove(ri);
            out.push(c);
        }
    }

    out
}

/// The query with one `WHERE` conjunct removed, for each conjunct.
fn drop_conjuncts(query: &Query) -> Vec<Query> {
    let Some(w) = &query.where_clause else {
        return Vec::new();
    };
    let atoms = w.conjuncts();
    (0..atoms.len())
        .map(|skip| {
            let rest: Vec<BoolExpr> = atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, a)| (*a).clone())
                .collect();
            let mut q = query.clone();
            q.where_clause = BoolExpr::conjoin(rest);
            q
        })
        .collect()
}
