//! F1 — evaluate the Example 1.1 query against base tables vs. against the
//! materialized view, across fact-table scales.

use aggview::engine::datagen::{telephony, TelephonyConfig};
use aggview::engine::execute;
use aggview::run::{execute_rewriting, materialize_views};
use aggview_bench::workloads::{telephony_query, telephony_v1};
use aggview_core::Rewriter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = aggview::engine::datagen::telephony_catalog();
    let rewriter = Rewriter::new(&catalog);
    let q = telephony_query();
    let v1 = telephony_v1();

    let mut group = c.benchmark_group("f1_telephony");
    for n_calls in [10_000usize, 100_000] {
        let mut db = telephony(
            &TelephonyConfig {
                n_customers: 1000,
                n_plans: 10,
                n_calls,
                years: vec![1994, 1995],
                months: 12,
            },
            42,
        );
        materialize_views(&mut db, std::slice::from_ref(&v1)).expect("view materializes");
        let rws = rewriter
            .rewrite(&q, std::slice::from_ref(&v1))
            .expect("rewrite runs");
        let rw = rws.first().expect("rewriting").clone();

        group.throughput(Throughput::Elements(n_calls as u64));
        group.bench_with_input(BenchmarkId::new("original_Q", n_calls), &db, |b, db| {
            b.iter(|| black_box(execute(&q, db).expect("query runs")))
        });
        group.bench_with_input(BenchmarkId::new("rewritten_Qp", n_calls), &db, |b, db| {
            b.iter(|| black_box(execute_rewriting(&rw, db).expect("rewriting runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
