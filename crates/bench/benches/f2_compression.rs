//! F2 — rewritten-query evaluation time vs. view compression ratio.

use aggview::engine::datagen::{telephony, telephony_catalog, TelephonyConfig};
use aggview::run::{execute_rewriting, materialize_views};
use aggview_bench::workloads::{telephony_query, telephony_v1};
use aggview_core::Rewriter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = telephony_catalog();
    let rewriter = Rewriter::new(&catalog);
    let q = telephony_query();
    let v1 = telephony_v1();

    let mut group = c.benchmark_group("f2_compression");
    for n_plans in [2usize, 50, 1000] {
        let mut db = telephony(
            &TelephonyConfig {
                n_customers: 1000,
                n_plans,
                n_calls: 100_000,
                years: vec![1994, 1995],
                months: 12,
            },
            7,
        );
        materialize_views(&mut db, std::slice::from_ref(&v1)).expect("view materializes");
        let rws = rewriter
            .rewrite(&q, std::slice::from_ref(&v1))
            .expect("rewrite runs");
        let rw = rws.first().expect("rewriting").clone();
        group.bench_with_input(BenchmarkId::new("rewritten_Qp", n_plans), &db, |b, db| {
            b.iter(|| black_box(execute_rewriting(&rw, db).expect("rewriting runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
