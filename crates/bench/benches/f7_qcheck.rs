//! F7 — differential-harness throughput: full seconds-per-seed cost of one
//! qcheck case (generate, reference-execute, drive the 16-point engine
//! lattice, cross-check every rewriting). Tracks how expensive a soak
//! iteration is so `scripts/soak.sh` seed budgets stay calibrated.

use aggview_qcheck::{check_case, generate, CaseConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f7_qcheck");
    let cfg = CaseConfig::default();
    for seed in [3u64, 11, 29] {
        let case = generate(seed, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(seed), &case, |b, case| {
            b.iter(|| black_box(check_case(case).is_ok()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
