//! F5 — predicate-closure construction time vs. number of atoms.

use aggview_core::canon::{Atom, Term};
use aggview_core::PredClosure;
use aggview_sql::{CmpOp, Literal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_atoms(n: usize, n_cols: usize, seed: u64) -> Vec<Atom> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lhs = Term::Col(rng.random_range(0..n_cols));
            let op = match rng.random_range(0..4) {
                0 => CmpOp::Eq,
                1 => CmpOp::Lt,
                2 => CmpOp::Le,
                _ => CmpOp::Ne,
            };
            let rhs = if rng.random_bool(0.4) {
                Term::Const(Literal::Int(rng.random_range(0..8)))
            } else {
                Term::Col(rng.random_range(0..n_cols))
            };
            Atom::new(lhs, op, rhs)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_closure");
    for n in [8usize, 32, 128] {
        let atoms = random_atoms(n, n * 2, 9);
        let universe: Vec<Term> = (0..n * 2).map(Term::Col).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &atoms, |b, atoms| {
            b.iter(|| black_box(PredClosure::build(atoms, &universe)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
