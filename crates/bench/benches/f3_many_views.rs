//! F3 — rewrite-search time vs. number of candidate views.

use aggview::engine::datagen::telephony_catalog;
use aggview_bench::workloads::{telephony_query, telephony_view_pool};
use aggview_core::Rewriter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = telephony_catalog();
    let rewriter = Rewriter::new(&catalog);
    let q = telephony_query();

    let mut group = c.benchmark_group("f3_many_views");
    for n in [1usize, 4, 16, 64] {
        let pool = telephony_view_pool(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pool, |b, pool| {
            b.iter(|| black_box(rewriter.rewrite(&q, pool).expect("rewrite runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
