//! F6 — incremental view maintenance vs. recomputation per insert batch.

use aggview::engine::datagen::{telephony, TelephonyConfig};
use aggview::engine::execute;
use aggview::engine::maintenance::{plan_for_view, MaintenancePlan};
use aggview::engine::Value;
use aggview_sql::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let view_q = parse_query(
        "SELECT Plan_Id, Month, Year, SUM(Charge) AS Rev, COUNT(Call_Id) AS N \
         FROM Calls GROUP BY Plan_Id, Month, Year",
    )
    .expect("valid SQL");
    let db = telephony(
        &TelephonyConfig {
            n_customers: 1000,
            n_plans: 10,
            n_calls: 50_000,
            years: vec![1994, 1995],
            months: 12,
        },
        21,
    );
    let mut view = execute(&view_q, &db).expect("view evaluates");
    view.columns = view_q.output_names();
    let MaintenancePlan::Incremental(plan) = plan_for_view(&view_q, &db) else {
        panic!("expected incremental plan");
    };
    let mut rng = StdRng::seed_from_u64(5);
    let delta: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Int(50_000 + i),
                Value::Int(rng.random_range(0..1000)),
                Value::Int(rng.random_range(0..10)),
                Value::Int(rng.random_range(1..=28)),
                Value::Int(rng.random_range(1..=12)),
                Value::Int(1995),
                Value::Int(rng.random_range(1..=2000)),
            ]
        })
        .collect();

    let mut group = c.benchmark_group("f6_maintenance");
    group.bench_with_input(BenchmarkId::new("incremental", 1000), &delta, |b, delta| {
        b.iter(|| {
            let mut v = view.clone();
            plan.apply_insert(&mut v, delta, None).expect("maintenance");
            black_box(v)
        })
    });
    group.bench_function(BenchmarkId::new("recompute", 1000), |b| {
        b.iter(|| black_box(execute(&view_q, &db).expect("view evaluates")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
