//! F4 — rewrite-search time vs. query size (self-join chain).

use aggview_bench::workloads::{chain_catalog, chain_query, chain_view};
use aggview_core::{RewriteOptions, Rewriter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = chain_catalog();
    let rewriter = Rewriter::with_options(
        &catalog,
        RewriteOptions {
            max_rewritings: 256,
            ..RewriteOptions::default()
        },
    );
    let view = chain_view();

    let mut group = c.benchmark_group("f4_query_size");
    for n in [2usize, 4, 6, 8] {
        let q = chain_query(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| {
                black_box(
                    rewriter
                        .rewrite(q, std::slice::from_ref(&view))
                        .expect("rewrite runs"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
