//! Workload builders shared between the experiment functions and the
//! Criterion benches.

use aggview::gen::experiment_catalog;
use aggview_catalog::{Catalog, TableSchema};
use aggview_core::ViewDef;
use aggview_sql::{parse_query, Query};

/// The paper's Example 1.1 query `Q`.
pub fn telephony_query() -> Query {
    parse_query(
        "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
         FROM Calls, Calling_Plans \
         WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
         GROUP BY Calling_Plans.Plan_Id, Plan_Name \
         HAVING SUM(Charge) < 100000000",
    )
    .expect("valid SQL")
}

/// The paper's Example 1.1 view `V1` (monthly earnings per plan).
pub fn telephony_v1() -> ViewDef {
    ViewDef::new(
        "V1",
        parse_query(
            "SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge) AS Monthly_Earnings \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
             GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
        )
        .expect("valid SQL"),
    )
}

/// `n` candidate views for the F3 sweep: the usable `V1` plus `n - 1`
/// decoys that filter on years the query does not ask for (structurally
/// similar, so the rewriter must actually reason to reject them).
pub fn telephony_view_pool(n: usize) -> Vec<ViewDef> {
    let mut views = vec![telephony_v1()];
    for i in 1..n {
        let year = 1900 + (i as i64 % 90);
        views.push(ViewDef::new(
            format!("Decoy{i}"),
            parse_query(&format!(
                "SELECT Calls.Plan_Id, Plan_Name, Month, SUM(Charge) AS E \
                 FROM Calls, Calling_Plans \
                 WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = {year} \
                 GROUP BY Calls.Plan_Id, Plan_Name, Month"
            ))
            .expect("valid SQL"),
        ));
    }
    views
}

/// Schema and query for the F4 sweep: `n` occurrences of one table in a
/// join chain `t0.B = t1.A, t1.B = t2.A, ...` — self-joins maximize the
/// condition-C1 mapping search space.
pub fn chain_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("Link", ["A", "B", "P"]))
        .expect("fresh catalog");
    cat
}

/// The `n`-table chain query.
pub fn chain_query(n: usize) -> Query {
    assert!(n >= 1);
    let from: Vec<String> = (0..n).map(|i| format!("Link t{i}")).collect();
    let mut conds: Vec<String> = (1..n).map(|i| format!("t{}.B = t{}.A", i - 1, i)).collect();
    conds.push("t0.P = 1".to_string());
    parse_query(&format!(
        "SELECT t0.A, SUM(t{}.B) FROM {} WHERE {} GROUP BY t0.A",
        n - 1,
        from.join(", "),
        conds.join(" AND ")
    ))
    .expect("valid SQL")
}

/// A two-link view usable inside the chain query.
pub fn chain_view() -> ViewDef {
    ViewDef::new(
        "Pair",
        parse_query(
            "SELECT u0.A, u0.B, u0.P, u1.A AS A2, u1.B AS B2, u1.P AS P2 \
             FROM Link u0, Link u1 WHERE u0.B = u1.A",
        )
        .expect("valid SQL"),
    )
}

/// T5 ablation workload: pairs of (query, view), each tagged with whether
/// the usability depends on implied-equality reasoning (the Example 1.1
/// pattern) or is syntactically evident.
pub fn t5_workload() -> Vec<(&'static str, Query, ViewDef, bool)> {
    let cat = experiment_catalog();
    let q = |sql: &str| {
        let query = parse_query(sql).expect("valid SQL");
        // Sanity: must resolve against the experiment catalog.
        aggview_core::Canonical::from_query(&query, &cat).expect("resolves");
        query
    };
    vec![
        (
            "verbatim-conjunctive",
            q("SELECT A, B FROM R1 WHERE C = 1"),
            ViewDef::new("W1", q("SELECT A, B, D FROM R1 WHERE C = 1")),
            false,
        ),
        (
            "verbatim-rollup",
            q("SELECT A, SUM(C) FROM R1 GROUP BY A"),
            ViewDef::new("W2", q("SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B")),
            false,
        ),
        (
            "equijoin-select-exposure",
            q("SELECT A FROM R1, R2 WHERE A = E AND F = 2"),
            ViewDef::new("W3", q("SELECT E, F FROM R1, R2 WHERE A = E")),
            true,
        ),
        (
            "equijoin-group-exposure",
            q("SELECT A, SUM(F) FROM R1, R2 WHERE A = E GROUP BY A"),
            ViewDef::new(
                "W4",
                q("SELECT E, SUM(F) AS SF, COUNT(F) AS N FROM R1, R2 WHERE A = E GROUP BY E"),
            ),
            true,
        ),
        (
            "equijoin-agg-argument",
            q("SELECT G, SUM(B) FROM R1, R3 WHERE B = H GROUP BY G"),
            ViewDef::new("W5", q("SELECT G, H FROM R1, R3 WHERE B = H")),
            true,
        ),
        (
            "verbatim-minmax",
            q("SELECT A, MIN(B), MAX(B) FROM R1 GROUP BY A"),
            ViewDef::new(
                "W6",
                q("SELECT A, C, MIN(B) AS MN, MAX(B) AS MX FROM R1 GROUP BY A, C"),
            ),
            false,
        ),
        (
            "constant-derived-equality",
            q("SELECT A FROM R1 WHERE B = 3 AND C = 3"),
            ViewDef::new("W7", q("SELECT A, C FROM R1 WHERE B = C")),
            true,
        ),
        (
            "verbatim-count",
            q("SELECT A, COUNT(B) FROM R1 GROUP BY A"),
            ViewDef::new("W8", q("SELECT A, D, COUNT(B) AS N FROM R1 GROUP BY A, D")),
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_parse_and_resolve() {
        let _ = telephony_query();
        let _ = telephony_v1();
        assert_eq!(telephony_view_pool(8).len(), 8);
        let cat = chain_catalog();
        for n in 1..=6 {
            let q = chain_query(n);
            aggview_core::Canonical::from_query(&q, &cat).expect("chain query resolves");
        }
        aggview_core::Canonical::from_query(&chain_view().query, &cat)
            .expect("chain view resolves");
        assert_eq!(t5_workload().len(), 8);
    }
}
