//! End-to-end serving benchmark: parse → rewrite → execute through a
//! [`Session`], steady state, with a configurable write mix.
//!
//! Two figures come out of this module (snapshotted to `BENCH_2.json` by
//! `scripts/bench_snapshot.sh`):
//!
//! * **S1 — cold vs. warm serving latency.** The same query stream runs
//!   against a cache-disabled session (every `SELECT` pays
//!   canonicalization, the rewrite search, cost ranking, and physical
//!   planning) and a cache-enabled one (canonically repeated queries bind
//!   a compiled [`aggview::engine::PhysicalPlan`] and run). The stream
//!   rotates textual variants that share one canonical form, plus an
//!   optional write mix that exercises incremental view maintenance
//!   between reads.
//! * **S2 — grouped-index probe vs. scan.** Point lookups on a view's
//!   grouping column served by a session with [`GroupIndex`]es on
//!   materialized views versus one without (both warm, so the difference
//!   is purely probe-vs-scan inside plan execution).
//! * **S3 — concurrent shared-store serving** (snapshotted to
//!   `BENCH_3.json`): N reader handles on one [`SharedStore`] run the
//!   warm query stream against their pinned snapshots while M writer
//!   handles stream single-row inserts through the batching writer
//!   thread. Reports read scaling across reader counts and write/batch
//!   latency under contention.
//! * **S4 — observability overhead** (snapshotted to `BENCH_4.json`):
//!   the warm S1 stream with the metrics registry attached versus
//!   `--no-obs`. Runs alternate configurations within each repetition
//!   and keep the per-configuration minimum, so clock drift and
//!   scheduling spikes hit both sides equally; the acceptance bar is
//!   ≤ 5% warm-path overhead with observability on.
//! * **S5 — row vs. columnar scan/aggregate scaling** (snapshotted to
//!   `BENCH_5.json`): filtered `GROUP BY` aggregates over a single base
//!   table from 1k to 100k rows, served by a columnar-enabled session
//!   (vectorized kernels over typed column vectors) versus a
//!   `--no-columnar` one (the row-at-a-time interpreter). Both sessions
//!   are warm (plan cache + columnar cache populated by the warmup
//!   pass), so the ratio isolates operator execution. The acceptance bar
//!   is ≥ 5x columnar speedup at the 100k-row scale.
//! * **S6 — sharded write throughput** (snapshotted to `BENCH_6.json`):
//!   a single driver streams single-row inserts through the
//!   scatter-gather router of a [`ShardedStore`] at 1/2/4 shards (each
//!   shard an independent store with its own writer thread), with
//!   uniform partitioning keys plus one skewed point. Reports acked
//!   write throughput, the queue-wait vs. apply/publish split, and
//!   per-shard publish/row balance (uniform keys must stay within 20%
//!   of the mean).
//!
//! [`GroupIndex`]: aggview::engine::GroupIndex

use crate::report::Table;
use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::datagen::random_database_skewed;
use aggview::engine::Value;
use aggview::obs::{CounterId, Stage};
use aggview::server::SharedStore;
use aggview::session::{Session, SessionOptions};
use aggview::sharded::ShardedStore;
use aggview_sql::{parse_script, Statement};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One measured serving scenario: the same statement stream against a
/// cold (cache-disabled) and a warm (cache-enabled) session.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Scenario name.
    pub label: String,
    /// Percentage of loop iterations that issue an `INSERT` before the
    /// measured `SELECT` (0 = read-only).
    pub write_pct: usize,
    /// Mean per-`SELECT` latency with the plan cache disabled, µs.
    pub cold_us: f64,
    /// Mean per-`SELECT` steady-state latency with the cache enabled, µs.
    pub warm_us: f64,
    /// Warm steady-state query throughput (selects / wall second,
    /// including the interleaved writes).
    pub qps: f64,
    /// Plan-cache hits accumulated by the warm session.
    pub hits: u64,
    /// Plan-cache misses accumulated by the warm session.
    pub misses: u64,
    /// Plan-cache invalidations accumulated by the warm session.
    pub invalidations: u64,
}

impl ServingPoint {
    /// Warm-path speedup over the cold path.
    pub fn speedup(&self) -> f64 {
        self.cold_us / self.warm_us.max(1e-9)
    }
}

/// One measured point-lookup scenario: indexed probe vs. full view scan.
#[derive(Debug, Clone)]
pub struct ProbePoint {
    /// Number of groups in the probed view (= its row count).
    pub groups: usize,
    /// Mean point-query latency with a [`aggview::engine::GroupIndex`] on
    /// the view, µs.
    pub probe_us: f64,
    /// Mean point-query latency scanning the unindexed view, µs.
    pub scan_us: f64,
}

impl ProbePoint {
    /// Probe speedup over the scan.
    pub fn speedup(&self) -> f64 {
        self.scan_us / self.probe_us.max(1e-9)
    }
}

/// Deterministic xorshift, so runs are reproducible without seeding a
/// generator from the clock.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Schema + data + two grouped views, as one SQL script.
fn setup_script(rows: usize, regions: usize, products: usize) -> String {
    let mut s = String::from("CREATE TABLE Calls (Region, Product, Amount);\n");
    s.push_str("INSERT INTO Calls VALUES ");
    let mut rng = 0x5eed_cafe_f00d_u64;
    for i in 0..rows {
        if i > 0 {
            s.push_str(", ");
        }
        let r = xorshift(&mut rng) as usize % regions;
        let p = xorshift(&mut rng) as usize % products;
        let a = xorshift(&mut rng) % 500;
        s.push_str(&format!("({r}, {p}, {a})"));
    }
    s.push_str(
        ";\nCREATE VIEW RegionTotals AS \
         SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N \
         FROM Calls GROUP BY Region;\n\
         CREATE VIEW ProductTotals AS \
         SELECT Product, SUM(Amount) AS T, COUNT(Amount) AS N \
         FROM Calls GROUP BY Product;\n\
         CREATE VIEW FineTotals AS \
         SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N \
         FROM Calls GROUP BY Region, Product;\n",
    );
    // A realistic deployment carries many more materialized views than
    // any one query uses; the rewrite search must consider (and mostly
    // reject) each of them per cold SELECT, while the warm path is
    // indifferent to pool size.
    for i in 0..8 {
        s.push_str(&format!(
            "CREATE VIEW Slice{i} AS \
             SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N \
             FROM Calls WHERE Amount < {} GROUP BY Region, Product;\n",
            50 * (i + 1),
        ));
    }
    s
}

fn session_with(script: &str, plan_cache_cap: usize, index_views: bool) -> Session {
    let stmts = parse_script(script).expect("setup script parses");
    let mut session = Session::new(SessionOptions {
        plan_cache_cap,
        index_views,
        ..SessionOptions::default()
    });
    session.run_script(&stmts).expect("setup script runs");
    session
}

fn parse_one(sql: &str) -> Statement {
    let stmts = parse_script(sql).expect("statement parses");
    assert_eq!(stmts.len(), 1, "one statement expected");
    stmts.into_iter().next().expect("one statement")
}

/// The measured query stream: textual variants of the same canonical
/// queries (exercising canonical fingerprinting), one point lookup, and
/// one query over the second view.
fn query_stream(regions: usize) -> Vec<Statement> {
    let probe_region = regions / 2;
    [
        "SELECT Region, SUM(Amount) FROM Calls GROUP BY Region".to_string(),
        // Same canonical form, different binding name: must hit the same
        // cache entry as the previous query.
        "SELECT c.Region, SUM(c.Amount) FROM Calls c GROUP BY c.Region".to_string(),
        format!(
            "SELECT Region, SUM(Amount) FROM Calls WHERE Region = {probe_region} \
             GROUP BY Region"
        ),
        "SELECT Product, SUM(Amount) FROM Calls GROUP BY Product".to_string(),
    ]
    .iter()
    .map(|sql| parse_one(sql))
    .collect()
}

/// A rotating pool of single-row inserts (the write mix).
fn write_stream(regions: usize, products: usize) -> Vec<Statement> {
    let mut rng = 0xbead_5eed_u64;
    (0..16)
        .map(|_| {
            let r = xorshift(&mut rng) as usize % regions;
            let p = xorshift(&mut rng) as usize % products;
            let a = xorshift(&mut rng) % 500;
            parse_one(&format!("INSERT INTO Calls VALUES ({r}, {p}, {a})"))
        })
        .collect()
}

/// Drive `iters` SELECTs (interleaving one write every `write_every`
/// iterations when nonzero) and return (mean select latency µs, selects
/// per wall second).
fn drive(
    session: &mut Session,
    queries: &[Statement],
    writes: &[Statement],
    iters: usize,
    write_every: usize,
) -> (f64, f64) {
    // Warmup pass: populate the cache (a no-op for cache-disabled
    // sessions) so the measured loop is steady state.
    for q in queries {
        session.execute(q).expect("warmup select");
    }
    let mut select_us = 0.0;
    let wall = Instant::now();
    for i in 0..iters {
        if write_every > 0 && i % write_every == 0 {
            session
                .execute(&writes[(i / write_every) % writes.len()])
                .expect("write");
        }
        let q = &queries[i % queries.len()];
        let t = Instant::now();
        session.execute(q).expect("select");
        select_us += t.elapsed().as_secs_f64() * 1e6;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    (select_us / iters as f64, iters as f64 / wall_s.max(1e-9))
}

/// S1 data — cold vs. warm serving latency across write mixes.
pub fn serving_points(full: bool) -> Vec<ServingPoint> {
    let (rows, iters) = if full { (20_000, 1_000) } else { (2_000, 200) };
    // Few distinct groups: aggregate views compress heavily (the paper's
    // premise), so the per-query execution cost is small and the cold
    // path is dominated by the rewrite search the warm path skips.
    let (regions, products) = (12, 6);
    let script = setup_script(rows, regions, products);
    let queries = query_stream(regions);
    let writes = write_stream(regions, products);
    [("read-only", 0usize), ("10% writes", 10)]
        .iter()
        .map(|&(label, write_pct)| {
            let write_every = if write_pct == 0 { 0 } else { 100 / write_pct };
            let mut cold = session_with(&script, 0, true);
            let (cold_us, _) = drive(&mut cold, &queries, &writes, iters, write_every);
            let mut warm = session_with(&script, 64, true);
            let (warm_us, qps) = drive(&mut warm, &queries, &writes, iters, write_every);
            ServingPoint {
                label: label.to_string(),
                write_pct,
                cold_us,
                warm_us,
                qps,
                hits: warm.plan_cache().hits(),
                misses: warm.plan_cache().misses(),
                invalidations: warm.plan_cache().invalidations(),
            }
        })
        .collect()
}

/// S2 data — grouped-index probe vs. view scan on point lookups.
/// `rows_override` (the `--rows N` knob) replaces the group-count sweep
/// with a single point.
pub fn probe_points(full: bool, rows_override: Option<usize>) -> Vec<ProbePoint> {
    let single;
    let group_counts: &[usize] = match rows_override {
        Some(n) => {
            single = [n.max(2)];
            &single
        }
        None if full => &[1_000, 10_000, 50_000],
        None => &[1_000, 5_000],
    };
    let iters = if full { 2_000 } else { 400 };
    group_counts
        .iter()
        .map(|&groups| {
            // One row per region, so the view has `groups` rows.
            let script = setup_script(groups, groups, 10);
            let mut rng = 0xface_feed_u64;
            let points: Vec<Statement> = (0..32)
                .map(|_| {
                    let g = xorshift(&mut rng) as usize % groups;
                    parse_one(&format!(
                        "SELECT Region, SUM(Amount) FROM Calls WHERE Region = {g} \
                         GROUP BY Region"
                    ))
                })
                .collect();
            let mut indexed = session_with(&script, 64, true);
            let (probe_us, _) = drive(&mut indexed, &points, &[], iters, 0);
            let mut scanned = session_with(&script, 64, false);
            let (scan_us, _) = drive(&mut scanned, &points, &[], iters, 0);
            ProbePoint {
                groups,
                probe_us,
                scan_us,
            }
        })
        .collect()
}

/// S1 — cold vs. warm end-to-end serving latency.
pub fn s1_serving(full: bool) -> Table {
    let mut table = Table::new(
        "S1 — end-to-end serving latency, plan cache off vs. on",
        &[
            "scenario", "writes %", "cold us", "warm us", "speedup", "warm qps", "hits", "misses",
        ],
    );
    for p in serving_points(full) {
        table.push(vec![
            p.label.clone(),
            p.write_pct.to_string(),
            format!("{:.1}", p.cold_us),
            format!("{:.1}", p.warm_us),
            format!("{:.1}x", p.speedup()),
            format!("{:.0}", p.qps),
            p.hits.to_string(),
            p.misses.to_string(),
        ]);
    }
    table
}

/// One measured concurrent-store scenario: N readers + M writers over a
/// shared snapshot store for a fixed wall-clock window.
#[derive(Debug, Clone)]
pub struct ConcurrentPoint {
    /// Reader thread count (one store handle each).
    pub readers: usize,
    /// Writer thread count (one store handle each).
    pub writers: usize,
    /// Total `SELECT`s answered across all readers.
    pub reads: u64,
    /// Total single-row `INSERT`s acked across all writers.
    pub writes: u64,
    /// Aggregate read throughput, selects / wall second.
    pub read_qps: f64,
    /// Aggregate acked write throughput, inserts / wall second.
    pub write_qps: f64,
    /// Mean end-to-end latency of one acked write (submit → batch →
    /// publish → ack), µs.
    pub write_us: f64,
    /// Mean time one write spent queued before the writer thread drained
    /// it, µs (`write_us` ≈ queue wait + apply/publish + ack overhead).
    pub queue_wait_us: f64,
    /// Mean writer-thread apply+publish cost per write, µs — the store's
    /// real write-path cost, separated from queueing under contention.
    pub apply_publish_us: f64,
    /// Snapshots published by the writer thread.
    pub publishes: u64,
    /// Mean ops per write batch (`batched_ops / batches`).
    pub mean_batch: f64,
    /// Largest single write batch.
    pub max_batch: u64,
}

/// Run one N-reader/M-writer window over a fresh store loaded with
/// `script`. All threads start together behind a barrier; readers warm
/// their plan caches before the barrier so the measured loop is steady
/// state.
fn run_concurrent(
    script: &str,
    readers: usize,
    writers: usize,
    millis: u64,
    regions: usize,
    products: usize,
) -> ConcurrentPoint {
    let store = SharedStore::with_defaults();
    let mut setup = store.session(SessionOptions::default());
    let stmts = parse_script(script).expect("setup script parses");
    setup.run_script(&stmts).expect("setup script runs");
    let queries = Arc::new(query_stream(regions));
    let inserts = Arc::new(write_stream(regions, products));
    let barrier = Arc::new(Barrier::new(readers + writers));
    let window = Duration::from_millis(millis);

    let mut threads = Vec::new();
    for _ in 0..readers {
        let mut session = store.session(SessionOptions::default());
        let queries = Arc::clone(&queries);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            for q in queries.iter() {
                session.execute(q).expect("warmup select");
            }
            barrier.wait();
            let deadline = Instant::now() + window;
            let mut n = 0u64;
            while Instant::now() < deadline {
                session
                    .execute(&queries[n as usize % queries.len()])
                    .expect("select");
                n += 1;
            }
            (n, 0u64, 0.0f64)
        }));
    }
    for _ in 0..writers {
        let mut session = store.session(SessionOptions::default());
        let inserts = Arc::clone(&inserts);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let deadline = Instant::now() + window;
            let mut n = 0u64;
            let mut write_us = 0.0f64;
            while Instant::now() < deadline {
                let t = Instant::now();
                session
                    .execute(&inserts[n as usize % inserts.len()])
                    .expect("insert");
                write_us += t.elapsed().as_secs_f64() * 1e6;
                n += 1;
            }
            (0u64, n, write_us)
        }));
    }
    let (mut reads, mut writes, mut write_us_total) = (0u64, 0u64, 0.0f64);
    for t in threads {
        let (r, w, us) = t.join().expect("bench thread");
        reads += r;
        writes += w;
        write_us_total += us;
    }
    let secs = millis as f64 / 1e3;
    let stats = store.stats();
    ConcurrentPoint {
        readers,
        writers,
        reads,
        writes,
        read_qps: reads as f64 / secs,
        write_qps: writes as f64 / secs,
        write_us: if writes > 0 {
            write_us_total / writes as f64
        } else {
            0.0
        },
        queue_wait_us: stats.mean_queue_wait_us(),
        apply_publish_us: stats.mean_apply_publish_us(),
        publishes: stats.publishes.load(Relaxed),
        mean_batch: stats.mean_batch(),
        max_batch: stats.max_batch.load(Relaxed),
    }
}

/// S3 data — read scaling across reader counts (read-only), plus a mixed
/// readers+writer window for write/batch latency.
pub fn concurrent_points(full: bool) -> Vec<ConcurrentPoint> {
    let millis = if full { 400 } else { 120 };
    let rows = if full { 20_000 } else { 2_000 };
    let (regions, products) = (12, 6);
    let script = setup_script(rows, regions, products);
    [(1usize, 0usize), (2, 0), (4, 0), (4, 1)]
        .iter()
        .map(|&(r, w)| run_concurrent(&script, r, w, millis, regions, products))
        .collect()
}

/// One measured observability-overhead scenario: the same warm serving
/// stream with the metrics registry attached vs. disabled.
#[derive(Debug, Clone)]
pub struct ObsOverheadPoint {
    /// Scenario name (matches the S1 scenarios).
    pub label: String,
    /// Percentage of loop iterations that issue an `INSERT` first.
    pub write_pct: usize,
    /// Best (minimum over repetitions) mean warm `SELECT` latency with
    /// observability enabled, µs.
    pub obs_on_us: f64,
    /// Same, with observability disabled (no registry at all), µs.
    pub obs_off_us: f64,
    /// `queries` counter of the best obs-on run — proves every measured
    /// select was accounted.
    pub queries_counted: u64,
    /// Execute-stage histogram sample count of that run.
    pub stage_samples: u64,
}

impl ObsOverheadPoint {
    /// Warm-path overhead of observability, percent (negative = noise in
    /// favor of the instrumented run).
    pub fn overhead_pct(&self) -> f64 {
        (self.obs_on_us / self.obs_off_us.max(1e-9) - 1.0) * 100.0
    }
}

/// A warm session with observability explicitly on or off.
fn session_with_obs(script: &str, obs_enabled: bool) -> Session {
    let stmts = parse_script(script).expect("setup script parses");
    let mut options = SessionOptions::default();
    options.obs.enabled = obs_enabled;
    let mut session = Session::new(options);
    session.run_script(&stmts).expect("setup script runs");
    session
}

/// S4 data — observability overhead on the warm serving path.
///
/// Per repetition the obs-on and obs-off sessions run back to back (in
/// that order, so any one-sided warmup effect penalizes the instrumented
/// side, not the baseline); the reported latency per configuration is
/// the minimum over repetitions, which discards scheduling spikes
/// instead of averaging them in.
pub fn obs_overhead_points(full: bool) -> Vec<ObsOverheadPoint> {
    let (rows, iters, reps) = if full {
        (20_000, 1_000, 7)
    } else {
        (2_000, 300, 5)
    };
    let (regions, products) = (12, 6);
    let script = setup_script(rows, regions, products);
    let queries = query_stream(regions);
    let writes = write_stream(regions, products);
    [("read-only", 0usize), ("10% writes", 10)]
        .iter()
        .map(|&(label, write_pct)| {
            let write_every = if write_pct == 0 { 0 } else { 100 / write_pct };
            let mut obs_on_us = f64::INFINITY;
            let mut obs_off_us = f64::INFINITY;
            let mut queries_counted = 0u64;
            let mut stage_samples = 0u64;
            for _ in 0..reps {
                let mut on = session_with_obs(&script, true);
                let (on_us, _) = drive(&mut on, &queries, &writes, iters, write_every);
                let mut off = session_with_obs(&script, false);
                let (off_us, _) = drive(&mut off, &queries, &writes, iters, write_every);
                if on_us < obs_on_us {
                    obs_on_us = on_us;
                    if let Some(snap) = on.obs_snapshot() {
                        queries_counted = snap.counter(CounterId::Queries);
                        stage_samples = snap
                            .stages
                            .iter()
                            .find(|s| s.stage == Stage::Execute)
                            .map(|s| s.hist.count)
                            .unwrap_or(0);
                    }
                }
                obs_off_us = obs_off_us.min(off_us);
            }
            ObsOverheadPoint {
                label: label.to_string(),
                write_pct,
                obs_on_us,
                obs_off_us,
                queries_counted,
                stage_samples,
            }
        })
        .collect()
}

/// S4 — observability overhead on the warm serving path.
pub fn s4_obs_overhead(full: bool) -> Table {
    let mut table = Table::new(
        "S4 — warm serving latency, observability on vs. off",
        &[
            "scenario",
            "obs on us",
            "obs off us",
            "overhead %",
            "queries",
            "exec samples",
        ],
    );
    for p in obs_overhead_points(full) {
        table.push(vec![
            p.label.clone(),
            format!("{:.2}", p.obs_on_us),
            format!("{:.2}", p.obs_off_us),
            format!("{:+.1}%", p.overhead_pct()),
            p.queries_counted.to_string(),
            p.stage_samples.to_string(),
        ]);
    }
    table
}

/// One measured scan/aggregate scale point: the same warm query stream
/// under row-at-a-time vs. vectorized columnar execution.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Base-table row count.
    pub rows: usize,
    /// Mean per-`SELECT` latency on the row interpreter (`columnar:
    /// false`), µs.
    pub row_us: f64,
    /// Mean per-`SELECT` latency on the vectorized columnar path, µs.
    pub columnar_us: f64,
    /// `exec_vectorized` counter of the columnar session — proves the
    /// measured selects actually took the vectorized path.
    pub vectorized: u64,
}

impl ScalePoint {
    /// Columnar speedup over the row interpreter.
    pub fn speedup(&self) -> f64 {
        self.row_us / self.columnar_us.max(1e-9)
    }
}

/// Schema + `rows` random rows for the S5 scan sweep, as one SQL script.
/// No views: the sweep measures base-table scan/aggregate execution, not
/// rewriting. `INSERT`s are chunked so statement size stays bounded at
/// the 100k-row scale.
fn scan_setup_script(rows: usize) -> String {
    const CHUNK: usize = 20_000;
    let mut s = String::from("CREATE TABLE Calls (Region, Product, Amount);\n");
    let mut rng = 0x5ca1_ab1e_c01d_u64;
    let mut i = 0;
    while i < rows {
        s.push_str("INSERT INTO Calls VALUES ");
        let end = (i + CHUNK).min(rows);
        for j in i..end {
            if j > i {
                s.push_str(", ");
            }
            let r = xorshift(&mut rng) % 16;
            let p = xorshift(&mut rng) % 8;
            let a = xorshift(&mut rng) % 500;
            s.push_str(&format!("({r}, {p}, {a})"));
        }
        s.push_str(";\n");
        i = end;
    }
    s
}

/// The S5 query stream: filtered and unfiltered single-table `GROUP BY`
/// aggregates — exactly the shapes the vectorized operators cover.
fn scan_query_stream() -> Vec<Statement> {
    [
        "SELECT Region, SUM(Amount), COUNT(Amount) FROM Calls GROUP BY Region",
        "SELECT Region, SUM(Amount) FROM Calls WHERE Amount < 250 GROUP BY Region",
        "SELECT Product, MIN(Amount), MAX(Amount) FROM Calls GROUP BY Product",
        "SELECT Region, AVG(Amount) FROM Calls WHERE Product < 4 GROUP BY Region",
    ]
    .iter()
    .map(|sql| parse_one(sql))
    .collect()
}

/// A warm session for the scan sweep with columnar execution on or off.
fn session_scan(script: &str, columnar: bool) -> Session {
    let stmts = parse_script(script).expect("setup script parses");
    let mut session = Session::new(SessionOptions {
        columnar,
        ..SessionOptions::default()
    });
    session.run_script(&stmts).expect("setup script runs");
    session
}

/// S5 data — row vs. columnar execution across base-table scales.
/// `rows_override` (the `--rows N` knob) replaces the sweep with a single
/// scale.
pub fn scale_points(full: bool, rows_override: Option<usize>) -> Vec<ScalePoint> {
    let scales: Vec<usize> = match rows_override {
        Some(n) => vec![n.max(1)],
        None if full => vec![1_000, 10_000, 100_000],
        None => vec![1_000, 10_000],
    };
    let budget = if full { 1_600_000 } else { 200_000 };
    scales
        .iter()
        .map(|&rows| {
            // Fixed work budget: fewer iterations at larger scales keeps
            // the sweep's wall time flat-ish while every scale still runs
            // a two-digit number of measured selects.
            let iters = (budget / rows).clamp(10, 400);
            let script = scan_setup_script(rows);
            let queries = scan_query_stream();
            let mut row_session = session_scan(&script, false);
            let (row_us, _) = drive(&mut row_session, &queries, &[], iters, 0);
            let mut col_session = session_scan(&script, true);
            let (columnar_us, _) = drive(&mut col_session, &queries, &[], iters, 0);
            let vectorized = col_session
                .obs_snapshot()
                .map(|s| s.counter(CounterId::ExecVectorized))
                .unwrap_or(0);
            ScalePoint {
                rows,
                row_us,
                columnar_us,
                vectorized,
            }
        })
        .collect()
}

/// S5 — row vs. columnar scan/aggregate latency across scales.
pub fn s5_scale(full: bool, rows_override: Option<usize>) -> Table {
    let mut table = Table::new(
        "S5 — scan/aggregate latency, row interpreter vs. columnar kernels",
        &["rows", "row us", "columnar us", "speedup", "vectorized"],
    );
    for p in scale_points(full, rows_override) {
        table.push(vec![
            p.rows.to_string(),
            format!("{:.1}", p.row_us),
            format!("{:.1}", p.columnar_us),
            format!("{:.1}x", p.speedup()),
            p.vectorized.to_string(),
        ]);
    }
    table
}

/// S2 — grouped-index probe vs. scan on view point lookups.
pub fn s2_probe(full: bool, rows_override: Option<usize>) -> Table {
    let mut table = Table::new(
        "S2 — view point lookups, grouped index vs. scan",
        &["groups", "probe us", "scan us", "speedup"],
    );
    for p in probe_points(full, rows_override) {
        table.push(vec![
            p.groups.to_string(),
            format!("{:.1}", p.probe_us),
            format!("{:.1}", p.scan_us),
            format!("{:.1}x", p.speedup()),
        ]);
    }
    table
}

/// S3 — concurrent shared-store serving: read scaling and write batching.
pub fn s3_concurrent(full: bool) -> Table {
    let mut table = Table::new(
        "S3 — concurrent shared-store serving (N readers / M writers)",
        &[
            "readers",
            "writers",
            "reads",
            "read qps",
            "write qps",
            "write us",
            "queue us",
            "apply us",
            "publishes",
            "mean batch",
        ],
    );
    for p in concurrent_points(full) {
        table.push(vec![
            p.readers.to_string(),
            p.writers.to_string(),
            p.reads.to_string(),
            format!("{:.0}", p.read_qps),
            format!("{:.0}", p.write_qps),
            format!("{:.1}", p.write_us),
            format!("{:.1}", p.queue_wait_us),
            format!("{:.1}", p.apply_publish_us),
            p.publishes.to_string(),
            format!("{:.1}", p.mean_batch),
        ]);
    }
    table
}

/// One measured sharded-write scenario: single-row inserts routed by the
/// scatter-gather driver across N independent shard stores (one writer
/// thread + snapshot cell each) for a fixed wall-clock window.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Shard count (1 = the unsharded baseline through the same router).
    pub shards: usize,
    /// Skew of the partitioning-key distribution (0 = uniform; the
    /// `random_database_skewed` power-law knob).
    pub skew: f64,
    /// Total acked single-row `INSERT`s in the window.
    pub writes: u64,
    /// Acked write throughput, inserts / wall second.
    pub write_qps: f64,
    /// Mean end-to-end latency of one acked write, µs.
    pub write_us: f64,
    /// Mean queue wait per write across all shard stores, µs.
    pub queue_wait_us: f64,
    /// Mean apply+publish cost per write across all shard stores, µs.
    pub apply_publish_us: f64,
    /// Snapshots published per shard, in shard order.
    pub per_shard_publishes: Vec<u64>,
    /// Base-table rows that landed on each shard, in shard order.
    pub per_shard_rows: Vec<usize>,
}

impl ShardPoint {
    /// Largest per-shard publish count over the mean (1.0 = perfectly
    /// balanced; the uniform-key acceptance bar is ≤ 1.2).
    pub fn publish_balance(&self) -> f64 {
        let n = self.per_shard_publishes.len();
        let total: u64 = self.per_shard_publishes.iter().sum();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / n as f64;
        let max = *self.per_shard_publishes.iter().max().unwrap() as f64;
        max / mean
    }

    /// Same ratio over per-shard row counts.
    pub fn row_balance(&self) -> f64 {
        let n = self.per_shard_rows.len();
        let total: usize = self.per_shard_rows.iter().sum();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / n as f64;
        let max = *self.per_shard_rows.iter().max().unwrap() as f64;
        max / mean
    }
}

/// The S6 insert pool: one single-row `INSERT` per generated row, with
/// the partitioning column (`Region`, column 0 of the keyless table)
/// drawn from `0..256` — uniformly at `skew = 0`, power-law otherwise.
fn sharded_write_stream(pool: usize, skew: f64) -> Vec<Statement> {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("Calls", ["Region", "Product", "Amount"]))
        .expect("fresh catalog");
    let db = random_database_skewed(&cat, pool, 256, 0x5eed_5eed, skew);
    db.get("Calls")
        .expect("generated table")
        .rows
        .iter()
        .map(|row| {
            let cell = |v: &Value| match v {
                Value::Int(x) => *x,
                other => panic!("datagen emits ints, got {other}"),
            };
            parse_one(&format!(
                "INSERT INTO Calls VALUES ({}, {}, {})",
                cell(&row[0]),
                cell(&row[1]),
                cell(&row[2])
            ))
        })
        .collect()
}

/// Run one sharded write window: a single driver thread streams the
/// insert pool through the scatter router; every row is hash-routed to
/// its shard's writer thread and acked after that shard publishes.
fn run_sharded_write(shards: usize, skew: f64, millis: u64, pool: usize) -> ShardPoint {
    let store = ShardedStore::with_defaults(shards);
    let mut session = store.session(SessionOptions::default());
    let setup = "CREATE TABLE Calls (Region, Product, Amount);\n\
         CREATE VIEW RegionTotals AS \
         SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N \
         FROM Calls GROUP BY Region;";
    session
        .run_script(&parse_script(setup).expect("setup parses"))
        .expect("setup runs");
    let inserts = sharded_write_stream(pool, skew);

    let deadline = Instant::now() + Duration::from_millis(millis);
    let wall = Instant::now();
    let mut writes = 0u64;
    let mut write_us = 0.0f64;
    while Instant::now() < deadline {
        let t = Instant::now();
        session
            .execute(&inserts[writes as usize % inserts.len()])
            .expect("insert");
        write_us += t.elapsed().as_secs_f64() * 1e6;
        writes += 1;
    }
    let secs = wall.elapsed().as_secs_f64();

    let (mut queue_ns, mut apply_ns, mut ops) = (0u64, 0u64, 0u64);
    let mut per_shard_publishes = Vec::with_capacity(shards);
    for shard in store.shards() {
        let stats = shard.stats();
        queue_ns += stats.queue_wait_ns.load(Relaxed);
        apply_ns += stats.apply_publish_ns.load(Relaxed);
        ops += stats.batched_ops.load(Relaxed);
        per_shard_publishes.push(stats.publishes.load(Relaxed));
    }
    let per_shard_rows = store
        .load_all()
        .iter()
        .map(|snap| snap.state.db.get("Calls").map_or(0, |r| r.len()))
        .collect();
    let per_op = |ns: u64| {
        if ops == 0 {
            0.0
        } else {
            ns as f64 / ops as f64 / 1e3
        }
    };
    ShardPoint {
        shards,
        skew,
        writes,
        write_qps: writes as f64 / secs.max(1e-9),
        write_us: if writes > 0 {
            write_us / writes as f64
        } else {
            0.0
        },
        queue_wait_us: per_op(queue_ns),
        apply_publish_us: per_op(apply_ns),
        per_shard_publishes,
        per_shard_rows,
    }
}

/// S6 data — write throughput vs. shard count: uniform partitioning keys
/// across 1/2/4 shards, plus one skewed point (`skew` > 0 piles the keys
/// onto the low shards of the hash space's preimage).
pub fn sharded_points(full: bool, skew: f64) -> Vec<ShardPoint> {
    let millis = if full { 400 } else { 120 };
    let pool = if full { 4_096 } else { 1_024 };
    let mut points: Vec<ShardPoint> = [1usize, 2, 4]
        .iter()
        .map(|&n| run_sharded_write(n, 0.0, millis, pool))
        .collect();
    points.push(run_sharded_write(4, skew, millis, pool));
    points
}

/// S6 — sharded scatter-gather write throughput vs. shard count.
pub fn s6_sharded(full: bool, skew: f64) -> Table {
    let mut table = Table::new(
        "S6 — sharded write throughput (single driver, N shard writer threads)",
        &[
            "shards",
            "skew",
            "writes",
            "write qps",
            "write us",
            "queue us",
            "apply us",
            "publish balance",
            "per-shard rows",
        ],
    );
    for p in sharded_points(full, skew) {
        table.push(vec![
            p.shards.to_string(),
            format!("{:.1}", p.skew),
            p.writes.to_string(),
            format!("{:.0}", p.write_qps),
            format!("{:.1}", p.write_us),
            format!("{:.1}", p.queue_wait_us),
            format!("{:.1}", p.apply_publish_us),
            format!("{:.2}", p.publish_balance()),
            format!("{:?}", p.per_shard_rows),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_point_smoke() {
        // Tiny scale: the numbers are meaningless, but the harness must
        // run, hit the cache, and keep warm no slower than 5x cold (it is
        // typically >10x faster; the slack absorbs CI noise).
        let script = setup_script(200, 20, 5);
        let queries = query_stream(20);
        let writes = write_stream(20, 5);
        let mut cold = session_with(&script, 0, true);
        let (cold_us, _) = drive(&mut cold, &queries, &writes, 40, 10);
        let mut warm = session_with(&script, 64, true);
        let (warm_us, qps) = drive(&mut warm, &queries, &writes, 40, 10);
        assert!(warm.plan_cache().hits() > 0, "cache must be exercised");
        assert!(qps > 0.0);
        assert!(
            warm_us <= cold_us * 5.0,
            "warm {warm_us:.1}us vs cold {cold_us:.1}us"
        );
    }

    #[test]
    fn probe_point_smoke() {
        let points = probe_points(false, None);
        assert!(!points.is_empty());
        for p in &points {
            assert!(p.probe_us > 0.0 && p.scan_us > 0.0);
        }
    }

    #[test]
    fn concurrent_point_smoke() {
        // A tiny window with readers and a writer: the harness must
        // produce reads and acked writes, and every acked write implies a
        // published snapshot batch.
        let script = setup_script(200, 12, 6);
        let p = run_concurrent(&script, 2, 1, 60, 12, 6);
        assert!(p.reads > 0, "readers made progress");
        assert!(p.writes > 0, "writer made progress");
        assert!(p.publishes > 0 && p.mean_batch >= 1.0);
        assert!(p.write_us > 0.0);
    }

    #[test]
    fn sharded_point_smoke() {
        // A tiny window at 2 shards: the harness must ack writes, split
        // their latency into queue wait + apply/publish, and account every
        // inserted row to exactly one shard.
        let p = run_sharded_write(2, 0.0, 60, 256);
        assert_eq!(p.shards, 2);
        assert!(p.writes > 0, "driver made progress");
        assert!(p.write_us > 0.0);
        assert_eq!(p.per_shard_publishes.len(), 2);
        assert_eq!(p.per_shard_rows.len(), 2);
        assert_eq!(
            p.per_shard_rows.iter().sum::<usize>() as u64,
            p.writes,
            "every acked row lands on exactly one shard"
        );
        assert!(p.publish_balance() >= 1.0 && p.row_balance() >= 1.0);
    }

    #[test]
    fn sharded_write_stream_is_deterministic_and_skewable() {
        let a = sharded_write_stream(64, 0.0);
        let b = sharded_write_stream(64, 0.0);
        assert_eq!(a.len(), 64);
        assert_eq!(
            format!("{}", a[0]),
            format!("{}", b[0]),
            "pool is deterministic"
        );
        let skewed = sharded_write_stream(64, 2.0);
        assert_eq!(skewed.len(), 64);
    }

    #[test]
    fn obs_overhead_point_smoke() {
        // Tiny scale: assert the harness accounts every measured select
        // (iters + warmup pass) and produces positive latencies on both
        // sides. The ≤5% acceptance bar is checked at repro scale, not
        // here — at 40 iterations the numbers are noise.
        let script = setup_script(200, 12, 6);
        let queries = query_stream(12);
        let writes = write_stream(12, 6);
        let mut on = session_with_obs(&script, true);
        let (on_us, _) = drive(&mut on, &queries, &writes, 40, 10);
        let mut off = session_with_obs(&script, false);
        let (off_us, _) = drive(&mut off, &queries, &writes, 40, 10);
        assert!(on_us > 0.0 && off_us > 0.0);
        let snap = on.obs_snapshot().expect("obs-on session has a registry");
        assert_eq!(
            snap.counter(CounterId::Queries),
            40 + queries.len() as u64,
            "every select (measured + warmup) is accounted"
        );
        assert!(off.obs_snapshot().is_none(), "obs-off has no registry");
    }

    #[test]
    fn textual_variants_share_one_cache_entry() {
        let script = setup_script(100, 10, 5);
        let queries = query_stream(10);
        let mut session = session_with(&script, 64, true);
        for q in &queries {
            session.execute(q).expect("select");
        }
        // 4 queries, 3 canonical forms: the second pass over the stream
        // plus the variant in the first pass are all hits.
        assert_eq!(session.plan_cache().misses(), 3);
        for q in &queries {
            session.execute(q).expect("select");
        }
        assert_eq!(session.plan_cache().hits(), 5);
    }
}
