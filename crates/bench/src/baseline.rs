//! A purely *syntactic* view matcher, modeled on what the paper's Section 6
//! attributes to \[GHQ95\]: compare `Sel(Q)` with `Sel(V)` and `Groups(Q)`
//! with `Groups(V)` directly, "without taking the conditions in the WHERE
//! and HAVING clauses into account" — i.e., no predicate-closure reasoning,
//! no implied-equality column substitution (`B_A`).
//!
//! Used by the T5 ablation: on workloads with equi-joins (the Example 1.1
//! pattern, where the query selects `Calling_Plans.Plan_Id` but the view
//! exposes the equal `Calls.Plan_Id`), the syntactic matcher misses
//! rewritings that the closure-based conditions find.

use aggview_core::canon::{AggExpr, AggSpec, Canonical, ColId, SelItem, Term};
use aggview_core::mapping::{enumerate_mappings, Mapping};

/// Is `view` usable for `query` under purely syntactic matching?
///
/// Requirements mirror C1–C4/C2'–C4' but with *identity* in place of
/// entailed equality, and multiset inclusion of condition atoms in place of
/// the closure-equivalence test.
pub fn syntactic_usable(query: &Canonical, view: &Canonical) -> bool {
    enumerate_mappings(view, query, true, None)
        .iter()
        .any(|m| syntactic_usable_with(query, view, m))
}

fn syntactic_usable_with(query: &Canonical, view: &Canonical, mapping: &Mapping) -> bool {
    let image = mapping.image_cols(query);

    // Syntactic exposure only: φ(B) for B ∈ ColSel(V).
    let exposed = |qcol: ColId| -> bool {
        view.select.iter().any(|item| match item {
            SelItem::Col(b) => mapping.map_col(view, query, *b) == qcol,
            SelItem::Agg(_) => false,
        })
    };
    let agg_exposed = |spec: &AggSpec| -> bool {
        view.select.iter().any(|item| match item {
            SelItem::Agg(AggExpr::Plain(vspec)) => {
                vspec.func == spec.func
                    && match (vspec.arg, spec.arg) {
                        (Some(b), Some(a)) => mapping.map_col(view, query, b) == a,
                        (None, None) => true,
                        _ => false,
                    }
            }
            _ => false,
        })
    };

    // Needed plain columns must be exposed verbatim.
    let mut needed: Vec<ColId> = query.col_sel();
    needed.extend(query.groups.iter().copied());
    for a in needed {
        if image[a] && !exposed(a) {
            return false;
        }
    }

    // Every view condition atom must appear verbatim (after mapping) among
    // the query's atoms; leftovers must only touch available columns.
    let mapped: Vec<_> = view
        .conds
        .iter()
        .map(|a| mapping.map_atom(view, query, a).normalized())
        .collect();
    let q_atoms: Vec<_> = query.conds.iter().map(|a| a.normalized()).collect();
    for a in &mapped {
        if !q_atoms.contains(a) {
            return false;
        }
    }
    let available = |t: &Term| match t {
        Term::Col(c) => !image[*c] || exposed(*c),
        Term::Const(_) => true,
    };
    for a in &q_atoms {
        if !(mapped.contains(a) || (available(&a.lhs) && available(&a.rhs))) {
            return false;
        }
    }

    // Aggregates: same function over the identical (mapped) column, or a
    // raw exposed column; COUNT needs a COUNT column when the view
    // aggregates.
    let view_is_aggregated = view.is_aggregation_query();
    let has_count = view.select.iter().any(|item| {
        matches!(
            item,
            SelItem::Agg(AggExpr::Plain(AggSpec {
                func: aggview_sql::AggFunc::Count,
                ..
            }))
        )
    });
    for agg in query.agg_exprs() {
        let AggExpr::Plain(spec) = agg else {
            return false;
        };
        match spec.arg {
            Some(a) if image[a] => {
                if view_is_aggregated {
                    let ok = agg_exposed(spec)
                        || (exposed(a)
                            && matches!(
                                spec.func,
                                aggview_sql::AggFunc::Min | aggview_sql::AggFunc::Max
                            ))
                        || (spec.func == aggview_sql::AggFunc::Count && has_count);
                    if !ok {
                        return false;
                    }
                } else if !exposed(a) && spec.func != aggview_sql::AggFunc::Count {
                    return false;
                }
            }
            Some(_) => {
                // External column: fine for MIN/MAX and for conjunctive
                // views; SUM/COUNT/AVG over an aggregated view need COUNT.
                if view_is_aggregated
                    && !matches!(
                        spec.func,
                        aggview_sql::AggFunc::Min | aggview_sql::AggFunc::Max
                    )
                    && !has_count
                {
                    return false;
                }
            }
            None => {
                if view_is_aggregated && !has_count {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"])).unwrap();
        cat.add_table(TableSchema::new("R2", ["C", "D"])).unwrap();
        cat
    }

    fn canon(sql: &str) -> Canonical {
        Canonical::from_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn accepts_verbatim_match() {
        let q = canon("SELECT A, SUM(B) FROM R1 WHERE A = 1 GROUP BY A");
        let v = canon("SELECT A, B FROM R1 WHERE A = 1");
        assert!(syntactic_usable(&q, &v));
    }

    #[test]
    fn misses_implied_equality_exposure() {
        // The Example 1.1 pattern: the query selects A; the view exposes C
        // with A = C enforced. The closure-based conditions accept this;
        // the syntactic matcher must not.
        let q = canon("SELECT A FROM R1, R2 WHERE A = C AND D = 2");
        let v = canon("SELECT C, D FROM R1, R2 WHERE A = C");
        assert!(!syntactic_usable(&q, &v));
    }

    #[test]
    fn rejects_unmatched_view_condition() {
        let q = canon("SELECT A, B FROM R1");
        let v = canon("SELECT A, B FROM R1 WHERE B = 5");
        assert!(!syntactic_usable(&q, &v));
    }
}
